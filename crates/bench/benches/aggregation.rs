//! Throughput of the spec-aggregation pipeline.
//!
//! A production cluster produces one sample per task per minute — tens of
//! thousands per minute cluster-wide; the aggregator must absorb that and
//! roll specs every refresh period.

use cpi2_core::{Cpi2Config, CpiSample, SpecBuilder, TaskClass, TaskHandle};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn sample(job: u32, task: u64, cpi: f64) -> CpiSample {
    CpiSample {
        task: TaskHandle(task),
        jobname: format!("job{job}"),
        platforminfo: "westmere".into(),
        timestamp: 0,
        cpu_usage: 1.0,
        cpi,
        l3_mpki: 1.0,
        class: TaskClass::latency_sensitive(),
    }
}

fn bench_aggregation(c: &mut Criterion) {
    // Ingest throughput: 10k samples across 20 jobs.
    let samples: Vec<CpiSample> = (0..10_000)
        .map(|i| sample(i % 20, (i % 500) as u64, 1.5 + 0.001 * (i % 97) as f64))
        .collect();
    let mut g = c.benchmark_group("spec_builder");
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("ingest 10k samples / 20 jobs", |b| {
        b.iter_batched(
            || SpecBuilder::new(Cpi2Config::default()),
            |mut builder| {
                for s in &samples {
                    builder.add_sample(black_box(s));
                }
                builder
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("ingest + roll period", |b| {
        b.iter_batched(
            || SpecBuilder::new(Cpi2Config::default()),
            |mut builder| {
                for s in &samples {
                    builder.add_sample(s);
                }
                black_box(builder.roll_period())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
