//! Cost of the §4.2 antagonist-correlation analysis.
//!
//! The paper reports "a single correlation-analysis typically takes about
//! 100µs to perform" on 2011 hardware; it is rate-limited to one per
//! second so the analysis never disturbs the machine. These benches
//! measure the per-analysis and per-machine-suspect-sweep cost.

use cpi2_core::antagonist::{rank_suspects, SuspectInput};
use cpi2_core::correlation::antagonist_correlation;
use cpi2_core::sample::{TaskClass, TaskHandle};
use cpi2_stats::rng::SimRng;
use cpi2_stats::timeseries::TimeSeries;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn window_pairs(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| (1.0 + 2.0 * rng.f64(), 5.0 * rng.f64()))
        .collect()
}

fn usage_series(n: usize, seed: u64) -> TimeSeries {
    let mut rng = SimRng::new(seed);
    TimeSeries::from_points(
        (0..n)
            .map(|i| (i as i64 * 60_000_000, 5.0 * rng.f64()))
            .collect(),
    )
}

fn bench_correlation(c: &mut Criterion) {
    // One victim/suspect pair over the paper's 10-minute window
    // (10 one-minute samples).
    let pairs10 = window_pairs(10, 1);
    c.bench_function("antagonist_correlation/10-sample window", |b| {
        b.iter(|| antagonist_correlation(black_box(&pairs10), black_box(2.0)))
    });

    // A long window (1 hour of samples).
    let pairs60 = window_pairs(60, 2);
    c.bench_function("antagonist_correlation/60-sample window", |b| {
        b.iter(|| antagonist_correlation(black_box(&pairs60), black_box(2.0)))
    });

    // Full suspect sweep: one victim against 57 co-tenants (Case 1's
    // machine), including the time alignment.
    let victim = usage_series(10, 3);
    let suspects_data: Vec<TimeSeries> = (0..57).map(|i| usage_series(10, 100 + i)).collect();
    let names: Vec<String> = (0..57).map(|i| format!("job{i}")).collect();
    c.bench_function("rank_suspects/57 tenants x 10 samples", |b| {
        b.iter_batched(
            || {
                suspects_data
                    .iter()
                    .zip(&names)
                    .enumerate()
                    .map(|(i, (s, n))| SuspectInput {
                        task: TaskHandle(i as u64),
                        jobname: n,
                        class: TaskClass::batch(),
                        usage: s,
                    })
                    .collect::<Vec<_>>()
            },
            |inputs| rank_suspects(black_box(&victim), black_box(&inputs), 2.0, 30_000_000),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_correlation);
criterion_main!(benches);
