//! Per-sample cost of outlier detection and the full agent ingest path.
//!
//! Detection runs on every machine once a minute for every task; the paper
//! budgets <0.1 % CPU for the whole of CPI². These benches bound the
//! detector and agent costs per sampling round.

use cpi2_core::{Agent, Cpi2Config, CpiSample, CpiSpec, OutlierDetector, TaskClass, TaskHandle};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn spec() -> CpiSpec {
    CpiSpec {
        jobname: "svc".into(),
        platforminfo: "westmere".into(),
        num_samples: 100_000,
        cpu_usage_mean: 1.0,
        cpi_mean: 1.8,
        cpi_stddev: 0.16,
    }
}

fn sample(task: u64, minute: i64, cpi: f64) -> CpiSample {
    CpiSample {
        task: TaskHandle(task),
        jobname: "svc".into(),
        platforminfo: "westmere".into(),
        timestamp: minute * 60_000_000,
        cpu_usage: 1.0,
        cpi,
        l3_mpki: 1.0,
        class: TaskClass::latency_sensitive(),
    }
}

fn bench_detection(c: &mut Criterion) {
    let cfg = Cpi2Config::default();
    let sp = spec();
    c.bench_function("outlier_detector/observe normal sample", |b| {
        let mut d = OutlierDetector::new();
        let mut minute = 0;
        b.iter(|| {
            minute += 1;
            d.observe(black_box(&sample(1, minute, 1.8)), &sp, &cfg)
        })
    });
    c.bench_function("outlier_detector/observe outlier sample", |b| {
        let mut d = OutlierDetector::new();
        let mut minute = 0;
        b.iter(|| {
            minute += 1;
            d.observe(black_box(&sample(1, minute, 3.0)), &sp, &cfg)
        })
    });

    // A full machine round: 50 tasks, one sample each, all normal.
    c.bench_function("agent/ingest 50-task round (normal)", |b| {
        b.iter_batched(
            || {
                let mut agent = Agent::new(Cpi2Config::default());
                agent.install_spec(spec());
                (agent, 0i64)
            },
            |(mut agent, _)| {
                for minute in 0..10 {
                    let batch: Vec<CpiSample> = (0..50).map(|t| sample(t, minute, 1.8)).collect();
                    black_box(agent.ingest(&batch));
                }
                agent
            },
            BatchSize::SmallInput,
        )
    });

    // The worst case: an anomalous victim forcing a correlation analysis
    // against 49 suspects every round.
    c.bench_function("agent/ingest 50-task round (anomalous victim)", |b| {
        b.iter_batched(
            || {
                let mut agent = Agent::new(Cpi2Config::default());
                agent.install_spec(spec());
                agent
            },
            |mut agent| {
                for minute in 0..10 {
                    let mut batch: Vec<CpiSample> =
                        (1..50).map(|t| sample(t, minute, 1.8)).collect();
                    batch.push(sample(0, minute, 4.0));
                    black_box(agent.ingest(&batch));
                }
                agent
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
