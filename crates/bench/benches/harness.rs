//! Cost of the fully-assembled system: cluster + samplers + agents +
//! pipeline per simulated second, the number that bounds every experiment
//! and (scaled) the real deployment's per-machine overhead.

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, Platform, SimDuration};
use cpi2::workloads;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn assembled(machines: u32) -> Cpi2Harness {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 5,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), machines);
    workloads::submit_typical_mix(&mut cluster, (machines / 20).max(1), 3);
    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    // Warm to steady state with specs installed.
    system.run_for(SimDuration::from_mins(31));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_mins(2));
    system
}

fn bench_harness(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpi2_system");
    for machines in [20u32, 80] {
        g.throughput(Throughput::Elements(machines as u64 * 60));
        g.bench_function(format!("{machines} machines, 1 simulated minute"), |b| {
            b.iter_batched(
                || assembled(machines),
                |mut system| {
                    system.run_for(SimDuration::from_mins(1));
                    black_box(system.incidents().len())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
