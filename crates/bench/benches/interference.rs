//! Interference-model cost at 1/8/32 co-running tasks.
//!
//! `compute_into` sits inside `Machine::tick`, the innermost loop of the
//! fleet simulator, so its per-call cost bounds simulator throughput. The
//! scratch-buffer variant is benchmarked against the allocating wrapper to
//! keep the allocation-free refactor honest.

use cpi2_sim::interference::{self, ComputeScratch, InterferenceParams, TaskLoad};
use cpi2_sim::{Platform, ResourceProfile};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn mixed_loads(n: usize) -> Vec<TaskLoad> {
    (0..n)
        .map(|i| {
            let profile = match i % 3 {
                0 => ResourceProfile::compute_bound(),
                1 => ResourceProfile::cache_heavy(),
                _ => ResourceProfile::streaming(),
            };
            TaskLoad {
                activity: 0.25 + (i % 5) as f64,
                profile,
            }
        })
        .collect()
}

fn bench_interference(c: &mut Criterion) {
    let platform = Platform::westmere();
    let params = InterferenceParams::default();

    for n in [1usize, 8, 32] {
        let loads = mixed_loads(n);

        c.bench_function(format!("interference/compute ({n} tasks)"), |b| {
            b.iter(|| black_box(interference::compute(&platform, &loads, &params)))
        });

        c.bench_function(format!("interference/compute_into ({n} tasks)"), |b| {
            let mut out = Vec::new();
            let mut scratch = ComputeScratch::default();
            b.iter(|| {
                black_box(interference::compute_into(
                    &platform,
                    &loads,
                    &params,
                    &mut out,
                    &mut scratch,
                ))
            })
        });
    }

    // The zero-activity fast path: what an all-idle machine pays per tick.
    let idle: Vec<TaskLoad> = mixed_loads(8)
        .into_iter()
        .map(|mut l| {
            l.activity = 0.0;
            l
        })
        .collect();
    c.bench_function("interference/compute_into (8 idle tasks)", |b| {
        let mut out = Vec::new();
        let mut scratch = ComputeScratch::default();
        b.iter(|| {
            black_box(interference::compute_into(
                &platform,
                &idle,
                &params,
                &mut out,
                &mut scratch,
            ))
        })
    });
}

criterion_group!(benches, bench_interference);
criterion_main!(benches);
