//! Forensics query-engine scan throughput.

use cpi2_pipeline::query::{Row, Value};
use cpi2_pipeline::{Dataset, Table};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn dataset(rows: usize) -> Dataset {
    let mut table = Table::new("incidents");
    for i in 0..rows {
        let mut r = Row::new();
        r.insert("victim_job".into(), Value::Str(format!("job{}", i % 50)));
        r.insert("antagonist".into(), Value::Str(format!("ant{}", i % 13)));
        r.insert("correlation".into(), Value::Num((i % 100) as f64 / 100.0));
        r.insert("acted".into(), Value::Bool(i % 3 == 0));
        table.rows.push(r);
    }
    let mut ds = Dataset::new();
    ds.insert(table);
    ds
}

fn bench_query(c: &mut Criterion) {
    let ds = dataset(100_000);
    let mut g = c.benchmark_group("query_engine");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("filter scan 100k rows", |b| {
        b.iter(|| {
            black_box(
                ds.query("SELECT victim_job FROM incidents WHERE correlation >= 0.9")
                    .unwrap(),
            )
        })
    });
    g.bench_function("group-by aggregate 100k rows", |b| {
        b.iter(|| {
            black_box(
                ds.query(
                    "SELECT antagonist, count(*), avg(correlation) FROM incidents \
                     WHERE acted = true GROUP BY antagonist ORDER BY count(*) DESC LIMIT 10",
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
