//! Counter-sampler polling cost.
//!
//! The sampler polls every machine every tick; outside the counting window
//! this must be almost free, and window open/close must stay cheap even on
//! crowded machines.

use cpi2_perf::{MachineSampler, SamplerConfig};
use cpi2_sim::{
    ConstantLoad, JobId, Machine, MachineId, Platform, Priority, ResourceProfile, SchedClass,
    SimDuration, SimTime, TaskId, TaskInstance,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn crowded_machine(tasks: u32) -> Machine {
    let mut m = Machine::new(MachineId(0), Platform::westmere(), 1);
    for i in 0..tasks {
        m.add_task(
            TaskInstance {
                id: TaskId {
                    job: JobId(i),
                    index: 0,
                },
                model: Box::new(ConstantLoad::new(0.2, 4, ResourceProfile::compute_bound())),
            },
            format!("job{i}"),
            SchedClass::Batch,
            Priority::NonProduction,
            None,
        );
    }
    m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut Vec::new());
    m
}

fn bench_sampler(c: &mut Criterion) {
    let machine = crowded_machine(50);

    // Poll outside the counting window (the common case, 50/60 of polls).
    c.bench_function("sampler/poll outside window (50 tasks)", |b| {
        let mut s = MachineSampler::new(SamplerConfig::default());
        // Warm past the first window.
        for t in 0..11 {
            s.poll(&machine, SimTime::from_secs(t));
        }
        b.iter(|| black_box(s.poll(&machine, SimTime::from_secs(30))))
    });

    // Full open+close cycle producing 50 readings.
    c.bench_function("sampler/window open+close (50 tasks)", |b| {
        b.iter(|| {
            let mut s = MachineSampler::new(SamplerConfig::default());
            s.poll(&machine, SimTime::from_secs(1)); // open
            black_box(s.poll(&machine, SimTime::from_secs(11))) // close
        })
    });
}

criterion_group!(benches, bench_sampler);
criterion_main!(benches);
