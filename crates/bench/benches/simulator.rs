//! Simulator tick rate — the substrate cost that bounds every experiment.
//!
//! Also carries the interference-model ablation called out in DESIGN.md:
//! the bandwidth fixed point at 1 vs 3 vs 6 iterations, quantifying what
//! the default (3) buys.

use cpi2::sim::interference::{self, TaskLoad};
use cpi2::sim::{
    Cluster, ClusterConfig, InterferenceParams, JobSpec, Platform, ResourceProfile, SimDuration,
};
use cpi2::workloads;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn loaded_cluster(machines: u32, parallelism: usize) -> Cluster {
    let mut c = Cluster::new(ClusterConfig {
        seed: 9,
        overcommit: 2.0,
        parallelism,
        ..ClusterConfig::default()
    });
    c.add_machines(&Platform::westmere(), machines);
    workloads::submit_typical_mix(&mut c, machines / 20 + 1, 5);
    c
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_tick");
    for machines in [10u32, 100] {
        let tasks: usize = {
            let cl = loaded_cluster(machines, 1);
            cl.machines().iter().map(|m| m.task_count()).sum()
        };
        g.throughput(Throughput::Elements(tasks as u64));
        g.bench_function(format!("{machines} machines / {tasks} tasks"), |b| {
            b.iter_batched(
                || loaded_cluster(machines, 1),
                |mut cl| {
                    cl.run_for(SimDuration::from_secs(10));
                    black_box(cl.now())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();

    // Serial vs parallel per-machine phase (the ISSUE's ≥2x bar is judged
    // at parallelism 4 on the 400-machine shape).
    let par_machines = 400u32;
    let mut settings = vec![1usize, 2, 4];
    let hw = cpi2::sim::default_parallelism();
    if !settings.contains(&hw) {
        settings.push(hw);
    }
    let mut g = c.benchmark_group("cluster_tick_parallel");
    for parallelism in settings {
        let tasks: usize = {
            let cl = loaded_cluster(par_machines, 1);
            cl.machines().iter().map(|m| m.task_count()).sum()
        };
        g.throughput(Throughput::Elements(tasks as u64));
        g.bench_function(
            format!("{par_machines} machines / parallelism {parallelism}"),
            |b| {
                b.iter_batched(
                    || loaded_cluster(par_machines, parallelism),
                    |mut cl| {
                        cl.run_for(SimDuration::from_secs(10));
                        black_box(cl.now())
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();

    // Ablation: interference fixed-point iteration count.
    let loads: Vec<TaskLoad> = (0..30)
        .map(|i| TaskLoad {
            activity: 0.5 + (i % 5) as f64,
            profile: if i % 3 == 0 {
                ResourceProfile::streaming()
            } else {
                ResourceProfile::cache_heavy()
            },
        })
        .collect();
    let platform = Platform::westmere();
    let mut g = c.benchmark_group("interference_fixed_point");
    for iters in [1u32, 3, 6] {
        let params = InterferenceParams {
            iterations: iters,
            ..InterferenceParams::default()
        };
        g.bench_function(format!("{iters} iterations / 30 tasks"), |b| {
            b.iter(|| interference::compute(black_box(&platform), black_box(&loads), &params))
        });
    }
    g.finish();

    // Report the accuracy side of the ablation once (printed, not timed).
    let one = InterferenceParams {
        iterations: 1,
        ..InterferenceParams::default()
    };
    let six = InterferenceParams {
        iterations: 6,
        ..InterferenceParams::default()
    };
    let (v1, _) = interference::compute(&platform, &loads, &one);
    let (v6, _) = interference::compute(&platform, &loads, &six);
    let max_err = v1
        .iter()
        .zip(&v6)
        .map(|(a, b)| (a.cpi - b.cpi).abs() / b.cpi)
        .fold(0.0f64, f64::max);
    let three = InterferenceParams::default();
    let (v3, _) = interference::compute(&platform, &loads, &three);
    let err3 = v3
        .iter()
        .zip(&v6)
        .map(|(a, b)| (a.cpi - b.cpi).abs() / b.cpi)
        .fold(0.0f64, f64::max);
    println!("ablation: CPI error vs 6 iterations — 1 iter: {max_err:.4}, 3 iters: {err3:.6}");

    // The JobSpec import is used by workloads::submit_typical_mix's
    // signature transitively; keep a direct use for clarity.
    let _ = JobSpec::batch("unused", 1, 1.0);
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
