//! Ground-truth antagonist-identification accuracy scenarios.
//!
//! The §7 trials (see [`crate::trials`]) measure whether *capping helped*;
//! this module measures whether the identifier *blamed the right job*,
//! which only the simulator can score exactly: a known antagonist is
//! planted next to an instrumented victim, so every incident has ground
//! truth. The `accuracy_leaderboard` binary sweeps every
//! [`IdentifierKind`] backend over seeds × fault profiles and scores
//! precision, recall and mean reciprocal rank (MRR) per backend — the
//! evidence for (or against) the PANDA-style noise-resilient backend and
//! each of its ablations.
//!
//! Everything here is deterministic: seeded simulator, seeded fault plan,
//! no wall clock. A score produced locally is bit-identical in CI, which
//! is what lets CI gate on committed floors.

use cpi2::core::{select_target, Cpi2Config, IdentifierKind};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, FaultPlan, FaultProfile, JobSpec, Platform, ResourceProfile,
    SimDuration, SimTime, TaskDemand, TaskId, TaskModel,
};
use cpi2::workloads::{CacheThrasher, LsService};
use cpi2_stats::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Committed floor on the paper backend's clean-profile precision: the
/// CI `accuracy` job fails if a change drags identification below this.
/// (Observed: 0.867 over seeds 1,2,3 — the scenario is deterministic, so
/// the floor sits just under the measured value.)
pub const PAPER_CLEAN_PRECISION_FLOOR: f64 = 0.85;
/// Committed floor on the paper backend's clean-profile recall
/// (observed: 0.867).
pub const PAPER_CLEAN_RECALL_FLOOR: f64 = 0.85;

/// One accuracy scenario: a backend, a seed, a fault profile.
#[derive(Debug, Clone)]
pub struct AccuracyCase {
    /// Which identification backend the agents run.
    pub identifier: IdentifierKind,
    /// Master seed for cluster, workloads and fault plan.
    pub seed: u64,
    /// Fault profile name (`none`, `lossy`, `heavy`).
    pub fault: String,
    /// Measurement window after warm-up, in simulated minutes.
    pub minutes: i64,
}

/// The scored outcome of one [`AccuracyCase`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseScore {
    /// Backend name ([`IdentifierKind::name`]).
    pub identifier: String,
    /// Scenario seed.
    pub seed: u64,
    /// Fault profile name.
    pub fault: String,
    /// Incidents observed for the victim on the antagonist's machine.
    pub incidents: u64,
    /// Incidents where the backend named a target above its decision bar.
    pub identified: u64,
    /// Identifications that blamed the planted antagonist.
    pub correct: u64,
    /// Sum of reciprocal ranks of the antagonist among throttle-eligible
    /// suspects (for MRR).
    pub rr_sum: f64,
}

impl CaseScore {
    /// correct / identified (0 when nothing was identified).
    pub fn precision(&self) -> f64 {
        ratio(self.correct, self.identified)
    }

    /// correct / incidents (0 when no incidents fired).
    pub fn recall(&self) -> f64 {
        ratio(self.correct, self.incidents)
    }

    /// Mean reciprocal rank of the true antagonist over all incidents.
    pub fn mrr(&self) -> f64 {
        if self.incidents == 0 {
            0.0
        } else {
            self.rr_sum / self.incidents as f64
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One leaderboard row: a backend × fault profile, pooled across seeds
/// (micro-averaged: counts are summed before dividing, so seeds with more
/// incidents weigh more).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeaderboardRow {
    /// Backend name.
    pub identifier: String,
    /// Fault profile name.
    pub fault: String,
    /// Pooled incident count across seeds.
    pub incidents: u64,
    /// Pooled identifications.
    pub identified: u64,
    /// Pooled correct identifications.
    pub correct: u64,
    /// Pooled precision.
    pub precision: f64,
    /// Pooled recall.
    pub recall: f64,
    /// Pooled MRR.
    pub mrr: f64,
}

/// One pass/fail criterion of the accuracy gate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateCheck {
    /// What the criterion asserts.
    pub name: String,
    /// Whether it held.
    pub passed: bool,
    /// The numbers behind the verdict.
    pub detail: String,
}

/// The wide many-tenant machine of the §7 trials: one antagonist's CPU is
/// a modest fraction of capacity.
fn platform() -> Platform {
    Platform {
        cores: 24,
        ..Platform::westmere()
    }
}

/// A bursty but *innocent* co-tenant: big on/off CPU swings — exactly the
/// usage shape the correlator keys on — with a negligible cache footprint
/// and miss rate, so it causes essentially no interference. A noisy
/// single-window correlator can be fooled into blaming it; that is the
/// point.
struct BurstyInnocent {
    burst_cpu: f64,
    on_ticks: u32,
    off_ticks: u32,
    phase: u32,
    rng: SimRng,
}

impl BurstyInnocent {
    fn new(burst_cpu: f64, on_ticks: u32, off_ticks: u32, seed: u64) -> Self {
        let mut rng = SimRng::derive(seed, 0xDEC0);
        let phase = rng.below((on_ticks + off_ticks) as u64) as u32;
        BurstyInnocent {
            burst_cpu,
            on_ticks,
            off_ticks,
            phase,
            rng,
        }
    }
}

impl TaskModel for BurstyInnocent {
    fn profile(&self) -> ResourceProfile {
        // Pure compute: no one else notices it running.
        let mut p = ResourceProfile::compute_bound();
        p.cache_mb = 0.05;
        p.mpki_solo = 0.05;
        p.cache_sensitivity = 0.05;
        p
    }

    fn demand(&mut self, _now: SimTime, _dt: SimDuration, _rng: &mut SimRng) -> TaskDemand {
        let want = if self.phase < self.on_ticks {
            self.burst_cpu * (1.0 + 0.05 * self.rng.normal())
        } else {
            0.02
        };
        self.phase = (self.phase + 1) % (self.on_ticks + self.off_ticks);
        TaskDemand {
            cpu_want: want.max(0.0),
            threads: 4,
        }
    }
}

/// Runs one scenario and scores it against ground truth.
///
/// Protocol: six 24-core machines host a six-task latency-sensitive
/// victim job plus two bursty-but-innocent decoy jobs (a MapReduce worker
/// and a video-processing batch task per machine — plausible suspects
/// whose usage does *not* drive the victim's CPI). After a clean 25-min
/// warm-up learns the victim spec, the fault plan is armed and a cache
/// thrasher (the ground-truth antagonist) is planted. Incidents for the
/// victim on the antagonist's machine are then scored for `minutes`:
/// an incident counts as *identified* when [`select_target`] clears the
/// backend's decision bar, *correct* when the target is the planted
/// antagonist, and contributes the antagonist's reciprocal rank among
/// throttle-eligible suspects to MRR.
pub fn run_case(case: &AccuracyCase) -> Result<CaseScore, String> {
    let profile = FaultProfile::named(&case.fault)
        .ok_or_else(|| format!("unknown fault profile {:?}", case.fault))?;
    let mut cluster = Cluster::new(ClusterConfig {
        seed: case.seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&platform(), 6);
    let seed = case.seed;
    cluster
        .submit_job(
            JobSpec::latency_sensitive("victim", 6, 1.2),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.2,
                    12,
                    seed ^ (i as u64) << 8,
                ))
            }),
        )
        .map_err(|e| format!("victim placement: {e:?}"))?;
    // Innocent decoys: bursty usage that an over-eager identifier can
    // mistake for the cause, one of each per machine. Their periods are
    // incommensurate with the antagonist's 240 s burst cycle.
    cluster
        .submit_job(
            JobSpec::batch("decoy-a", 6, 0.8),
            true,
            Box::new(move |i| {
                Box::new(BurstyInnocent::new(
                    5.0,
                    300,
                    420,
                    seed ^ 0xA0 ^ (i as u64) << 4,
                ))
            }),
        )
        .map_err(|e| format!("decoy placement: {e:?}"))?;
    cluster
        .submit_job(
            JobSpec::batch("decoy-b", 6, 0.8),
            true,
            Box::new(move |i| {
                Box::new(BurstyInnocent::new(
                    4.0,
                    180,
                    260,
                    seed ^ 0xB0 ^ (i as u64) << 4,
                ))
            }),
        )
        .map_err(|e| format!("decoy placement: {e:?}"))?;

    let config = Cpi2Config {
        min_samples_per_task: 5,
        // Score identification, don't act on it; a shorter cooldown packs
        // more scoreable incidents into the window.
        auto_throttle: false,
        incident_cooldown_s: 180,
        identifier: case.identifier,
        ..Cpi2Config::default()
    };
    let threshold = case.identifier.decision_threshold(&config);
    let mut system = Cpi2Harness::new(cluster, config);

    // Clean warm-up: learn the victim's spec before any noise.
    system.run_for(SimDuration::from_mins(25));
    let specs = system.force_spec_refresh();
    if std::env::var("ACC_DEBUG").is_ok() {
        eprintln!("DBG specs: {specs:?}");
    }
    if !specs.iter().any(|s| s.jobname == "victim") {
        return Err("warm-up produced no victim spec".into());
    }

    // Arm the faults, then plant the ground-truth antagonist.
    system.set_fault_plan(Some(FaultPlan::new(seed ^ 0xFA17, profile)));
    let antagonist_job = system
        .cluster
        .submit_job(
            JobSpec::best_effort("antagonist", 1, 1.0),
            true,
            Box::new(move |_| {
                Box::new(CacheThrasher::new(8.0, 240, 240, seed).with_footprint(32.0))
            }),
        )
        .map_err(|e| format!("antagonist placement: {e:?}"))?;
    let ant_task = TaskId {
        job: antagonist_job,
        index: 0,
    };

    let mut score = CaseScore {
        identifier: case.identifier.name().to_string(),
        seed: case.seed,
        fault: case.fault.clone(),
        incidents: 0,
        identified: 0,
        correct: 0,
        rr_sum: 0.0,
    };
    let mut incident_idx = system.incidents().len();
    let deadline = system.cluster.now() + SimDuration::from_mins(case.minutes);
    while system.cluster.now() < deadline {
        system.step();
        // The antagonist can move (crash respawns under `heavy`); ground
        // truth is wherever it lives when the incident fires.
        let ant_machine = system.cluster.locate(ant_task);
        while incident_idx < system.incidents().len() {
            let mi = &system.incidents()[incident_idx];
            incident_idx += 1;
            if std::env::var("ACC_DEBUG").is_ok() {
                eprintln!(
                    "DBG incident machine={:?} ant_machine={:?} victim_job={} suspects={:?}",
                    mi.machine,
                    ant_machine,
                    mi.incident.victim_job,
                    mi.incident
                        .suspects
                        .iter()
                        .map(|s| (s.jobname.clone(), s.correlation, s.confidence))
                        .collect::<Vec<_>>()
                );
            }
            if mi.incident.victim_job != "victim" || Some(mi.machine) != ant_machine {
                continue;
            }
            score.incidents += 1;
            if let Some(pos) = mi
                .incident
                .suspects
                .iter()
                .filter(|s| s.class.throttle_eligible())
                .position(|s| s.jobname == "antagonist")
            {
                score.rr_sum += 1.0 / (pos + 1) as f64;
            }
            if let Some(target) = select_target(&mi.incident.suspects, threshold) {
                score.identified += 1;
                if target.jobname == "antagonist" {
                    score.correct += 1;
                }
            }
        }
    }
    Ok(score)
}

/// Pools per-case scores into one row per backend × fault profile,
/// ordered by [`IdentifierKind::ALL`] then by first appearance of the
/// fault name.
pub fn aggregate(scores: &[CaseScore]) -> Vec<LeaderboardRow> {
    let mut faults: Vec<&str> = Vec::new();
    for s in scores {
        if !faults.contains(&s.fault.as_str()) {
            faults.push(&s.fault);
        }
    }
    let mut rows = Vec::new();
    for kind in IdentifierKind::ALL {
        for fault in &faults {
            let group: Vec<&CaseScore> = scores
                .iter()
                .filter(|s| s.identifier == kind.name() && s.fault == *fault)
                .collect();
            if group.is_empty() {
                continue;
            }
            let incidents: u64 = group.iter().map(|s| s.incidents).sum();
            let identified: u64 = group.iter().map(|s| s.identified).sum();
            let correct: u64 = group.iter().map(|s| s.correct).sum();
            let rr_sum: f64 = group.iter().map(|s| s.rr_sum).sum();
            rows.push(LeaderboardRow {
                identifier: kind.name().to_string(),
                fault: fault.to_string(),
                incidents,
                identified,
                correct,
                precision: ratio(correct, identified),
                recall: ratio(correct, incidents),
                mrr: if incidents == 0 {
                    0.0
                } else {
                    rr_sum / incidents as f64
                },
            });
        }
    }
    rows
}

fn row<'a>(
    rows: &'a [LeaderboardRow],
    identifier: &str,
    fault: &str,
) -> Option<&'a LeaderboardRow> {
    rows.iter()
        .find(|r| r.identifier == identifier && r.fault == fault)
}

/// The accuracy gate CI enforces:
///
/// 1. every backend × profile saw incidents (nothing below is vacuous);
/// 2. the paper backend's clean-profile precision and recall hold the
///    committed floors;
/// 3. PANDA's precision is no worse than the paper backend's on *every*
///    profile;
/// 4. PANDA's recall is strictly higher than the paper backend's on the
///    degraded (`lossy`, `heavy`) profiles — the reason it exists.
pub fn gate(rows: &[LeaderboardRow], faults: &[String]) -> Vec<GateCheck> {
    let mut checks = Vec::new();
    for r in rows {
        checks.push(GateCheck {
            name: format!("{}/{}: incidents observed", r.identifier, r.fault),
            passed: r.incidents > 0,
            detail: format!("{} incidents", r.incidents),
        });
    }
    if let Some(paper) = row(rows, "paper", "none") {
        checks.push(GateCheck {
            name: "paper/none: precision floor".into(),
            passed: paper.precision >= PAPER_CLEAN_PRECISION_FLOOR,
            detail: format!("{:.3} >= {PAPER_CLEAN_PRECISION_FLOOR}", paper.precision),
        });
        checks.push(GateCheck {
            name: "paper/none: recall floor".into(),
            passed: paper.recall >= PAPER_CLEAN_RECALL_FLOOR,
            detail: format!("{:.3} >= {PAPER_CLEAN_RECALL_FLOOR}", paper.recall),
        });
    } else {
        checks.push(GateCheck {
            name: "paper/none: present".into(),
            passed: false,
            detail: "no clean-profile paper row".into(),
        });
    }
    for fault in faults {
        let (Some(paper), Some(panda)) = (row(rows, "paper", fault), row(rows, "panda", fault))
        else {
            continue;
        };
        checks.push(GateCheck {
            name: format!("panda/{fault}: precision >= paper"),
            passed: panda.precision >= paper.precision - 1e-9,
            detail: format!("{:.3} vs {:.3}", panda.precision, paper.precision),
        });
        if fault == "lossy" || fault == "heavy" {
            checks.push(GateCheck {
                name: format!("panda/{fault}: recall > paper"),
                passed: panda.recall > paper.recall,
                detail: format!("{:.3} vs {:.3}", panda.recall, paper.recall),
            });
        }
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(
        identifier: &str,
        fault: &str,
        incidents: u64,
        identified: u64,
        correct: u64,
    ) -> CaseScore {
        CaseScore {
            identifier: identifier.into(),
            seed: 1,
            fault: fault.into(),
            incidents,
            identified,
            correct,
            rr_sum: correct as f64,
        }
    }

    #[test]
    fn aggregate_pools_counts() {
        let rows = aggregate(&[
            score("paper", "none", 10, 8, 8),
            score("paper", "none", 10, 10, 7),
            score("panda", "none", 10, 9, 9),
        ]);
        let paper = row(&rows, "paper", "none").unwrap();
        assert_eq!(paper.incidents, 20);
        assert_eq!(paper.identified, 18);
        assert_eq!(paper.correct, 15);
        assert!((paper.precision - 15.0 / 18.0).abs() < 1e-12);
        assert!((paper.recall - 0.75).abs() < 1e-12);
        assert!((paper.mrr - 0.75).abs() < 1e-12);
        // Leaderboard order: paper before panda (IdentifierKind::ALL).
        assert_eq!(rows[0].identifier, "paper");
        assert_eq!(rows[1].identifier, "panda");
    }

    #[test]
    fn gate_requires_panda_to_beat_paper_when_degraded() {
        let faults = vec!["none".to_string(), "lossy".to_string()];
        let good = aggregate(&[
            score("paper", "none", 10, 10, 10),
            score("paper", "lossy", 10, 8, 5),
            score("panda", "none", 10, 10, 10),
            score("panda", "lossy", 10, 9, 8),
        ]);
        assert!(gate(&good, &faults).iter().all(|c| c.passed));

        // PANDA merely matching paper recall on lossy must fail the gate.
        let tied = aggregate(&[
            score("paper", "none", 10, 10, 10),
            score("paper", "lossy", 10, 8, 5),
            score("panda", "none", 10, 10, 10),
            score("panda", "lossy", 10, 8, 5),
        ]);
        let failed: Vec<_> = gate(&tied, &faults)
            .into_iter()
            .filter(|c| !c.passed)
            .collect();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].name.contains("recall > paper"));
    }

    #[test]
    fn gate_flags_vacuous_rows_and_missing_paper() {
        let rows = aggregate(&[score("panda", "lossy", 0, 0, 0)]);
        let checks = gate(&rows, &["lossy".to_string()]);
        assert!(checks
            .iter()
            .any(|c| !c.passed && c.name.contains("incidents")));
        assert!(checks
            .iter()
            .any(|c| !c.passed && c.name.contains("paper/none")));
    }

    /// The real thing, once, at the cheapest point: clean profile, the
    /// paper backend — a planted thrasher must be found with solid
    /// precision. (The full sweep is the `accuracy_leaderboard` binary,
    /// gated in CI.)
    #[test]
    fn clean_paper_case_identifies_the_thrasher() {
        let s = run_case(&AccuracyCase {
            identifier: IdentifierKind::Paper,
            seed: 1,
            fault: "none".into(),
            minutes: 60,
        })
        .expect("scenario must run");
        assert!(s.incidents > 0, "no incidents: {s:?}");
        assert!(s.correct > 0, "never blamed the thrasher: {s:?}");
        assert!(s.precision() >= 0.5, "precision too low: {s:?}");
    }
}
