//! Tiny `--key value` / `--flag` parser shared by the experiment
//! binaries (mirrors the root `cpi2` CLI's parser, without a dependency
//! on that binary crate).

/// Parsed command-line items.
#[derive(Debug)]
pub struct Args {
    items: Vec<String>,
}

impl Args {
    /// Captures the process arguments (program name excluded).
    pub fn new() -> Self {
        Args {
            items: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from explicit items (tests).
    pub fn from_items(items: &[&str]) -> Self {
        Args {
            items: items.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The raw value following `--key`, if present.
    pub fn value(&self, key: &str) -> Option<&str> {
        self.items
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.items.get(i + 1))
            .map(String::as_str)
    }

    /// The value following `--key` parsed as `T`, or `default` when the
    /// key is absent or unparsable.
    pub fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.value(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the boolean `--key` appears.
    pub fn flag(&self, key: &str) -> bool {
        self.items.iter().any(|a| a == key)
    }

    /// First positional item parsed as `T` — the legacy interface of
    /// binaries that predate keyed flags. A token is positional when
    /// neither it nor the token before it starts with `--` (so keyed
    /// values like the `60` in `--seconds 60` don't count; nor does
    /// anything after a boolean flag, an ambiguity the keyed form
    /// avoids).
    pub fn positional<T: std::str::FromStr>(&self) -> Option<T> {
        self.items
            .iter()
            .enumerate()
            .find(|(i, a)| {
                !a.starts_with("--") && (*i == 0 || !self.items[i - 1].starts_with("--"))
            })
            .and_then(|(_, a)| a.parse().ok())
    }
}

impl Default for Args {
    fn default() -> Self {
        Args::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_lookup() {
        let a = Args::from_items(&["--machines", "8", "--quick"]);
        assert_eq!(a.parsed("--machines", 0u32), 8);
        assert_eq!(a.parsed("--seconds", 60i64), 60);
        assert!(a.flag("--quick"));
        assert!(!a.flag("--slow"));
        assert_eq!(a.value("--machines"), Some("8"));
    }

    #[test]
    fn bare_positional() {
        let a = Args::from_items(&["150"]);
        assert_eq!(a.positional::<u32>(), Some(150));
        let b = Args::from_items(&["150", "--quick"]);
        assert_eq!(b.positional::<u32>(), Some(150));
    }

    #[test]
    fn keyed_values_are_not_positional() {
        // `fleet_rate --seconds 60` must not read 60 as a machine count.
        let a = Args::from_items(&["--seconds", "60"]);
        assert_eq!(a.positional::<u32>(), None);
    }
}
