//! Ablation: the detection parameters of Table 2.
//!
//! The paper chose 2σ + 3-violations-in-5-minutes + a 10-minute
//! correlation window "based on the experimental evaluation" (§5). This
//! sweep quantifies the tradeoffs those choices buy:
//!
//! * outlier σ — lower detects faster but false-alarms on clean machines;
//! * violations required — fewer detects faster but trusts noise;
//! * correlation window — shorter identifies faster but mis-ranks
//!   suspects.
//!
//! Run: `cargo run -p cpi2-bench --release --bin ablation_params`

use cpi2::core::Cpi2Config;
use cpi2::harness::{task_for, Cpi2Harness};
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, ResourceProfile, SimDuration};
use cpi2::workloads::{CacheThrasher, LsService};
use cpi2_bench::plot;

struct Run {
    /// Minutes from antagonist arrival to first incident; `None` = missed.
    detection_latency_min: Option<f64>,
    /// Incidents during the clean phase (false alarms).
    clean_incidents: usize,
    /// Whether the top suspect of the first incident was the thrasher.
    correct: Option<bool>,
}

fn run_with(config: Cpi2Config, seed: u64) -> Run {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("victim", 6, 1.2),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.2,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .expect("placement");
    let mut system = Cpi2Harness::new(cluster, config);
    system.run_for(SimDuration::from_mins(26));
    system.force_spec_refresh();

    // Clean phase: an hour with no antagonist.
    system.run_for(SimDuration::from_hours(1));
    let clean_incidents = system.incidents().len();

    // Antagonist arrives.
    let job = system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 3, 1.0),
            true,
            Box::new(move |i| Box::new(CacheThrasher::new(8.0, 300, 300, seed ^ 0x77 ^ i as u64))),
        )
        .expect("placement");
    let arrival = system.cluster.now();
    let deadline = arrival + SimDuration::from_mins(45);
    while system.cluster.now() < deadline {
        system.step();
        if system.incidents().len() > clean_incidents {
            let mi = &system.incidents()[clean_incidents];
            let latency = (system.cluster.now() - arrival).as_secs_f64() / 60.0;
            let correct = mi
                .incident
                .top_suspect()
                .map(|s| task_for(s.task).job == job);
            return Run {
                detection_latency_min: Some(latency),
                clean_incidents,
                correct,
            };
        }
    }
    Run {
        detection_latency_min: None,
        clean_incidents,
        correct: None,
    }
}

fn summarize(name: String, runs: Vec<Run>) -> Vec<String> {
    let n = runs.len() as f64;
    let detected: Vec<f64> = runs
        .iter()
        .filter_map(|r| r.detection_latency_min)
        .collect();
    let latency = if detected.is_empty() {
        "missed".to_string()
    } else {
        format!(
            "{:.1} min",
            detected.iter().sum::<f64>() / detected.len() as f64
        )
    };
    let false_alarms: usize = runs.iter().map(|r| r.clean_incidents).sum();
    let correct = runs.iter().filter(|r| r.correct == Some(true)).count();
    vec![
        name,
        format!("{}/{}", detected.len(), n as usize),
        latency,
        format!("{false_alarms}"),
        format!("{correct}/{}", detected.len()),
    ]
}

fn main() {
    let seeds = [11u64, 23, 47];
    let headers = [
        "configuration",
        "detected",
        "mean latency",
        "false alarms (1h clean)",
        "correct suspect",
    ];

    // Sweep 1: outlier sigma.
    let mut rows = Vec::new();
    for sigma in [1.0, 2.0, 3.0] {
        let runs: Vec<Run> = seeds
            .iter()
            .map(|&s| {
                let c = Cpi2Config {
                    min_samples_per_task: 5,
                    outlier_sigma: sigma,
                    ..Cpi2Config::default()
                };
                run_with(c, s)
            })
            .collect();
        rows.push(summarize(format!("outlier σ = {sigma}"), runs));
    }
    plot::print_table("Ablation 1: outlier threshold (paper: 2σ)", &headers, &rows);

    // Sweep 2: violations required.
    let mut rows = Vec::new();
    for v in [1u32, 3, 5] {
        let runs: Vec<Run> = seeds
            .iter()
            .map(|&s| {
                let c = Cpi2Config {
                    min_samples_per_task: 5,
                    violations_required: v,
                    ..Cpi2Config::default()
                };
                run_with(c, s)
            })
            .collect();
        rows.push(summarize(format!("{v} violations / 5 min"), runs));
    }
    plot::print_table(
        "Ablation 2: violation count (paper: 3 in 5 minutes)",
        &headers,
        &rows,
    );

    // Sweep 3: correlation window.
    let mut rows = Vec::new();
    for mins in [5i64, 10, 20] {
        let runs: Vec<Run> = seeds
            .iter()
            .map(|&s| {
                let c = Cpi2Config {
                    min_samples_per_task: 5,
                    correlation_window_s: mins * 60,
                    ..Cpi2Config::default()
                };
                run_with(c, s)
            })
            .collect();
        rows.push(summarize(format!("{mins}-minute window"), runs));
    }
    plot::print_table(
        "Ablation 3: correlation window (paper: 10 minutes)",
        &headers,
        &rows,
    );

    // Sweep 4: age-weighting decay. A job drifts (new binary release at
    // period 6 halves its CPI); the spec must follow quickly without
    // forgetting history. We report how many refresh periods the spec
    // needs to get within 10 % of the new behaviour.
    let mut rows = Vec::new();
    for decay in [0.0, 0.5, 0.9, 1.0] {
        let cfg = cpi2::core::Cpi2Config {
            min_samples_per_task: 5,
            age_decay: decay,
            ..cpi2::core::Cpi2Config::default()
        };
        let mut builder = cpi2::core::SpecBuilder::new(cfg);
        let feed = |b: &mut cpi2::core::SpecBuilder, cpi: f64| {
            for task in 0..6u64 {
                for m in 0..20 {
                    b.add_sample(&cpi2::core::CpiSample {
                        task: cpi2::core::TaskHandle(task),
                        jobname: "drifting".into(),
                        platforminfo: "p".into(),
                        timestamp: m * 60_000_000,
                        cpu_usage: 1.0,
                        cpi,
                        l3_mpki: 0.0,
                        class: cpi2::core::TaskClass::latency_sensitive(),
                    });
                }
            }
        };
        for _ in 0..6 {
            feed(&mut builder, 2.0);
            builder.roll_period();
        }
        // The release: CPI drops to 1.0.
        let mut periods_to_adapt = None;
        for p in 1..=20 {
            feed(&mut builder, 1.0);
            let specs = builder.roll_period();
            let mean = specs[0].cpi_mean;
            if periods_to_adapt.is_none() && (mean - 1.0).abs() < 0.1 {
                periods_to_adapt = Some(p);
            }
        }
        rows.push(vec![
            format!("decay = {decay}"),
            periods_to_adapt
                .map(|p| format!("{p} periods"))
                .unwrap_or_else(|| "never (>20)".into()),
            match decay {
                0.0 => "no memory: instant but spec jitters day to day".into(),
                1.0 => "full memory: drags old behaviour forever".into(),
                _ => "smooth adaptation".into(),
            },
        ]);
    }
    plot::print_table(
        "Ablation 4: age-weighting decay (paper: ~0.9/day)",
        &[
            "configuration",
            "periods to re-learn after a release",
            "character",
        ],
        &rows,
    );

    // Sweep 5: the sampling duty cycle (Table 2: 10 s counted per
    // 1-minute period, chosen "to give other measurement tools time to
    // use the counters"). Shorter windows are noisier per reading; longer
    // ones monopolize the counters. We measure per-reading CPI dispersion
    // on a steady task.
    use cpi2::perf::{MachineSampler, SamplerConfig};
    use cpi2::sim::{
        ConstantLoad, JobId as SimJobId, Machine, MachineId, Priority, SchedClass, SimTime,
        TaskId as SimTaskId, TaskInstance,
    };
    use cpi2_stats::summary::RunningStats;
    let mut rows = Vec::new();
    for window_s in [2i64, 10, 30] {
        let mut machine = Machine::new(MachineId(0), Platform::westmere(), 11);
        let mut profile = ResourceProfile::cache_heavy();
        profile.cpi_noise = 0.08; // Per-tick measurement-scale noise.
        machine.add_task(
            TaskInstance {
                id: SimTaskId {
                    job: SimJobId(1),
                    index: 0,
                },
                model: Box::new(ConstantLoad::new(2.0, 8, profile)),
            },
            "steady",
            SchedClass::LatencySensitive,
            Priority::Production,
            None,
        );
        let mut sampler = MachineSampler::new(SamplerConfig {
            window: SimDuration::from_secs(window_s),
            period: SimDuration::from_secs(60),
            phase: SimDuration::from_secs(0),
        });
        let mut cpis = RunningStats::new();
        let dt = SimDuration::from_secs(1);
        for i in 0..(600 * 60) {
            let now = SimTime::from_secs(i);
            machine.tick(now, dt, &mut Vec::new());
            for r in sampler.poll(&machine, now + dt) {
                if let Some(cpi) = r.cpi {
                    cpis.push(cpi);
                }
            }
        }
        rows.push(vec![
            format!("{window_s} s / 60 s"),
            format!("{}", cpis.count()),
            format!("{:.2}%", cpis.cv() * 100.0),
            format!("{:.0}%", window_s as f64 / 60.0 * 100.0),
        ]);
    }
    plot::print_table(
        "Ablation 5: sampling window (paper: 10 s per minute)",
        &[
            "window / period",
            "readings (10 h)",
            "per-reading CPI dispersion",
            "counter occupancy",
        ],
        &rows,
    );

    println!("\nablation_params OK");
}
