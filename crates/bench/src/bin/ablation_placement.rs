//! Ablation: interference-blind vs cache-aware placement.
//!
//! §8 surveys contention-aware scheduling (Zhuravlev et al., Blagodurov
//! et al.) and §9 lists "affinity-based placement" as a valuable
//! complement to throttling. This experiment runs the same workload under
//! the paper-era CPU-load-only scheduler and under a cache-pressure-aware
//! one, and measures what better placement buys *before* CPI² ever has to
//! act: fewer contended victims, fewer incidents, fewer caps.
//!
//! Run: `cargo run -p cpi2-bench --release --bin ablation_placement`

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, JobSpec, PlacementPolicy, Platform, ResourceProfile, SimDuration,
};
use cpi2::workloads::{CacheThrasher, LsService};
use cpi2_bench::{metrics, plot};

struct Outcome {
    mean_cpi: f64,
    p95_cpi: f64,
    incidents: usize,
    caps: u64,
    max_cache_pressure: f64,
}

fn run(policy: PlacementPolicy, seed: u64) -> Outcome {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 12);
    cluster.scheduler_mut().set_policy(policy);

    // Heterogeneous footprints: the interesting placement decisions.
    cluster
        .submit_job(
            JobSpec::latency_sensitive("heavy-serving", 8, 1.2),
            true,
            Box::new(move |i| {
                let mut p = ResourceProfile::cache_heavy();
                p.cache_mb = 8.0;
                Box::new(LsService::new(p, 1.2, 12, seed ^ i as u64))
            }),
        )
        .expect("placement");
    cluster
        .submit_job(
            JobSpec::latency_sensitive("light-serving", 12, 1.0),
            true,
            Box::new(move |i| {
                let mut p = ResourceProfile::compute_bound();
                p.cache_mb = 0.5;
                Box::new(LsService::new(p, 1.0, 8, seed ^ 0x55 ^ i as u64))
            }),
        )
        .expect("placement");
    cluster
        .submit_job(
            JobSpec::best_effort("stream-batch", 4, 1.0),
            true,
            Box::new(move |i| {
                Box::new(
                    CacheThrasher::new(5.0, 400, 500, seed ^ 0xAA ^ i as u64).with_footprint(14.0),
                )
            }),
        )
        .expect("placement");

    let max_cache_pressure = cluster
        .machines()
        .iter()
        .map(|m| cluster.scheduler().reserved_cache_mb(m.id).unwrap_or(0.0) / m.platform.l3_mb)
        .fold(0.0f64, f64::max);

    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();

    // Two hours of operation, sampling the heavy job's CPI each minute.
    let mut cpis = Vec::new();
    for tick in 0..7200 {
        system.step();
        if tick % 60 == 0 {
            if let Some(m) =
                metrics::job_tick(&system.cluster, "heavy-serving", system.cluster.tick_len())
            {
                cpis.push(m.cpi);
            }
        }
    }
    cpis.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Outcome {
        mean_cpi: cpis.iter().sum::<f64>() / cpis.len().max(1) as f64,
        p95_cpi: cpis[((cpis.len() as f64 * 0.95) as usize).min(cpis.len() - 1)],
        incidents: system.incidents().len(),
        caps: system.caps_applied(),
        max_cache_pressure,
    }
}

fn main() {
    let seeds = [3u64, 17, 29];
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for (policy, name) in [
        (PlacementPolicy::LeastLoaded, "least-loaded (paper era)"),
        (PlacementPolicy::CacheAware, "cache-aware (§9 direction)"),
    ] {
        let outcomes: Vec<Outcome> = seeds.iter().map(|&s| run(policy, s)).collect();
        let n = outcomes.len() as f64;
        let mean_cpi = outcomes.iter().map(|o| o.mean_cpi).sum::<f64>() / n;
        let p95 = outcomes.iter().map(|o| o.p95_cpi).sum::<f64>() / n;
        let incidents = outcomes.iter().map(|o| o.incidents).sum::<usize>();
        let caps: u64 = outcomes.iter().map(|o| o.caps).sum();
        let pressure = outcomes.iter().map(|o| o.max_cache_pressure).sum::<f64>() / n;
        rows.push(vec![
            name.to_string(),
            plot::f(mean_cpi),
            plot::f(p95),
            format!("{incidents}"),
            format!("{caps}"),
            plot::f(pressure),
        ]);
        summary.push((mean_cpi, incidents));
    }
    plot::print_table(
        "Placement-policy ablation (3 seeds, 2 h each; victim = heavy-serving)",
        &[
            "policy",
            "mean victim CPI",
            "p95 victim CPI",
            "incidents",
            "caps",
            "max cache pressure",
        ],
        &rows,
    );

    let (blind_cpi, blind_incidents) = summary[0];
    let (aware_cpi, aware_incidents) = summary[1];
    assert!(
        aware_cpi <= blind_cpi * 1.02,
        "cache-aware placement must not hurt the victim: {blind_cpi} vs {aware_cpi}"
    );
    assert!(
        aware_incidents <= blind_incidents,
        "cache-aware placement should not create more incidents: {blind_incidents} vs {aware_incidents}"
    );
    println!(
        "\nablation_placement OK (mean CPI {blind_cpi:.2} -> {aware_cpi:.2}, incidents {blind_incidents} -> {aware_incidents})"
    );
}
