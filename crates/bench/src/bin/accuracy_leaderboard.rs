//! Antagonist-identification accuracy leaderboard.
//!
//! Sweeps every identification backend (the paper's §4.2 correlator, the
//! PANDA-style noise-resilient backend, and its three ablations) over
//! seeded ground-truth scenarios at each fault profile, then scores
//! precision / recall / MRR per backend and enforces the accuracy gate
//! (committed clean-profile floors for the paper backend; PANDA must be
//! at least as precise everywhere and strictly better on recall under
//! degraded pipelines).
//!
//! Run:
//! `cargo run -p cpi2-bench --release --bin accuracy_leaderboard -- \
//!    --seeds 1,2,3 --faults none,lossy,heavy [--minutes 120] \
//!    [--out LEADERBOARD.json] [--no-gate]`

use cpi2_bench::accuracy::{
    aggregate, gate, run_case, AccuracyCase, CaseScore, GateCheck, LeaderboardRow,
};
use cpi2_bench::args::Args;
use cpi2_bench::plot;
use cpi2_core::IdentifierKind;
use serde::Serialize;

/// Everything the run produced, serialized to `LEADERBOARD.json` (the CI
/// artifact).
#[derive(Serialize)]
struct Leaderboard {
    seeds: Vec<u64>,
    faults: Vec<String>,
    minutes: i64,
    runs: Vec<CaseScore>,
    summary: Vec<LeaderboardRow>,
    gate: Vec<GateCheck>,
    passed: bool,
}

fn csv_list(args: &Args, key: &str, default: &str) -> Vec<String> {
    args.value(key)
        .unwrap_or(default)
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let args = Args::new();
    let seeds: Vec<u64> = csv_list(&args, "--seeds", "1,2,3")
        .iter()
        .map(|s| s.parse().unwrap_or_else(|_| panic!("bad seed {s:?}")))
        .collect();
    let faults = csv_list(&args, "--faults", "none,lossy,heavy");
    let minutes = args.parsed("--minutes", 120i64);
    let out = args
        .value("--out")
        .unwrap_or("LEADERBOARD.json")
        .to_string();
    let enforce = !args.flag("--no-gate");

    let total = IdentifierKind::ALL.len() * seeds.len() * faults.len();
    eprintln!(
        "accuracy leaderboard: {} backends x {} seeds x {} faults = {total} runs of {minutes} min",
        IdentifierKind::ALL.len(),
        seeds.len(),
        faults.len()
    );
    let mut runs: Vec<CaseScore> = Vec::with_capacity(total);
    for kind in IdentifierKind::ALL {
        for fault in &faults {
            for &seed in &seeds {
                let case = AccuracyCase {
                    identifier: kind,
                    seed,
                    fault: fault.clone(),
                    minutes,
                };
                let score = match run_case(&case) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("FATAL: {}/{fault} seed {seed}: {e}", kind.name());
                        std::process::exit(2);
                    }
                };
                eprintln!(
                    "  {:<22} {:<6} seed {}: {} incidents, {} identified, {} correct",
                    score.identifier,
                    score.fault,
                    seed,
                    score.incidents,
                    score.identified,
                    score.correct
                );
                runs.push(score);
            }
        }
    }

    let summary = aggregate(&runs);
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|r| {
            vec![
                r.identifier.clone(),
                r.fault.clone(),
                r.incidents.to_string(),
                format!("{:.3}", r.precision),
                format!("{:.3}", r.recall),
                format!("{:.3}", r.mrr),
            ]
        })
        .collect();
    plot::print_table(
        "Antagonist-identification accuracy leaderboard",
        &[
            "backend",
            "faults",
            "incidents",
            "precision",
            "recall",
            "MRR",
        ],
        &rows,
    );

    let checks = gate(&summary, &faults);
    let passed = checks.iter().all(|c| c.passed);
    for c in &checks {
        println!(
            "  [{}] {} ({})",
            if c.passed { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        );
    }

    let board = Leaderboard {
        seeds,
        faults,
        minutes,
        runs,
        summary,
        gate: checks,
        passed,
    };
    let json = serde_json::to_string(&board).expect("leaderboard serializes");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");

    if enforce && !passed {
        eprintln!("accuracy gate FAILED");
        std::process::exit(1);
    }
    println!(
        "accuracy gate {}",
        if passed { "OK" } else { "skipped (--no-gate)" }
    );
}
