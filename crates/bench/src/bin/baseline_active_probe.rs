//! Baseline: passive correlation (CPI²) vs active probing (§4.2's
//! rejected alternative).
//!
//! The paper: "we'd rather the antagonist-detection system were not the
//! worst antagonist in the system!" — it chose passive correlation over
//! throttle-one-by-one probing. This experiment quantifies the choice on
//! identical scenarios with ground truth: identification accuracy, time
//! to a verdict, and CPU-time the *identification itself* denies to
//! innocent tasks.
//!
//! Run: `cargo run -p cpi2-bench --release --bin baseline_active_probe [trials]`

use cpi2::core::Cpi2Config;
use cpi2::harness::{task_for, Cpi2Harness};
use cpi2::sim::{
    Cluster, ClusterConfig, ConstantLoad, JobSpec, Platform, ResourceProfile, SimDuration, TaskId,
};
use cpi2::workloads::{CacheThrasher, LsService};
use cpi2_bench::plot;
use cpi2_bench::probe::{active_identify, ProbeConfig};

struct Scenario {
    system: Cpi2Harness,
    machine: cpi2::sim::MachineId,
    victim: TaskId,
    antagonist: TaskId,
}

/// One machine: victim + 4 busy innocents + a bursty antagonist, specs
/// learned cleanly first.
fn build(seed: u64) -> Option<Scenario> {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 6);
    let victim_job = cluster
        .submit_job(
            JobSpec::latency_sensitive("victim", 6, 1.2),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.2,
                    12,
                    seed ^ i as u64,
                ))
            }),
        )
        .ok()?;
    // Busy but innocent batch tasks everywhere (high CPU, tiny footprint):
    // exactly what an activity heuristic would probe first.
    cluster
        .submit_job(
            JobSpec::batch("innocent", 24, 0.8),
            true,
            Box::new(move |i| {
                let mut p = ResourceProfile::compute_bound();
                p.cache_mb = 0.2;
                p.mpki_solo = 0.05;
                Box::new(ConstantLoad::new(2.0 + (i % 3) as f64, 4, p))
            }),
        )
        .ok()?;

    let config = Cpi2Config {
        min_samples_per_task: 5,
        auto_throttle: false,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.run_for(SimDuration::from_mins(26));
    system.force_spec_refresh();

    let ant_job = system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 1, 1.0),
            true,
            Box::new(move |_| Box::new(CacheThrasher::new(8.0, 240, 240, seed ^ 0x99))),
        )
        .ok()?;
    let antagonist = TaskId {
        job: ant_job,
        index: 0,
    };
    let machine = system.cluster.locate(antagonist)?;
    let victim = system
        .cluster
        .machine(machine)?
        .tasks()
        .find(|t| t.id.job == victim_job)
        .map(|t| t.id)?;
    Some(Scenario {
        system,
        machine,
        victim,
        antagonist,
    })
}

#[derive(Default)]
struct ArmStats {
    trials: u32,
    correct: u32,
    identified: u32,
    innocent_cpu_s: f64,
    elapsed_s: f64,
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let mut passive = ArmStats::default();
    let mut active = ArmStats::default();

    for i in 0..n {
        let seed = 0xBA5E + i as u64 * 101;

        // --- Passive arm: wait for the agent's incident. ----------------
        if let Some(mut sc) = build(seed) {
            passive.trials += 1;
            let start = sc.system.cluster.now();
            let deadline = start + SimDuration::from_mins(45);
            let mut verdict = None;
            while sc.system.cluster.now() < deadline && verdict.is_none() {
                sc.system.step();
                if let Some(mi) = sc.system.incidents().iter().find(|mi| {
                    mi.machine == sc.machine && task_for(mi.incident.victim) == sc.victim
                }) {
                    verdict = mi
                        .incident
                        .suspects
                        .iter()
                        .find(|s| s.class.throttle_eligible() && s.correlation >= 0.35)
                        .map(|s| task_for(s.task));
                }
            }
            passive.elapsed_s += (sc.system.cluster.now() - start).as_us() as f64 / 1e6;
            if let Some(t) = verdict {
                passive.identified += 1;
                if t == sc.antagonist {
                    passive.correct += 1;
                }
            }
            // Passive identification throttles nobody.
        }

        // --- Active arm: probe suspects one by one. ---------------------
        if let Some(mut sc) = build(seed) {
            active.trials += 1;
            // Give the victim time to be visibly degraded first (parity
            // with the passive arm's detection input).
            sc.system.run_for(SimDuration::from_mins(6));
            let r = active_identify(
                &mut sc.system,
                sc.machine,
                sc.victim,
                sc.antagonist,
                &ProbeConfig::default(),
            );
            active.elapsed_s += r.elapsed_s as f64 + 360.0;
            active.innocent_cpu_s += r.innocent_disruption_cpu_s;
            if let Some(t) = r.identified {
                active.identified += 1;
                if t == sc.antagonist {
                    active.correct += 1;
                }
            }
        }
    }

    let row = |name: &str, s: &ArmStats| {
        vec![
            name.to_string(),
            format!("{}/{}", s.correct, s.trials),
            format!("{}/{}", s.identified, s.trials),
            format!("{:.1} min", s.elapsed_s / s.trials.max(1) as f64 / 60.0),
            format!("{:.0} CPU-s", s.innocent_cpu_s / s.trials.max(1) as f64),
        ]
    };
    plot::print_table(
        "Passive correlation (CPI²) vs active probing (§4.2 baseline)",
        &[
            "scheme",
            "correct",
            "identified",
            "mean time to verdict",
            "innocent CPU denied / trial",
        ],
        &[
            row("passive (CPI2)", &passive),
            row("active probing", &active),
        ],
    );

    assert!(passive.trials >= 5, "too few usable trials");
    assert!(
        passive.correct as f64 >= passive.trials as f64 * 0.6,
        "passive accuracy collapsed"
    );
    assert_eq!(
        passive.innocent_cpu_s, 0.0,
        "passive identification must not throttle anyone"
    );
    assert!(
        active.innocent_cpu_s / active.trials.max(1) as f64 > 50.0,
        "active probing should visibly disrupt innocents: {}",
        active.innocent_cpu_s
    );
    println!(
        "\nbaseline_active_probe OK (passive {}/{} correct at zero disruption; active denies {:.0} CPU-s/trial to innocents)",
        passive.correct,
        passive.trials,
        active.innocent_cpu_s / active.trials.max(1) as f64
    );
}
