//! Case 1 (Fig. 8): a video-processing batch job degrades a
//! latency-sensitive task; CPI² ranks suspects, and the operator kills the
//! culprit.
//!
//! Paper narrative: the victim's CPI climbed from its threshold of 2.0 to
//! 5.0; the machine had 57 tenants; the top-5 suspect list put
//! video-processing (the only non-latency-sensitive suspect) first at
//! correlation 0.46; a system administrator killed it and "the victim's
//! performance returned to normal".
//!
//! Run: `cargo run -p cpi2-bench --release --bin case1_kill`

use cpi2::harness::task_for;
use cpi2::sim::JobSpec;
use cpi2::workloads::BatchTask;
use cpi2_bench::plot;
use cpi2_bench::scenario::{build_case, record, ScenarioSpec, Timeline};

fn main() {
    let mut sc = None;
    for seed in 1.. {
        sc = build_case(
            &ScenarioSpec {
                seed,
                tenants: 300, // ~50+ tenants per machine, as in the paper.
                ..Default::default()
            },
            JobSpec::best_effort("video-processing", 1, 1.0),
            true,
            Box::new(|i| Box::new(BatchTask::video_processing(42 + i as u64))),
        );
        if sc.is_some() {
            break;
        }
        if seed > 20 {
            panic!("no co-located layout found");
        }
    }
    let mut sc = sc.expect("scenario");
    let tenants = sc.system.cluster.machine(sc.machine).unwrap().task_count();
    println!("machine {} has {} tenants (paper: 57)", sc.machine, tenants);

    // Record the degradation phase until an incident names our victim.
    let mut tl = Timeline::default();
    let mut incident = None;
    for chunk in 0..90 {
        record(&mut sc, &mut tl, chunk as f64, 60, 30);
        if let Some(mi) = sc
            .system
            .incidents()
            .iter()
            .find(|mi| mi.machine == sc.machine && task_for(mi.incident.victim) == sc.victim)
        {
            incident = Some(mi.incident.clone());
            break;
        }
    }
    let incident = incident.expect("incident detected");

    // Fig. 8a: the top-5 suspect table.
    let rows: Vec<Vec<String>> = incident
        .suspects
        .iter()
        .take(5)
        .map(|s| {
            vec![
                s.jobname.clone(),
                if s.class.latency_sensitive {
                    "latency-sensitive".into()
                } else {
                    "batch".into()
                },
                plot::f(s.correlation),
            ]
        })
        .collect();
    plot::print_table(
        "Fig 8a: top antagonist suspects",
        &["job", "type", "correlation"],
        &rows,
    );

    let top_batch = incident
        .suspects
        .iter()
        .find(|s| !s.class.latency_sensitive)
        .expect("a batch suspect");
    assert_eq!(top_batch.jobname, "video-processing");
    assert!(
        top_batch.correlation >= 0.35,
        "corr={}",
        top_batch.correlation
    );

    // Operator action: kill the antagonist (the paper's admin did).
    let before = tl.victim_mean(tl.minutes.last().copied().unwrap_or(0.0) - 10.0, f64::MAX);
    let kill_at = tl.minutes.last().copied().unwrap_or(0.0);
    println!(
        "\noperator kills {} at minute {kill_at:.0}",
        top_batch.jobname
    );
    sc.system.cluster.kill_task(task_for(top_batch.task));
    record(&mut sc, &mut tl, kill_at, 1200, 30);
    let after = tl.victim_mean(kill_at + 5.0, f64::MAX);

    plot::multi_series(
        "Fig 8b: victim CPI and antagonist CPU usage",
        "minute",
        "CPI / cores",
        &[
            ("victim CPI", &tl.victim_series()),
            ("antagonist CPU", &tl.ant_series()),
        ],
    );
    plot::print_table(
        "Case 1 summary",
        &["metric", "measured", "paper"],
        &[
            vec![
                "victim CPI before kill".into(),
                plot::f(before),
                "~5.0 (threshold 2.0)".into(),
            ],
            vec![
                "victim CPI after kill".into(),
                plot::f(after),
                "returned to normal".into(),
            ],
            vec![
                "top suspect".into(),
                top_batch.jobname.clone(),
                "video processing (0.46)".into(),
            ],
        ],
    );
    assert!(
        after < before * 0.75,
        "kill must restore the victim: {before} -> {after}"
    );
    println!("\ncase1 OK (victim {before:.2} -> {after:.2} after kill)");
}
