//! Case 2 (Fig. 9): hard-capping a best-effort batch antagonist restores
//! the victim, and the interference returns when the cap lifts.
//!
//! Paper narrative: one of 354 latency-sensitive tasks consistently
//! exceeded its CPI threshold (1.7) on a 42-tenant machine; the top
//! suspects scored 0.31–0.34 and CPI² picked a best-effort batch job.
//! Capping it for ~15 minutes halved the victim's CPI (2.0 → 1.0); "once
//! the hard-capping stopped ... the victim's CPI rose again."
//!
//! Run: `cargo run -p cpi2-bench --release --bin case2_hardcap`

use cpi2::sim::{JobSpec, ResourceProfile, SimDuration};
use cpi2::workloads::LsService;
use cpi2_bench::plot;
use cpi2_bench::scenario::{build_case, record, ScenarioSpec, Timeline};

fn main() {
    let mut sc = None;
    for seed in 100.. {
        sc = build_case(
            &ScenarioSpec {
                seed,
                tenants: 240,
                ..Default::default()
            },
            JobSpec::best_effort("replayer-batch", 1, 1.0),
            true,
            // A steady streaming hog (constant usage, like the paper's
            // modest 0.31–0.34 correlations).
            Box::new(move |_| Box::new(LsService::new(ResourceProfile::streaming(), 5.0, 8, seed))),
        );
        if sc.is_some() {
            break;
        }
        if seed > 120 {
            panic!("no co-located layout found");
        }
    }
    let mut sc = sc.expect("scenario");

    let mut tl = Timeline::default();
    // Phase 1: interference, no action (≈35 min).
    record(&mut sc, &mut tl, 0.0, 35 * 60, 30);
    let before = tl.victim_mean(20.0, 35.0);

    // The §4.2 correlation the agent computed for this pair.
    let spec = sc
        .system
        .spec_store
        .get(&cpi2::core::JobKey::new(
            "victim-service",
            "westmere-2.6GHz",
        ))
        .expect("spec");
    let agent = sc.system.agent(sc.machine).expect("agent");
    let corr = agent
        .correlation_between(
            cpi2::harness::handle_for(sc.victim),
            cpi2::harness::handle_for(sc.antagonist),
            spec.outlier_threshold(2.0),
        )
        .unwrap_or(0.0);
    println!("antagonist correlation = {corr:.2} (paper: 0.31-0.34 band)");

    // Phase 2: operator hard-caps the antagonist for ~14 minutes.
    let cap_start = tl.minutes.last().copied().unwrap();
    let until = sc.system.cluster.now() + SimDuration::from_mins(14);
    sc.system.cluster.apply_hard_cap(sc.antagonist, 0.1, until);
    println!("hard cap 0.1 CPU-sec/sec applied at minute {cap_start:.0} for 14 min");
    record(&mut sc, &mut tl, cap_start, 14 * 60, 30);
    let during = tl.victim_mean(cap_start + 2.0, cap_start + 14.0);

    // Phase 3: cap expires; interference returns (≈25 min).
    let release = tl.minutes.last().copied().unwrap();
    record(&mut sc, &mut tl, release, 25 * 60, 30);
    let after = tl.victim_mean(release + 3.0, f64::MAX);

    plot::multi_series(
        "Fig 9: victim CPI and antagonist CPU (cap minutes shaded by usage drop)",
        "minute",
        "CPI / cores",
        &[
            ("victim CPI", &tl.victim_series()),
            ("antagonist CPU", &tl.ant_series()),
        ],
    );
    plot::print_table(
        "Case 2 summary",
        &["phase", "victim CPI", "paper"],
        &[
            vec!["before cap".into(), plot::f(before), "~2.0".into()],
            vec!["during cap".into(), plot::f(during), "~1.0".into()],
            vec![
                "after cap expires".into(),
                plot::f(after),
                "rises again".into(),
            ],
        ],
    );
    assert!(
        during < before * 0.75,
        "cap must improve victim: {before} -> {during}"
    );
    assert!(
        after > during * 1.15,
        "interference must return: {during} -> {after}"
    );
    println!("\ncase2 OK (CPI {before:.2} -> {during:.2} under cap -> {after:.2} after)");
}
