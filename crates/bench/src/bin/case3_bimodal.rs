//! Case 3 (Fig. 10): self-inflicted CPI swings — a false alarm the
//! minimum-usage filter suppresses.
//!
//! Paper narrative: a front-end web service's CPI fluctuated between ~3
//! and ~10 on a 28-tenant machine, but the best suspect correlation was
//! only 0.07, so CPI² took no action. "High CPI corresponds to periods of
//! low CPU usage, and vice versa ... normal for this application. The
//! minimum CPU usage threshold ... was developed to filter out this kind
//! of false alarm."
//!
//! Run: `cargo run -p cpi2-bench --release --bin case3_bimodal`

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, ResourceProfile, SimDuration};
use cpi2::workloads::{self, LsService};
use cpi2_bench::plot;
use cpi2_stats::correlation::pearson;

fn build(min_cpu_usage: f64) -> Cpi2Harness {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 33,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 4);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("bimodal-frontend", 8, 0.5),
            true,
            workloads::factory("bimodal-frontend", 3),
        )
        .expect("placement");
    // A crowd of ordinary tenants (the paper's machine had 28).
    cluster
        .submit_job(
            JobSpec::latency_sensitive("tenant", 100, 0.1),
            true,
            Box::new(|i| {
                let mut p = ResourceProfile::compute_bound();
                p.cache_mb = 0.3;
                Box::new(LsService::new(p, 0.1, 4, i as u64 ^ 0x33))
            }),
        )
        .expect("placement");
    let config = Cpi2Config {
        min_samples_per_task: 5,
        min_cpu_usage,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.record_samples = true;
    system.run_for(SimDuration::from_hours(1));
    system.force_spec_refresh();
    system.run_for(SimDuration::from_hours(2));
    system
}

fn main() {
    // With the paper's 0.25 CPU-sec/sec filter.
    let system = build(0.25);
    let samples: Vec<_> = system
        .samples
        .iter()
        .filter(|s| s.jobname == "bimodal-frontend")
        .collect();
    let t0 = samples.first().map(|s| s.timestamp).unwrap_or(0);
    let cpi_series: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| ((s.timestamp - t0) as f64 / 60e6, s.cpi))
        .collect();
    let usage_series: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| ((s.timestamp - t0) as f64 / 60e6, s.cpu_usage * 20.0))
        .collect();
    plot::multi_series(
        "Fig 10: 'victim' CPI and CPU usage (x20) — self-inflicted swings",
        "minute",
        "CPI / usage",
        &[("CPI", &cpi_series), ("CPU usage x20", &usage_series)],
    );

    let cpis: Vec<f64> = samples.iter().map(|s| s.cpi).collect();
    let usages: Vec<f64> = samples.iter().map(|s| s.cpu_usage).collect();
    let r = pearson(&cpis, &usages).unwrap_or(0.0);

    // Ablation: the same scenario with the usage filter disabled.
    let unfiltered = build(0.0);
    let alarms_without_filter = unfiltered
        .incidents()
        .iter()
        .filter(|mi| mi.incident.victim_job == "bimodal-frontend")
        .count();
    let low_corr_alarms = unfiltered
        .incidents()
        .iter()
        .filter(|mi| mi.incident.victim_job == "bimodal-frontend")
        .filter(|mi| match mi.incident.top_suspect() {
            Some(s) => s.correlation < 0.35,
            None => true,
        })
        .count();

    plot::print_table(
        "Case 3 summary",
        &["metric", "measured", "paper"],
        &[
            vec![
                "CPI-usage correlation".into(),
                plot::f(r),
                "strongly negative (bimodal)".into(),
            ],
            vec![
                "incidents with 0.25 filter".into(),
                format!(
                    "{}",
                    system
                        .incidents()
                        .iter()
                        .filter(|mi| mi.incident.victim_job == "bimodal-frontend")
                        .count()
                ),
                "0 (filtered)".into(),
            ],
            vec![
                "alarms without filter".into(),
                format!("{alarms_without_filter} ({low_corr_alarms} with corr < 0.35)"),
                "would fire; corr ~0.07 ⇒ no action".into(),
            ],
            vec![
                "caps applied".into(),
                format!("{}", system.caps_applied()),
                "none".into(),
            ],
        ],
    );
    assert!(r < -0.5, "CPI and usage must be anti-correlated, r={r}");
    assert_eq!(
        system
            .incidents()
            .iter()
            .filter(|mi| mi.incident.victim_job == "bimodal-frontend")
            .count(),
        0,
        "the usage filter must suppress the false alarm"
    );
    assert!(
        alarms_without_filter > 0,
        "without the filter the false alarm should fire"
    );
    assert_eq!(system.caps_applied(), 0);
    println!("\ncase3 OK (r = {r:.2}; filter suppressed {alarms_without_filter} false alarms)");
}
