//! Case 4 (Fig. 11): many suspects, only one eligible — and capping it
//! helps only modestly.
//!
//! Paper narrative: a user-facing task crossed its threshold (1.05) with 9
//! suspects, of which only the scientific simulation (corr 0.36) was
//! non-latency-sensitive. The first throttle "had barely any effect"; a
//! second try dropped the victim's CPI from 1.6 to 1.3. "The correct
//! response in a case like this would be to migrate the victim."
//!
//! The mechanism: most of the interference comes from busy
//! latency-sensitive neighbours that CPI² will not cap.
//!
//! Run: `cargo run -p cpi2-bench --release --bin case4_modest`

use cpi2::harness::task_for;
use cpi2::sim::{JobSpec, ResourceProfile, SimDuration};
use cpi2::workloads::{BatchTask, LsService};
use cpi2_bench::plot;
use cpi2_bench::scenario::{build_case, record, ScenarioSpec, Timeline};

fn main() {
    let mut sc = None;
    for seed in 400..430 {
        let built = build_case(
            &ScenarioSpec {
                seed,
                tenants: 200,
                ..Default::default()
            },
            JobSpec::batch("scientific-simulation", 1, 1.0),
            true,
            Box::new(move |_| Box::new(BatchTask::scientific_simulation(seed))),
        );
        if let Some(mut s) = built {
            // Pile busy latency-sensitive neighbours onto the same machine:
            // they are the *real* bulk of the interference, but are
            // ineligible for capping. Submit cluster-wide so several land
            // on the contended machine.
            let names = [
                "production-service",
                "compilation-service",
                "security-service",
                "statistics",
                "data-query",
                "maps-service",
                "image-render",
                "ads-serving",
            ];
            for (j, name) in names.iter().enumerate() {
                let _ = s.system.cluster.submit_job(
                    JobSpec::latency_sensitive(*name, 6, 0.7),
                    true,
                    Box::new(move |i| {
                        let mut p = ResourceProfile::cache_heavy();
                        p.cache_mb = 4.0;
                        Box::new(LsService::new(p, 0.7, 10, (j as u64) << 16 | i as u64))
                    }),
                );
            }
            sc = Some(s);
            break;
        }
    }
    let mut sc = sc.expect("scenario");

    // Let the LS neighbours + sci-sim degrade the victim; find the incident.
    let mut tl = Timeline::default();
    let mut incident = None;
    for chunk in 0..60 {
        record(&mut sc, &mut tl, chunk as f64, 60, 30);
        if let Some(mi) = sc
            .system
            .incidents()
            .iter()
            .find(|mi| mi.machine == sc.machine && task_for(mi.incident.victim) == sc.victim)
        {
            incident = Some(mi.incident.clone());
            break;
        }
    }
    let incident = incident.expect("incident detected");

    // Fig. 11a: the suspect table — many LS suspects, one batch. The
    // batch suspect is always listed (it is the only cappable one), the
    // LS crowd filtered to meaningful correlations.
    let mut listed: Vec<&cpi2::core::Suspect> = incident
        .suspects
        .iter()
        .filter(|s| s.class.latency_sensitive && s.correlation > 0.1)
        .take(8)
        .collect();
    if let Some(batch) = incident
        .suspects
        .iter()
        .find(|s| !s.class.latency_sensitive)
    {
        listed.push(batch);
    }
    listed.sort_by(|a, b| b.correlation.partial_cmp(&a.correlation).unwrap());
    let rows: Vec<Vec<String>> = listed
        .iter()
        .map(|s| {
            vec![
                s.jobname.clone(),
                if s.class.latency_sensitive {
                    "latency-sensitive".into()
                } else {
                    "batch".into()
                },
                plot::f(s.correlation),
            ]
        })
        .collect();
    plot::print_table(
        "Fig 11a: antagonist suspects",
        &["job", "type", "correlation"],
        &rows,
    );
    let ls_suspects = rows.iter().filter(|r| r[1] == "latency-sensitive").count();
    let batch_suspects = rows.iter().filter(|r| r[1] == "batch").count();
    println!(
        "{ls_suspects} latency-sensitive suspects, {batch_suspects} batch (paper: 8 LS, 1 batch)"
    );

    // Throttle the scientific simulation twice, as the paper did.
    let before = tl.victim_mean(tl.minutes.last().copied().unwrap() - 8.0, f64::MAX);
    let t1 = tl.minutes.last().copied().unwrap();
    let until = sc.system.cluster.now() + SimDuration::from_mins(10);
    sc.system.cluster.apply_hard_cap(sc.antagonist, 0.1, until);
    record(&mut sc, &mut tl, t1, 600, 30);
    let during1 = tl.victim_mean(t1 + 1.0, t1 + 10.0);
    // Gap, then the second throttle.
    let t_gap = tl.minutes.last().copied().unwrap();
    record(&mut sc, &mut tl, t_gap, 600, 30);
    let t2 = tl.minutes.last().copied().unwrap();
    let until = sc.system.cluster.now() + SimDuration::from_mins(10);
    sc.system.cluster.apply_hard_cap(sc.antagonist, 0.1, until);
    record(&mut sc, &mut tl, t2, 600, 30);
    let during2 = tl.victim_mean(t2 + 1.0, t2 + 10.0);

    plot::multi_series(
        "Fig 11b: victim CPI and throttled suspect's CPU",
        "minute",
        "CPI / cores",
        &[
            ("victim CPI", &tl.victim_series()),
            ("antagonist CPU", &tl.ant_series()),
        ],
    );
    let improvement1 = 1.0 - during1 / before;
    let improvement2 = 1.0 - during2 / before;
    plot::print_table(
        "Case 4 summary",
        &["phase", "victim CPI", "improvement", "paper"],
        &[
            vec!["before".into(), plot::f(before), "-".into(), "~1.6".into()],
            vec![
                "1st throttle".into(),
                plot::f(during1),
                format!("{:.0}%", improvement1 * 100.0),
                "barely any effect".into(),
            ],
            vec![
                "2nd throttle".into(),
                plot::f(during2),
                format!("{:.0}%", improvement2 * 100.0),
                "modest: 1.6 -> 1.3 (~19%)".into(),
            ],
        ],
    );
    assert!(ls_suspects >= 4, "most suspects must be latency-sensitive");
    assert_eq!(batch_suspects, 1, "exactly one eligible batch suspect");
    // The defining feature: improvement is modest (most interference comes
    // from uncappable neighbours), unlike Case 2's 2x.
    assert!(
        improvement1.max(improvement2) < 0.45,
        "improvement should be modest, got {improvement1:.2}/{improvement2:.2}"
    );
    println!(
        "\ncase4 OK (improvements {:.0}% / {:.0}% — modest, migrate instead)",
        improvement1 * 100.0,
        improvement2 * 100.0
    );
}
