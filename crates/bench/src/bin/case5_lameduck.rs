//! Case 5 (Fig. 12): an antagonist that tolerates capping via lame-duck
//! mode.
//!
//! Paper narrative: a replayer batch job runs ~8 threads; when hard-capped
//! its thread count "rapidly grows to around 80" (it spawns workers to
//! offload); when the cap stops it drops to 2 threads (a self-induced
//! lame-duck mode) for tens of minutes before reverting to 8. The victim's
//! CPI drops while the antagonist is throttled and for a while afterwards.
//!
//! Run: `cargo run -p cpi2-bench --release --bin case5_lameduck`

use cpi2::sim::{JobSpec, SimDuration};
use cpi2::workloads::LameDuckReplayer;
use cpi2_bench::plot;
use cpi2_bench::scenario::{build_case, record, ScenarioSpec, Timeline};

fn main() {
    let mut sc = None;
    for seed in 500..530 {
        sc = build_case(
            &ScenarioSpec {
                seed,
                tenants: 150,
                ..Default::default()
            },
            JobSpec::batch("replayer-batch", 1, 1.0),
            true,
            Box::new(move |_| Box::new(LameDuckReplayer::new(5.0, seed))),
        );
        if sc.is_some() {
            break;
        }
    }
    let mut sc = sc.expect("scenario");

    let mut tl = Timeline::default();
    // Normal phase.
    record(&mut sc, &mut tl, 0.0, 20 * 60, 30);
    let normal_threads = *tl.ant_threads.last().unwrap();
    let before = tl.victim_mean(10.0, 20.0);

    // Two capping rounds, as in Fig. 12.
    let mut peak_threads: f64 = 0.0;
    let mut post_cap_threads = f64::MAX;
    for round in 0..2 {
        let t0 = tl.minutes.last().copied().unwrap();
        let until = sc.system.cluster.now() + SimDuration::from_mins(10);
        sc.system.cluster.apply_hard_cap(sc.antagonist, 0.01, until);
        println!("cap round {} applied at minute {t0:.0}", round + 1);
        record(&mut sc, &mut tl, t0, 600, 30);
        peak_threads = peak_threads.max(
            tl.ant_threads
                .iter()
                .rev()
                .take(20)
                .copied()
                .fold(0.0, f64::max),
        );
        // Release + lame-duck observation window.
        let t1 = tl.minutes.last().copied().unwrap();
        record(&mut sc, &mut tl, t1, 900, 30);
        post_cap_threads = post_cap_threads.min(
            tl.ant_threads
                .iter()
                .rev()
                .take(20)
                .copied()
                .fold(f64::MAX, f64::min),
        );
    }
    let during = tl.victim_mean(20.0, 30.0);

    // Long tail: lame duck expires, threads return to normal.
    let t = tl.minutes.last().copied().unwrap();
    record(&mut sc, &mut tl, t, 40 * 60, 60);
    let final_threads = *tl.ant_threads.last().unwrap();

    plot::multi_series(
        "Fig 12a: victim CPI and antagonist CPU",
        "minute",
        "CPI / cores",
        &[
            ("victim CPI", &tl.victim_series()),
            ("antagonist CPU", &tl.ant_series()),
        ],
    );
    plot::scatter(
        "Fig 12b: antagonist thread count",
        "minute",
        "threads",
        &tl.thread_series(),
    );
    plot::print_table(
        "Case 5 summary",
        &["metric", "measured", "paper"],
        &[
            vec![
                "threads, normal".into(),
                plot::f(normal_threads),
                "~8".into(),
            ],
            vec![
                "threads, peak under cap".into(),
                plot::f(peak_threads),
                "~80".into(),
            ],
            vec![
                "threads, lame duck".into(),
                plot::f(post_cap_threads),
                "2".into(),
            ],
            vec![
                "threads, after recovery".into(),
                plot::f(final_threads),
                "8".into(),
            ],
            vec![
                "victim CPI before/during".into(),
                format!("{before:.2} / {during:.2}"),
                "drops under cap".into(),
            ],
        ],
    );
    assert!(
        (6.0..=10.0).contains(&normal_threads),
        "normal={normal_threads}"
    );
    assert!(peak_threads > 50.0, "peak={peak_threads}");
    assert!(post_cap_threads < 4.0, "lame duck={post_cap_threads}");
    assert!(
        (6.0..=10.0).contains(&final_threads),
        "final={final_threads}"
    );
    assert!(during < before, "victim should improve under cap");
    println!("\ncase5 OK (threads {normal_threads:.0} -> {peak_threads:.0} -> {post_cap_threads:.0} -> {final_threads:.0})");
}
