//! Case 6 (Fig. 13): a MapReduce worker that survives one capping but
//! exits during the second.
//!
//! Paper narrative: "The throttled antagonist is a task from a MapReduce
//! job that survived the first hard-capping (perhaps because it was
//! inactive at the time) but during the second one it either quit or was
//! terminated by the MapReduce master."
//!
//! Run: `cargo run -p cpi2-bench --release --bin case6_mapreduce`

use cpi2::sim::{JobSpec, SimDuration, TraceEvent};
use cpi2::workloads::MapReduceWorker;
use cpi2_bench::plot;
use cpi2_bench::scenario::{build_case, record, ScenarioSpec, Timeline};

fn main() {
    let mut sc = None;
    for seed in 600..640 {
        sc = build_case(
            &ScenarioSpec {
                seed,
                tenants: 150,
                ..Default::default()
            },
            JobSpec::batch("mapreduce", 1, 1.0),
            false, // The MapReduce master, not the cluster, replaces workers.
            Box::new(move |_| {
                // Long idle gaps between shards + tolerance below the
                // 5-minute cap: an *active* worker gives up mid-cap; an
                // idle one rides it out.
                Box::new(
                    MapReduceWorker::new(seed)
                        .with_starvation_limit(200)
                        .with_idle_gap(320),
                )
            }),
        );
        if sc.is_some() {
            break;
        }
    }
    let mut sc = sc.expect("scenario");

    let mut tl = Timeline::default();
    record(&mut sc, &mut tl, 0.0, 15 * 60, 30);

    // First cap: time it to land while the worker idles between shards, so
    // it survives (the paper speculates exactly this).
    let mut capped_while_idle = false;
    for _ in 0..40 {
        let idle_now = sc
            .system
            .cluster
            .machine(sc.machine)
            .and_then(|m| m.task(sc.antagonist))
            .and_then(|t| t.task().last_outcome())
            .map(|o| o.cpu_granted < 0.2)
            .unwrap_or(false);
        if idle_now {
            capped_while_idle = true;
            break;
        }
        let t = tl.minutes.last().copied().unwrap();
        record(&mut sc, &mut tl, t, 30, 30);
    }
    let t1 = tl.minutes.last().copied().unwrap();
    let until = sc.system.cluster.now() + SimDuration::from_mins(5);
    sc.system.cluster.apply_hard_cap(sc.antagonist, 0.01, until);
    println!("first cap at minute {t1:.0} (worker idle: {capped_while_idle})");
    record(&mut sc, &mut tl, t1, 300, 30);
    let survived_first = sc.system.cluster.locate(sc.antagonist).is_some();
    println!("worker survived first cap: {survived_first}");

    // Let it resume work, then cap again while it is actively processing.
    let t = tl.minutes.last().copied().unwrap();
    record(&mut sc, &mut tl, t, 600, 30);
    // Wait until it is busy.
    for _ in 0..60 {
        let busy = sc
            .system
            .cluster
            .machine(sc.machine)
            .and_then(|m| m.task(sc.antagonist))
            .and_then(|t| t.task().last_outcome())
            .map(|o| o.cpu_granted > 2.0)
            .unwrap_or(false);
        if busy {
            break;
        }
        let t = tl.minutes.last().copied().unwrap();
        record(&mut sc, &mut tl, t, 30, 30);
    }
    let t2 = tl.minutes.last().copied().unwrap();
    let until = sc.system.cluster.now() + SimDuration::from_mins(5);
    sc.system.cluster.apply_hard_cap(sc.antagonist, 0.01, until);
    println!("second cap at minute {t2:.0} (worker active)");
    record(&mut sc, &mut tl, t2, 360, 30);
    let survived_second = sc.system.cluster.locate(sc.antagonist).is_some();
    println!("worker survived second cap: {survived_second}");

    let exited_capped = sc
        .system
        .cluster
        .trace()
        .entries()
        .any(|e| matches!(e.event, TraceEvent::TaskExited { task, capped: true, .. } if task == sc.antagonist));

    plot::multi_series(
        "Fig 13: victim CPI and MapReduce worker CPU (worker exits in 2nd cap)",
        "minute",
        "CPI / cores",
        &[
            ("victim CPI", &tl.victim_series()),
            ("antagonist CPU", &tl.ant_series()),
        ],
    );
    plot::print_table(
        "Case 6 summary",
        &["event", "measured", "paper"],
        &[
            vec![
                "survived 1st cap".into(),
                format!("{survived_first}"),
                "yes (inactive)".into(),
            ],
            vec![
                "survived 2nd cap".into(),
                format!("{survived_second}"),
                "no — exited abruptly".into(),
            ],
            vec![
                "exit recorded as capped".into(),
                format!("{exited_capped}"),
                "quit / killed by master".into(),
            ],
        ],
    );
    assert!(survived_first, "worker must survive the idle-time cap");
    assert!(
        !survived_second,
        "worker must exit during the active-time cap"
    );
    assert!(exited_capped, "trace must record a capped exit");
    println!("\ncase6 OK");
}
