//! Figure 1: CDFs of tasks per machine and threads per machine.
//!
//! The paper's point: "the vast majority of our machines run multiple
//! tasks" — a cluster populated with a realistic mix should show most
//! machines multi-tenant and a long thread-count tail.
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig01_tenancy`

use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, ResourceProfile, SimDuration};
use cpi2::workloads::{self, LsService};
use cpi2_bench::plot;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 1,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 40);
    cluster.add_machines(&Platform::sandy_bridge(), 40);

    // The serving + batch mix.
    workloads::submit_typical_mix(&mut cluster, 3, 7);
    // Plus swarms of small tasks (monitoring agents, proxies, log savers)
    // that drive tenancy counts up, as in production.
    for (name, tasks, cpu) in [
        ("logsaver", 160u32, 0.1f64),
        ("monitoring", 160, 0.1),
        ("proxy", 120, 0.2),
        ("config-pusher", 80, 0.1),
    ] {
        let _ = cluster.submit_job(
            JobSpec::latency_sensitive(name, tasks, cpu),
            true,
            Box::new(move |i| {
                let mut p = ResourceProfile::compute_bound();
                p.cache_mb = 0.3;
                Box::new(LsService::new(p, cpu, 30, i as u64 ^ 0xF0))
            }),
        );
    }
    cluster.run_for(SimDuration::from_secs(30));

    let tasks: Vec<f64> = cluster
        .machines()
        .iter()
        .map(|m| m.task_count() as f64)
        .collect();
    let threads: Vec<f64> = cluster
        .machines()
        .iter()
        .map(|m| m.thread_count() as f64)
        .collect();

    plot::cdf("Fig 1a: tasks per machine (CDF)", "tasks", &tasks, 40);
    plot::cdf("Fig 1b: threads per machine (CDF)", "threads", &threads, 40);

    let multi = tasks.iter().filter(|&&t| t >= 2.0).count();
    let mean_tasks = tasks.iter().sum::<f64>() / tasks.len() as f64;
    let mean_threads = threads.iter().sum::<f64>() / threads.len() as f64;
    plot::print_table(
        "Fig 1 summary",
        &["metric", "value", "paper shape"],
        &[
            vec![
                "machines multi-tenant".into(),
                format!("{}/{}", multi, tasks.len()),
                "vast majority".into(),
            ],
            vec![
                "mean tasks/machine".into(),
                plot::f(mean_tasks),
                "10s of tasks".into(),
            ],
            vec![
                "mean threads/machine".into(),
                plot::f(mean_threads),
                "100s-1000s".into(),
            ],
            vec![
                "max threads/machine".into(),
                plot::f(threads.iter().copied().fold(0.0, f64::max)),
                "long tail".into(),
            ],
        ],
    );
    assert!(
        multi as f64 / tasks.len() as f64 > 0.9,
        "multi-tenancy shape"
    );
    println!("\nfig01 OK");
}
