//! Figure 2: transactions/sec vs instructions/sec for a batch job.
//!
//! The paper observes the two rates over 2 hours of a 2600-task batch job
//! (10-minute means) and finds a correlation coefficient of 0.97. Here a
//! 200-task transactional batch job runs for 2 simulated hours among
//! interfering neighbours; we plot both normalized series and their
//! scatter, and report the correlation.
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig02_tps_ips`

use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform};
use cpi2::workloads::{BatchTask, CacheThrasher};
use cpi2_bench::{metrics, plot};
use cpi2_stats::correlation::pearson;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 2,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 40);
    cluster
        .submit_job(
            JobSpec::batch("txn-batch", 200, 1.5),
            true,
            Box::new(|i| Box::new(BatchTask::transactional(i as u64))),
        )
        .expect("placement");
    // Interfering neighbours make IPS (and so TPS) vary over time.
    cluster
        .submit_job(
            JobSpec::best_effort("noise", 30, 1.0),
            true,
            Box::new(|i| Box::new(CacheThrasher::new(6.0, 400, 500, i as u64))),
        )
        .expect("placement");

    let dt = cluster.tick_len();
    let mut tps = Vec::new();
    let mut ips = Vec::new();
    let two_hours = 2 * 3600;
    for _ in 0..two_hours {
        cluster.step();
        if let Some(m) = metrics::job_tick(&cluster, "txn-batch", dt) {
            tps.push(m.tps);
            ips.push(m.ips);
        }
    }

    // 10-minute means, normalized to the observed minimum, as the paper.
    let tps_b = metrics::normalize_to_min(&metrics::bucket_means(&tps, 600));
    let ips_b = metrics::normalize_to_min(&metrics::bucket_means(&ips, 600));
    let minutes: Vec<f64> = (0..tps_b.len()).map(|i| i as f64 * 10.0).collect();

    let tps_series: Vec<(f64, f64)> = minutes.iter().copied().zip(tps_b.iter().copied()).collect();
    let ips_series: Vec<(f64, f64)> = minutes.iter().copied().zip(ips_b.iter().copied()).collect();
    plot::multi_series(
        "Fig 2a: normalized TPS and IPS vs time",
        "minutes",
        "normalized",
        &[("TPS", &tps_series), ("IPS", &ips_series)],
    );
    let scatter: Vec<(f64, f64)> = ips_b.iter().copied().zip(tps_b.iter().copied()).collect();
    plot::scatter(
        "Fig 2b: normalized TPS vs normalized IPS",
        "IPS",
        "TPS",
        &scatter,
    );

    let r = pearson(&ips_b, &tps_b).expect("correlation");
    plot::print_table(
        "Fig 2 summary",
        &["metric", "measured", "paper"],
        &[vec![
            "TPS-IPS correlation".into(),
            plot::f(r),
            "0.97".into(),
        ]],
    );
    assert!(r > 0.9, "correlation {r} too weak");
    println!("\nfig02 OK (r = {r:.3})");
}
