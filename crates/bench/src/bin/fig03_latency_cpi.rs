//! Figure 3: request latency vs CPI for a web-search leaf job over 24 h.
//!
//! The paper plots job-level mean latency (reported by the search job) and
//! CPI (measured by CPI²) over a day and finds r = 0.97. We run a leaf job
//! under time-varying interference for 24 simulated hours and reproduce
//! both panels.
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig03_latency_cpi`

use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform};
use cpi2::workloads::{self, CacheThrasher};
use cpi2_bench::{metrics, plot};
use cpi2_stats::correlation::pearson;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 3,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 30);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("websearch-leaf", 30, 2.0),
            true,
            workloads::factory("websearch-leaf", 11),
        )
        .expect("placement");
    // Slow-period interference so CPI moves meaningfully within the day.
    cluster
        .submit_job(
            JobSpec::best_effort("noise", 15, 1.0),
            true,
            Box::new(|i| Box::new(CacheThrasher::new(7.0, 1800, 2400, i as u64 ^ 5))),
        )
        .expect("placement");

    let dt = cluster.tick_len();
    // Sample job metrics every 30 s to keep memory flat over 24 h.
    let mut cpi = Vec::new();
    let mut latency = Vec::new();
    for tick in 0..(24 * 3600) {
        cluster.step();
        if tick % 30 == 0 {
            if let Some(m) = metrics::job_tick(&cluster, "websearch-leaf", dt) {
                cpi.push(m.cpi);
                latency.push(m.latency_ms);
            }
        }
    }

    // 20-minute means (40 samples of 30 s), normalized to minimum.
    let cpi_b = metrics::normalize_to_min(&metrics::bucket_means(&cpi, 40));
    let lat_b = metrics::normalize_to_min(&metrics::bucket_means(&latency, 40));
    let hours: Vec<f64> = (0..cpi_b.len()).map(|i| i as f64 / 3.0).collect();

    let cpi_series: Vec<(f64, f64)> = hours.iter().copied().zip(cpi_b.iter().copied()).collect();
    let lat_series: Vec<(f64, f64)> = hours.iter().copied().zip(lat_b.iter().copied()).collect();
    plot::multi_series(
        "Fig 3a: normalized latency and CPI vs time (24h)",
        "hour",
        "normalized",
        &[("latency", &lat_series), ("CPI", &cpi_series)],
    );
    let sc: Vec<(f64, f64)> = lat_b.iter().copied().zip(cpi_b.iter().copied()).collect();
    plot::scatter(
        "Fig 3b: normalized CPI vs normalized latency",
        "latency",
        "CPI",
        &sc,
    );

    let r = pearson(&cpi_b, &lat_b).expect("correlation");
    plot::print_table(
        "Fig 3 summary",
        &["metric", "measured", "paper"],
        &[vec![
            "latency-CPI correlation".into(),
            plot::f(r),
            "0.97".into(),
        ]],
    );
    assert!(r > 0.85, "correlation {r} too weak");
    println!("\nfig03 OK (r = {r:.3})");
}
