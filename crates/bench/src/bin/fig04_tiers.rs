//! Figure 4: per-task latency vs CPI for leaf / intermediate / root
//! web-search jobs on two hardware platforms.
//!
//! Each point is a 5-minute sample of one task. The paper finds strong
//! correlation for the computation-intensive tiers (0.68–0.75) and poor
//! correlation for the root node, "whose request latency is largely
//! determined by the response time of other nodes".
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig04_tiers`

use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform};
use cpi2::workloads::{self, CacheThrasher};
use cpi2_bench::{metrics, plot};
use cpi2_stats::correlation::pearson;
use std::collections::HashMap;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 4,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 20);
    cluster.add_machines(&Platform::sandy_bridge(), 20);
    for tier in ["websearch-leaf", "websearch-intermediate", "websearch-root"] {
        cluster
            .submit_job(
                JobSpec::latency_sensitive(tier, 24, 1.5),
                true,
                workloads::factory(tier, 13),
            )
            .expect("placement");
    }
    cluster
        .submit_job(
            JobSpec::best_effort("noise", 20, 1.0),
            true,
            Box::new(|i| Box::new(CacheThrasher::new(6.0, 900, 900, i as u64 ^ 9))),
        )
        .expect("placement");

    // Accumulate per-task 5-minute means of (CPI, latency).
    // key: (job, task index, platform) -> running sums.
    let mut acc: HashMap<(String, u32, String), (f64, f64, u32)> = HashMap::new();
    let mut points: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let total = 4 * 3600;
    for tick in 0..total {
        cluster.step();
        for tier in ["websearch-leaf", "websearch-intermediate", "websearch-root"] {
            for obs in metrics::per_task(&cluster, tier) {
                let key = (tier.to_string(), obs.task.index, obs.platform.clone());
                let e = acc.entry(key).or_insert((0.0, 0.0, 0));
                e.0 += obs.outcome.cpi;
                e.1 += obs.latency_ms.unwrap_or(0.0);
                e.2 += 1;
            }
        }
        if (tick + 1) % 300 == 0 {
            for ((tier, _idx, platform), (cpi, lat, n)) in acc.drain() {
                if n > 0 {
                    points
                        .entry((tier, platform))
                        .or_default()
                        .push((cpi / n as f64, lat / n as f64));
                }
            }
        }
    }

    let mut rows = Vec::new();
    for (tier, label, paper) in [
        ("websearch-leaf", "Fig 4a leaf", "0.75"),
        ("websearch-intermediate", "Fig 4b intermediate", "0.68"),
        ("websearch-root", "Fig 4c root", "poor (I/O-bound)"),
    ] {
        // Normalize per platform (the paper normalizes within platform and
        // plots both in one panel with different colors).
        let mut all_norm: Vec<(f64, f64)> = Vec::new();
        let mut per_platform: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for ((t, platform), pts) in &points {
            if t != tier || pts.is_empty() {
                continue;
            }
            let min_c = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
            let min_l = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let norm: Vec<(f64, f64)> = pts.iter().map(|&(c, l)| (c / min_c, l / min_l)).collect();
            all_norm.extend(norm.iter().copied());
            per_platform.push((platform.clone(), norm));
        }
        per_platform.sort_by(|a, b| a.0.cmp(&b.0));
        let series: Vec<(&str, &[(f64, f64)])> = per_platform
            .iter()
            .map(|(p, pts)| (p.as_str(), pts.as_slice()))
            .collect();
        plot::multi_series(
            &format!("{label}: normalized latency vs normalized CPI"),
            "normalized CPI",
            "normalized latency",
            &series,
        );
        let xs: Vec<f64> = all_norm.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = all_norm.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys).unwrap_or(0.0);
        rows.push(vec![label.to_string(), plot::f(r), paper.to_string()]);
    }
    plot::print_table(
        "Fig 4 summary (latency-CPI correlation)",
        &["tier", "measured r", "paper r"],
        &rows,
    );

    let leaf_r: f64 = rows[0][1].parse().unwrap();
    let root_r: f64 = rows[2][1].parse().unwrap();
    assert!(leaf_r > 0.45, "leaf correlation {leaf_r} too weak");
    assert!(root_r < leaf_r - 0.2, "root should correlate far worse");
    println!("\nfig04 OK (leaf r={leaf_r:.2}, root r={root_r:.2})");
}
