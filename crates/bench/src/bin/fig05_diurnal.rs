//! Figure 5: average CPI across web-search leaf tasks over 5 days.
//!
//! The paper shows a diurnal pattern with a coefficient of variation of
//! about 4 % — CPI changes slowly as the executed instruction mix follows
//! daily load. We run 5 simulated days and check both the CV and the
//! 24-hour periodicity (autocorrelation at one day ≫ at half a day).
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig05_diurnal`

use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform};
use cpi2::workloads;
use cpi2_bench::{metrics, plot};
use cpi2_stats::correlation::autocorrelation;
use cpi2_stats::summary::RunningStats;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 5,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 25);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("websearch-leaf", 50, 2.0),
            true,
            workloads::factory("websearch-leaf", 17),
        )
        .expect("placement");
    // Batch neighbours whose pressure tracks the serving load: when search
    // demand is high the machines are busier and contention rises — the
    // mechanism behind the paper's diurnal CPI.
    cluster
        .submit_job(
            JobSpec::batch("analytics", 25, 1.0),
            true,
            Box::new(|i| {
                Box::new(cpi2::workloads::LsService::new(
                    cpi2::sim::ResourceProfile::streaming(),
                    2.0,
                    8,
                    i as u64 ^ 21,
                ))
            }),
        )
        .expect("placement");

    let dt = cluster.tick_len();
    // Half-hourly means over 5 days; sample every 60 s.
    let mut per_sample = Vec::new();
    for tick in 0..(5 * 24 * 3600) {
        cluster.step();
        if tick % 60 == 0 {
            if let Some(m) = metrics::job_tick(&cluster, "websearch-leaf", dt) {
                per_sample.push(m.cpi);
            }
        }
    }
    let half_hourly = metrics::bucket_means(&per_sample, 30);
    let series: Vec<(f64, f64)> = half_hourly
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as f64 / 48.0, c))
        .collect();
    plot::scatter(
        "Fig 5: average web-search CPI over 5 days",
        "day",
        "CPI",
        &series,
    );

    let stats = RunningStats::from_slice(&half_hourly);
    let cv = stats.cv();
    let ac_day = autocorrelation(&half_hourly, 48).unwrap_or(0.0);
    let ac_half = autocorrelation(&half_hourly, 24).unwrap_or(0.0);
    plot::print_table(
        "Fig 5 summary",
        &["metric", "measured", "paper"],
        &[
            vec![
                "CPI coefficient of variation".into(),
                format!("{:.1}%", cv * 100.0),
                "~4%".into(),
            ],
            vec![
                "autocorrelation @24h".into(),
                plot::f(ac_day),
                "high (diurnal)".into(),
            ],
            vec![
                "autocorrelation @12h".into(),
                plot::f(ac_half),
                "low/negative".into(),
            ],
        ],
    );
    assert!(cv > 0.01 && cv < 0.12, "CV {cv} outside plausible band");
    assert!(ac_day > ac_half, "no diurnal period visible");
    println!("\nfig05 OK (CV = {:.1}%)", cv * 100.0);
}
