//! Figure 6: the CPI² data pipeline, demonstrated end-to-end.
//!
//! The paper's Fig. 6 is an architecture diagram: per-machine agents emit
//! CPI samples → a sample aggregator computes smoothed, averaged CPI specs
//! → specs flow back to every machine running tasks of that job. This
//! binary runs the assembled pipeline and prints the roundtrip evidence:
//! samples collected per stage, specs published, agents synced, and a
//! detection acting on a pushed spec.
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig06_pipeline`

use cpi2::core::{Cpi2Config, JobKey};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, ResourceProfile, SimDuration};
use cpi2::workloads::{CacheThrasher, LsService};
use cpi2_bench::plot;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 6,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 10);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("frontend", 20, 1.2),
            true,
            Box::new(|i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.2,
                    12,
                    i as u64,
                ))
            }),
        )
        .expect("placement");

    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.record_samples = true;

    println!("stage 1: agents sample every task 10s/min (counting mode)...");
    system.run_for(SimDuration::from_mins(30));
    let collected = system.samples.len();
    println!("  collected {collected} CPI samples across 10 machines");

    println!("stage 2: aggregator computes per-job x platform CPI specs...");
    let specs = system.force_spec_refresh();
    for s in &specs {
        println!("  published spec: {s}");
    }

    println!("stage 3: specs distributed back to machine agents...");
    system.run_for(SimDuration::from_mins(2));
    let key = JobKey::new("frontend", "westmere-2.6GHz");
    let mut synced = 0;
    for m in system.cluster.machines() {
        if system.agent(m.id).and_then(|a| a.spec(&key)).is_some() {
            synced += 1;
        }
    }
    println!("  {synced}/10 machine agents hold the frontend spec");

    println!("stage 4: local detection acts on the pushed spec...");
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("thrasher", 3, 1.0),
            true,
            Box::new(|i| Box::new(CacheThrasher::new(8.0, 300, 300, 3 + i as u64))),
        )
        .expect("placement");
    system.run_for(SimDuration::from_mins(40));
    println!(
        "  incidents reported: {}, hard caps applied: {}",
        system.incidents().len(),
        system.caps_applied()
    );

    plot::print_table(
        "Fig 6: pipeline roundtrip",
        &["stage", "evidence"],
        &[
            vec![
                "machine agents → samples".into(),
                format!("{collected} samples"),
            ],
            vec![
                "sample aggregator → specs".into(),
                format!("{} specs", specs.len()),
            ],
            vec![
                "specs → machines".into(),
                format!("{synced}/10 agents synced"),
            ],
            vec![
                "local detection → action".into(),
                format!(
                    "{} incidents, {} caps",
                    system.incidents().len(),
                    system.caps_applied()
                ),
            ],
        ],
    );
    assert!(collected > 100);
    assert_eq!(specs.len(), 1);
    assert_eq!(synced, 10);
    assert!(system.caps_applied() >= 1);
    println!("\nfig06 OK");
}
