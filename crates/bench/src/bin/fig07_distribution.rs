//! Figure 7: the CPI distribution of a web-search job, with a GEV fit.
//!
//! The paper collects >450k CPI samples from thousands of machines over
//! two days (µ = 1.8, σ = 0.16), observes a right-skewed distribution —
//! "bad performance is relatively more common than exceptionally good
//! performance" — and fits normal, log-normal, Gamma and GEV candidates;
//! GEV(1.73, 0.133, −0.0534) fits best.
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig07_distribution`

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, SimDuration};
use cpi2::workloads::{self, CacheThrasher};
use cpi2_bench::plot;
use cpi2_stats::fit::{compare_fits, fit_gev_mle, ks_p_value, ks_statistic, Model};
use cpi2_stats::histogram::Histogram;
use cpi2_stats::summary::RunningStats;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 7,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 60);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("websearch-leaf", 120, 2.0),
            true,
            workloads::factory("websearch-leaf", 19),
        )
        .expect("placement");
    // A spread of batch neighbours: most machines quiet, some contended —
    // the source of the long right tail.
    cluster
        .submit_job(
            JobSpec::best_effort("noise", 12, 1.0),
            true,
            Box::new(|i| {
                Box::new(
                    CacheThrasher::new(
                        1.5 + (i % 4) as f64 * 0.8,
                        240 + (i % 5) * 120,
                        1800,
                        i as u64 ^ 0xA5,
                    )
                    .with_footprint(6.0 + (i % 3) as f64 * 3.0),
                )
            }),
        )
        .expect("placement");

    // Collect per-task CPI samples through the real sampling pipeline.
    let mut system = Cpi2Harness::new(cluster, Cpi2Config::default());
    system.record_samples = true;
    system.run_for(SimDuration::from_hours(10));
    let cpis: Vec<f64> = system
        .samples
        .iter()
        .filter(|s| s.jobname == "websearch-leaf" && s.cpi > 0.0)
        .map(|s| s.cpi)
        .collect();
    println!("collected {} web-search CPI samples", cpis.len());

    let stats = RunningStats::from_slice(&cpis);
    let mut hist = Histogram::new(1.0, 3.0, 60);
    for &c in &cpis {
        hist.push(c);
    }
    let series: Vec<(f64, f64)> = hist.series().map(|(x, f)| (x, f * 100.0)).collect();
    plot::scatter(
        "Fig 7: CPI distribution (web-search leaf)",
        "CPI",
        "% samples",
        &series,
    );

    let cmp = compare_fits(&cpis);
    let rows: Vec<Vec<String>> = cmp
        .fits
        .iter()
        .map(|f| {
            vec![
                f.model.to_string(),
                f.params.clone(),
                plot::f(f.ks),
                format!("{:.1e}", ks_p_value(f.ks, cpis.len())),
                plot::f(f.aic),
            ]
        })
        .collect();
    plot::print_table(
        "Fig 7: distribution fits (sorted by KS; lower is better)",
        &["model", "parameters", "KS", "KS p-value", "AIC"],
        &rows,
    );

    // Maximum-likelihood polish of the winning GEV (the paper quotes a
    // best-fit curve, which an MLE refinement approximates better than raw
    // L-moments).
    let mle = fit_gev_mle(&cpis).expect("GEV fit");
    println!(
        "\nMLE-refined GEV: GEV({:.4}, {:.4}, {:.4})  (paper: GEV(1.73, 0.133, -0.053))  KS={:.4}",
        mle.mu,
        mle.sigma,
        mle.xi,
        ks_statistic(&cpis, &mle),
    );

    // Skewness: right tail longer than left.
    let median = {
        let mut v = cpis.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    plot::print_table(
        "Fig 7 summary",
        &["metric", "measured", "paper"],
        &[
            vec!["mean CPI".into(), plot::f(stats.mean()), "1.8".into()],
            vec!["stddev".into(), plot::f(stats.stddev()), "0.16".into()],
            vec![
                "right-skew (mean > median)".into(),
                format!("{}", stats.mean() > median),
                "true".into(),
            ],
            vec![
                "best-fit family".into(),
                cmp.best().map(|f| f.model.to_string()).unwrap_or_default(),
                "GEV".into(),
            ],
        ],
    );
    assert!(stats.mean() > median, "distribution must be right-skewed");
    assert_eq!(cmp.best().unwrap().model, Model::Gev, "GEV must fit best");
    println!("\nfig07 OK (best fit: {})", cmp.best().unwrap().params);
}
