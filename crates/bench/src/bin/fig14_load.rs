//! Figure 14: is antagonism correlated with machine load?
//!
//! The paper's answer is no: "it happens fairly uniformly at all
//! utilization levels and the extent of damage to victims is also not
//! related to the utilization." Panel (d) shows CPI-degradation CDFs with
//! and without an identified antagonist, the former with a long tail.
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig14_load [trials]`

use cpi2_bench::plot;
use cpi2_bench::trials::run_batch;
use cpi2_stats::correlation::pearson;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    eprintln!("running {n} trials...");
    let (outcomes, unidentified) = run_batch(n, true, 0x14);
    eprintln!(
        "{} capped trials, {} unidentified anomalies",
        outcomes.len(),
        unidentified.len()
    );
    assert!(outcomes.len() >= 20, "too few usable trials");

    // (a) correlation vs utilization.
    let a: Vec<(f64, f64)> = outcomes
        .iter()
        .map(|o| (o.utilization * 100.0, o.correlation))
        .collect();
    plot::scatter(
        "Fig 14a: antagonist correlation vs machine CPU utilization",
        "utilization %",
        "correlation",
        &a,
    );
    // (b) CDF of utilization at detection.
    let utils: Vec<f64> = outcomes.iter().map(|o| o.utilization * 100.0).collect();
    plot::cdf(
        "Fig 14b: CDF of machine utilization at detection",
        "utilization %",
        &utils,
        30,
    );
    // (c) degradation vs utilization.
    let c: Vec<(f64, f64)> = outcomes
        .iter()
        .map(|o| (o.utilization * 100.0, o.degradation))
        .collect();
    plot::scatter(
        "Fig 14c: victim CPI degradation vs machine utilization",
        "utilization %",
        "CPI / job mean",
        &c,
    );
    // (d) degradation CDFs: identified vs not.
    let with_ant: Vec<f64> = outcomes.iter().map(|o| o.degradation).collect();
    let without: Vec<f64> = unidentified.iter().map(|u| u.degradation).collect();
    plot::cdf(
        "Fig 14d-1: CPI degradation CDF (antagonist identified)",
        "CPI / job mean",
        &with_ant,
        30,
    );
    if !without.is_empty() {
        plot::cdf(
            "Fig 14d-2: CPI degradation CDF (no antagonist identified)",
            "CPI / job mean",
            &without,
            30,
        );
    }

    let corr_vs_util = pearson(
        &outcomes.iter().map(|o| o.utilization).collect::<Vec<_>>(),
        &outcomes.iter().map(|o| o.correlation).collect::<Vec<_>>(),
    )
    .unwrap_or(0.0);
    let degr_vs_util = pearson(
        &outcomes.iter().map(|o| o.utilization).collect::<Vec<_>>(),
        &outcomes.iter().map(|o| o.degradation).collect::<Vec<_>>(),
    )
    .unwrap_or(0.0);
    let max_degr = with_ant.iter().copied().fold(0.0, f64::max);
    plot::print_table(
        "Fig 14 summary",
        &["metric", "measured", "paper"],
        &[
            vec![
                "corr(utilization, correlation)".into(),
                plot::f(corr_vs_util),
                "≈ 0 (uncorrelated)".into(),
            ],
            vec![
                "corr(utilization, degradation)".into(),
                plot::f(degr_vs_util),
                "≈ 0 (uncorrelated)".into(),
            ],
            vec![
                "max degradation (long tail)".into(),
                plot::f(max_degr),
                "up to ~12x".into(),
            ],
        ],
    );
    assert!(
        corr_vs_util.abs() < 0.4,
        "antagonism should not track load: r={corr_vs_util}"
    );
    assert!(
        degr_vs_util.abs() < 0.4,
        "damage should not track load: r={degr_vs_util}"
    );
    assert!(max_degr > 1.5, "degradation tail missing");
    println!("\nfig14 OK (r_corr={corr_vs_util:.2}, r_degr={degr_vs_util:.2})");
}
