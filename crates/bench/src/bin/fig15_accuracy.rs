//! Figure 15: antagonist-detection accuracy for all jobs.
//!
//! The paper's trial protocol: cap the single most-suspected antagonist
//! for 5 minutes; a *true positive* means the victim's CPI fell by more
//! than the spec stddev, a *false positive* means it rose by the same
//! margin. Key results: production jobs show much better TP rates than
//! non-production; 0.35 is a good correlation threshold; victim CPI drops
//! to 0.52× (production) / 0.82× (non-production) in true positives; and
//! relative L3 misses/instruction track relative CPI with r ≈ 0.87.
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig15_accuracy [trials]`

use cpi2_bench::plot;
use cpi2_bench::trials::{run_batch, TrialOutcome};
use cpi2_stats::correlation::pearson;

fn rates(outcomes: &[&TrialOutcome], threshold: f64) -> (f64, f64, usize) {
    let selected: Vec<_> = outcomes
        .iter()
        .filter(|o| o.correlation >= threshold)
        .collect();
    if selected.is_empty() {
        return (0.0, 0.0, 0);
    }
    let tp = selected.iter().filter(|o| o.true_positive()).count();
    let fp = selected.iter().filter(|o| o.false_positive()).count();
    (
        tp as f64 / selected.len() as f64,
        fp as f64 / selected.len() as f64,
        selected.len(),
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    eprintln!("running {n} production + {n} non-production trials...");
    let (prod, _) = run_batch(n, true, 0x15);
    let (nonprod, _) = run_batch(n, false, 0x51);
    eprintln!(
        "{} production / {} non-production capped trials",
        prod.len(),
        nonprod.len()
    );
    let prod_refs: Vec<&TrialOutcome> = prod.iter().collect();
    let nonprod_refs: Vec<&TrialOutcome> = nonprod.iter().collect();

    // (a) TP/FP rates vs correlation threshold, split by priority band.
    let mut rows = Vec::new();
    for t in [0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50] {
        let (tp_p, fp_p, n_p) = rates(&prod_refs, t);
        let (tp_n, fp_n, n_n) = rates(&nonprod_refs, t);
        rows.push(vec![
            format!("{t:.2}"),
            format!("{:.0}% / {:.0}% (n={})", tp_p * 100.0, fp_p * 100.0, n_p),
            format!("{:.0}% / {:.0}% (n={})", tp_n * 100.0, fp_n * 100.0, n_n),
        ]);
    }
    plot::print_table(
        "Fig 15a: TP/FP rates vs correlation threshold",
        &["threshold", "production TP/FP", "non-production TP/FP"],
        &rows,
    );

    // (b) relative CPI for true positives vs correlation.
    let b: Vec<(f64, f64)> = prod
        .iter()
        .chain(nonprod.iter())
        .filter(|o| o.true_positive())
        .map(|o| (o.correlation, o.relative_cpi))
        .collect();
    plot::scatter(
        "Fig 15b: relative victim CPI (true positives) vs correlation",
        "correlation",
        "CPI during / before",
        &b,
    );

    // Mean relative CPI at the paper's 0.35 operating point.
    let mean_rel = |set: &[TrialOutcome]| {
        let v: Vec<f64> = set
            .iter()
            .filter(|o| o.correlation >= 0.35 && o.true_positive())
            .map(|o| o.relative_cpi)
            .collect();
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let rel_p = mean_rel(&prod);
    let rel_n = mean_rel(&nonprod);

    // (c) relative L3 MPKI vs relative CPI for true positives.
    let c: Vec<(f64, f64)> = prod
        .iter()
        .chain(nonprod.iter())
        .filter(|o| o.true_positive())
        .map(|o| (o.relative_cpi, o.relative_l3))
        .collect();
    plot::scatter(
        "Fig 15c: relative L3 misses/instruction vs relative CPI (TPs)",
        "relative CPI",
        "relative L3 MPI",
        &c,
    );
    let l3_r = pearson(
        &c.iter().map(|p| p.0).collect::<Vec<_>>(),
        &c.iter().map(|p| p.1).collect::<Vec<_>>(),
    )
    .unwrap_or(0.0);

    let (tp35_p, fp35_p, _) = rates(&prod_refs, 0.35);
    let (tp35_n, _, _) = rates(&nonprod_refs, 0.35);
    plot::print_table(
        "Fig 15 summary",
        &["metric", "measured", "paper"],
        &[
            vec![
                "production TP rate @0.35".into(),
                format!("{:.0}%", tp35_p * 100.0),
                "~70%".into(),
            ],
            vec![
                "non-production TP rate @0.35".into(),
                format!("{:.0}%", tp35_n * 100.0),
                "lower than production".into(),
            ],
            vec![
                "production FP rate @0.35".into(),
                format!("{:.0}%", fp35_p * 100.0),
                "low".into(),
            ],
            vec![
                "relative CPI, production TPs".into(),
                plot::f(rel_p),
                "0.52".into(),
            ],
            vec![
                "relative CPI, non-production TPs".into(),
                plot::f(rel_n),
                "0.82".into(),
            ],
            vec![
                "L3-CPI correlation (TPs)".into(),
                plot::f(l3_r),
                "0.87".into(),
            ],
        ],
    );
    assert!(tp35_p > 0.5, "production TP rate too low: {tp35_p}");
    assert!(
        tp35_p > tp35_n,
        "production must beat non-production: {tp35_p} vs {tp35_n}"
    );
    assert!(fp35_p < 0.3, "production FP rate too high: {fp35_p}");
    assert!(rel_p < rel_n, "production victims should benefit more");
    assert!(l3_r > 0.5, "L3 must track CPI: r={l3_r}");
    println!(
        "\nfig15 OK (prod TP {:.0}%, rel CPI {:.2}/{:.2}, L3 r={:.2})",
        tp35_p * 100.0,
        rel_p,
        rel_n,
        l3_r
    );
}
