//! Figure 16: detection accuracy and victim benefit for production jobs.
//!
//! Paper results reproduced here: (a) ~70 % true-positive rate for
//! production jobs, roughly independent of the correlation threshold once
//! above 0.35; (b) anomalies are trustworthy once the victim's CPI sits at
//! least ~3 standard deviations above the mean; (c) capping helps across a
//! wide range of degradations; (d) the median victim's relative CPI is
//! ~0.63 when throttling the top suspect (true and false positives
//! together).
//!
//! Run: `cargo run -p cpi2-bench --release --bin fig16_production [trials]`

use cpi2_bench::plot;
use cpi2_bench::trials::{run_batch, TrialOutcome};
use cpi2_stats::Ecdf;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(160);
    eprintln!("running {n} production trials...");
    let (outcomes, _) = run_batch(n, true, 0x16);
    eprintln!("{} capped trials", outcomes.len());
    assert!(outcomes.len() >= 30, "too few usable trials");

    // (a) TP/FP vs threshold, production only, 0.35–0.50.
    let mut rows = Vec::new();
    let mut tp_rates = Vec::new();
    for t in [0.35, 0.40, 0.45, 0.50] {
        let sel: Vec<&TrialOutcome> = outcomes.iter().filter(|o| o.correlation >= t).collect();
        if sel.is_empty() {
            continue;
        }
        let tp = sel.iter().filter(|o| o.true_positive()).count() as f64 / sel.len() as f64;
        let fp = sel.iter().filter(|o| o.false_positive()).count() as f64 / sel.len() as f64;
        tp_rates.push(tp);
        rows.push(vec![
            format!("{t:.2}"),
            format!("{:.0}%", tp * 100.0),
            format!("{:.0}%", fp * 100.0),
            format!("{}", sel.len()),
        ]);
    }
    plot::print_table(
        "Fig 16a: production TP/FP vs correlation threshold",
        &["threshold", "TP", "FP", "n"],
        &rows,
    );

    // (b) TP rate vs CPI increase in standard deviations.
    let mut rows = Vec::new();
    let mut low_sigma_tp = 1.0;
    let mut high_sigma_tp: f64 = 0.0;
    for (lo, hi) in [(2.0, 3.0), (3.0, 5.0), (5.0, 8.0), (8.0, f64::INFINITY)] {
        let sel: Vec<&TrialOutcome> = outcomes
            .iter()
            .filter(|o| o.sigmas_above >= lo && o.sigmas_above < hi)
            .collect();
        if sel.is_empty() {
            continue;
        }
        let tp = sel.iter().filter(|o| o.true_positive()).count() as f64 / sel.len() as f64;
        if lo <= 2.0 {
            low_sigma_tp = tp;
        }
        if lo >= 5.0 {
            high_sigma_tp = high_sigma_tp.max(tp);
        }
        rows.push(vec![
            format!(
                "{lo:.0}-{}",
                if hi.is_finite() {
                    format!("{hi:.0}")
                } else {
                    "up".into()
                }
            ),
            format!("{:.0}%", tp * 100.0),
            format!("{}", sel.len()),
        ]);
    }
    plot::print_table(
        "Fig 16b: TP rate vs CPI increase (in spec stddevs)",
        &["σ above mean", "TP", "n"],
        &rows,
    );

    // (c) relative CPI vs degradation.
    let c: Vec<(f64, f64)> = outcomes
        .iter()
        .map(|o| (o.degradation, o.relative_cpi))
        .collect();
    plot::scatter(
        "Fig 16c: relative victim CPI vs CPI degradation",
        "CPI before / job mean",
        "CPI during / before",
        &c,
    );

    // (d) CDF of relative CPI, all capped production trials.
    let rel: Vec<f64> = outcomes.iter().map(|o| o.relative_cpi).collect();
    plot::cdf(
        "Fig 16d: CDF of victim relative CPI",
        "relative CPI",
        &rel,
        30,
    );
    let median = Ecdf::new(rel.clone()).median();

    let tp35 = tp_rates.first().copied().unwrap_or(0.0);
    plot::print_table(
        "Fig 16 summary",
        &["metric", "measured", "paper"],
        &[
            vec![
                "TP rate @0.35".into(),
                format!("{:.0}%", tp35 * 100.0),
                "~70%".into(),
            ],
            vec!["median relative CPI".into(), plot::f(median), "0.63".into()],
            vec![
                "relative CPI < 1 for most trials".into(),
                format!(
                    "{:.0}%",
                    100.0 * rel.iter().filter(|&&r| r < 1.0).count() as f64 / rel.len() as f64
                ),
                "large majority".into(),
            ],
        ],
    );
    assert!(tp35 > 0.5, "TP rate too low: {tp35}");
    assert!(median < 0.85, "median relative CPI too high: {median}");
    assert!(
        high_sigma_tp >= low_sigma_tp * 0.8 || high_sigma_tp > 0.7,
        "large CPI excursions should be trustworthy"
    );
    println!(
        "\nfig16 OK (TP@0.35 = {:.0}%, median relative CPI = {median:.2})",
        tp35 * 100.0
    );
}
