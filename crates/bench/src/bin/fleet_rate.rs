//! Fleet-scale incident rate: §7's headline deployment number — plus the
//! simulator's serial-vs-parallel throughput mode.
//!
//! "The measurement part of CPI² has now been rolled out to all of
//! Google's production machines. It is identifying antagonists at an
//! average rate of 0.37 times per machine-day." A fleet is *mostly
//! healthy*: serving tasks spread thin, with occasional short-lived batch
//! antagonists landing and leaving. The default mode builds that regime —
//! 150 machines, sparse serving load, a Poisson stream of transient
//! thrashers — runs a simulated day, and reports identifications per
//! machine-day.
//!
//! With `--seconds S` the binary instead measures raw simulator
//! throughput: the same seeded fleet is advanced `S` simulated seconds
//! once on the serial path (`parallelism = 1`) and once on the sharded
//! worker pool, reporting machine-ticks/sec for each, the speedup, and
//! verifying the two runs produced bit-identical traces. This doubles as
//! the CI smoke job.
//!
//! With `--sample-budget B` the binary switches to the statistical fleet
//! mode (DESIGN.md §12): instead of simulating every machine, the seeded
//! fleet is stratified by platform × load band × tenancy, `B` machine
//! cells are simulated via the two-phase (pilot → Neyman) allocator, and
//! fleet incident/throttle/cap totals are extrapolated with
//! finite-population-corrected 95% confidence intervals. See
//! `sampled_fleet` for the JSON-emitting, perf-gated variant.
//!
//! With `--telemetry <path|->` the run reports fleet-wide metrics into
//! the `cpi2-telemetry` registry: periodic JSON snapshots during the
//! measured day, and a final Prometheus text dump framed by
//! `# --- cpi telemetry export begin/end ---` markers (written to stdout
//! when the path is `-`, appended to the file otherwise).
//!
//! With `--faults <none|lossy|heavy>` a deterministic fault plan is armed:
//! in day mode the measured day runs under injected shipment loss, agent
//! restarts and (for `heavy`) machine crashes, with fault counters in the
//! report; in `--seconds` mode an extra harness-level pass asserts the
//! faulty run is bit-identical at parallelism 1 and P. `--seed` reseeds
//! both the fleet and the fault plan.
//!
//! With `--identifier <paper|panda|panda-no-*>` every harness-level run
//! (day mode, and the fault/telemetry passes of `--seconds` mode) uses
//! the selected antagonist-identification backend (DESIGN.md §10);
//! default `paper`.
//!
//! With `--serve <addr>` the day-mode run is *resident*: the fleet is
//! wrapped in a `cpi2_serve::ServeHarness` and the observability plane
//! (`/metrics`, `/incidents`, `/query`, operator actions — see
//! DESIGN.md §11) is served at `addr` for the whole simulated day, so a
//! scraper or a human can watch the measurement live. Serving is
//! strictly observational: the reported numbers are bit-identical to a
//! bare run with the same seed.
//!
//! Run: `cargo run -p cpi2-bench --release --bin fleet_rate -- \
//!           [--machines N] [--parallelism P] [--seconds S] \
//!           [--sample-budget B] [--seed SEED] [--faults PROFILE] \
//!           [--identifier KIND] [--telemetry PATH|-] [--serve ADDR]`
//! (a bare positional `N` still sets the machine count, as before).

use cpi2::core::{Cpi2Config, IdentifierKind};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    default_parallelism, Cluster, ClusterConfig, FaultPlan, FaultProfile, JobSpec, Platform,
    SimDuration, TraceEntry,
};
use cpi2::telemetry::Telemetry;
use cpi2::workloads::{self, TraceJob};
use cpi2_bench::args::Args;
use cpi2_bench::plot;
use cpi2_bench::sampling::{run_sampled, simulate_cell, FleetModel, SamplingConfig, METRIC_NAMES};
use cpi2_serve::{ServeHarness, ServerConfig};
use cpi2_stats::rng::SimRng;
use std::time::Instant;

const USAGE: &str = "\
fleet_rate: fleet-scale incident rate (paper §7) and simulator throughput

USAGE:
    fleet_rate [N] [FLAGS]

MODES:
    (default)          simulate one fleet day, report identifications per
                       machine-day against the paper's 0.37
    --seconds S        raw throughput: advance the fleet S simulated seconds
                       serially and sharded, assert bit-identical traces
    --sample-budget B  statistical mode (DESIGN.md §12): stratify the
                       --machines fleet, simulate only B cells via two-phase
                       (pilot -> Neyman) allocation, report fleet totals
                       with finite-population-corrected 95% CIs

FLAGS:
    --machines N       fleet size (default 150; bare positional N also works)
    --parallelism P    worker shards for the parallel path (default: cores)
    --seed SEED        reseed the fleet, antagonist stream and fault plan
    --faults PROFILE   arm deterministic fault injection: none|lossy|heavy
    --identifier KIND  antagonist-identification backend (DESIGN.md §10)
    --telemetry PATH   report fleet metrics: JSON snapshots during the run,
                       final Prometheus dump ('-' = stdout)
    --serve ADDR       day mode only: serve the live observability plane
                       (/metrics, /incidents, /query, operator actions) at
                       ADDR, e.g. 127.0.0.1:8900, for the whole run
    --help             this text
";

/// Writes `text` to the telemetry sink: stdout when `path` is `-`,
/// appended to the file otherwise.
fn emit(path: &str, text: &str) {
    if path == "-" {
        print!("{text}");
    } else {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open telemetry sink");
        f.write_all(text.as_bytes()).expect("write telemetry sink");
    }
}

/// Emits the final Prometheus dump between grep-friendly comment markers.
fn dump_export(telemetry: &Telemetry, path: &str) {
    if let Some(text) = telemetry.prometheus_text() {
        emit(
            path,
            &format!(
                "# --- cpi telemetry export begin ---\n{text}# --- cpi telemetry export end ---\n"
            ),
        );
    }
}

/// Builds the mostly-healthy fleet regime on `machines` machines.
fn build_fleet(machines: u32, parallelism: usize, telemetry: &Telemetry, seed: u64) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        overcommit: 2.0,
        parallelism,
        telemetry: telemetry.clone(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), machines);

    // Sparse serving load: ~0.8 significant tasks per machine, footprints
    // that fit.
    for (name, frac_tasks, cpu) in [
        ("websearch-leaf", 0.25f64, 2.0),
        ("bigtable-tablet", 0.20, 1.2),
        ("storage-server", 0.15, 1.0),
        ("image-frontend", 0.15, 1.0),
    ] {
        let tasks = ((machines as f64 * frac_tasks) as u32).max(6);
        cluster
            .submit_job(
                JobSpec::latency_sensitive(name, tasks, cpu),
                true,
                workloads::factory(name, 0xFEE ^ tasks as u64),
            )
            .expect("placement");
    }
    // Plus the swarm of small tenants every production machine carries
    // (so no machine is empty and transient batch always has neighbours).
    cluster
        .submit_job(
            JobSpec::latency_sensitive("tenant", machines * 2, 0.2),
            true,
            Box::new(|i| {
                let mut p = cpi2::sim::ResourceProfile::compute_bound();
                p.cache_mb = 0.5;
                Box::new(cpi2::workloads::LsService::new(p, 0.2, 6, 0x7E ^ i as u64))
            }),
        )
        .expect("placement");
    cluster
}

/// `--seconds` mode: serial vs parallel wall-clock for the same fleet.
/// The timed comparison always runs bare (telemetry disabled) so the
/// numbers stay comparable; with `--telemetry` a third, fully
/// instrumented harness run over the same fleet feeds the export. With
/// `--faults` an additional harness-level pass runs the full CPI² stack
/// under the fault plan at parallelism 1 and N and asserts the two are
/// bit-identical (trace, incident log and fault counters).
fn throughput_mode(
    machines: u32,
    seconds: i64,
    parallelism: usize,
    telemetry_path: Option<&str>,
    seed: u64,
    faults: Option<&FaultProfile>,
    identifier: IdentifierKind,
) {
    let run = |par: usize| -> (f64, Vec<TraceEntry>) {
        let mut cluster = build_fleet(machines, par, &Telemetry::disabled(), seed);
        let start = Instant::now();
        cluster.run_for(SimDuration::from_secs(seconds));
        let wall = start.elapsed().as_secs_f64();
        (wall, cluster.trace().entries().cloned().collect())
    };

    let tick_s = ClusterConfig::default().tick.as_secs_f64();
    let machine_ticks = machines as f64 * (seconds as f64 / tick_s);
    let (serial_wall, serial_trace) = run(1);
    let (par_wall, par_trace) = run(parallelism);
    let speedup = serial_wall / par_wall.max(1e-9);

    plot::print_table(
        &format!("Simulator throughput: {machines} machines x {seconds} simulated seconds"),
        &["path", "wall time", "machine-ticks/sec"],
        &[
            vec![
                "serial (parallelism 1)".into(),
                format!("{serial_wall:.3} s"),
                format!("{:.0}", machine_ticks / serial_wall.max(1e-9)),
            ],
            vec![
                format!("parallel (parallelism {parallelism})"),
                format!("{par_wall:.3} s"),
                format!("{:.0}", machine_ticks / par_wall.max(1e-9)),
            ],
            vec!["speedup".into(), format!("{speedup:.2}x"), String::new()],
        ],
    );

    assert_eq!(
        serial_trace, par_trace,
        "parallel run diverged from serial under the same seed"
    );
    println!(
        "\nfleet_rate throughput OK ({} trace entries, serial == parallelism {})",
        serial_trace.len(),
        parallelism
    );

    if let Some(profile) = faults {
        let faulty = |par: usize| -> (Vec<TraceEntry>, Vec<String>, [u64; 3]) {
            let cluster = build_fleet(machines, par, &Telemetry::disabled(), seed);
            let mut system = Cpi2Harness::new(
                cluster,
                Cpi2Config {
                    min_samples_per_task: 5,
                    identifier,
                    ..Cpi2Config::default()
                },
            );
            system.set_fault_plan(Some(FaultPlan::new(seed, profile.clone())));
            system.run_for(SimDuration::from_secs(seconds));
            (
                system.cluster.trace().entries().cloned().collect(),
                system.incident_lines(),
                [
                    system.agent_restarts(),
                    system.machine_crashes(),
                    system.shipment_faults(),
                ],
            )
        };
        let (trace_1, incidents_1, counts_1) = faulty(1);
        let (trace_n, incidents_n, counts_n) = faulty(parallelism);
        assert_eq!(
            trace_1, trace_n,
            "faulty run diverged between parallelism 1 and {parallelism}"
        );
        assert_eq!(
            incidents_1, incidents_n,
            "faulty incident log diverged between parallelism 1 and {parallelism}"
        );
        assert_eq!(
            counts_1, counts_n,
            "fault counters diverged between parallelism 1 and {parallelism}"
        );
        if !profile.is_noop() {
            assert!(
                counts_1.iter().sum::<u64>() > 0,
                "fault profile was armed but nothing fired in {seconds} s"
            );
        }
        println!(
            "fleet_rate faults OK (agent restarts {}, machine crashes {}, \
             shipment faults {}; parallelism 1 == {parallelism})",
            counts_1[0], counts_1[1], counts_1[2]
        );
    }

    if let Some(path) = telemetry_path {
        let telemetry = Telemetry::enabled();
        let cluster = build_fleet(machines, parallelism, &telemetry, seed);
        let config = Cpi2Config {
            min_samples_per_task: 5,
            identifier,
            ..Cpi2Config::default()
        };
        let mut system = Cpi2Harness::new(cluster, config);
        system.run_for(SimDuration::from_secs(seconds));
        println!("collector dropped: {}", system.collector_dropped());
        dump_export(&telemetry, path);
    }
}

/// `--sample-budget` mode: fleet figures without simulating the fleet.
/// Stratifies the seeded fleet description by platform x load band x
/// tenancy, spends `budget` cell simulations via the two-phase (pilot ->
/// Neyman) allocator, and extrapolates fleet totals with
/// finite-population-corrected 95% CIs (DESIGN.md §12). The per-cell
/// windows match `sampled_fleet`'s defaults (1 h warm-up + 2 h measured).
fn sampled_mode(machines: u32, budget: u32, seed: u64) {
    let model = FleetModel::new(machines, seed);
    let cfg = SamplingConfig::with_budget(budget);
    println!(
        "fleet_rate statistical mode: {machines} machines, budget {budget} cells, seed {seed:#x}"
    );
    let start = Instant::now();
    let result = run_sampled(&model, &cfg, &mut |idx| simulate_cell(&model, idx));
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let plan_rows: Vec<Vec<String>> = result
        .plan
        .iter()
        .map(|p| {
            vec![
                p.key.label(),
                format!("{}", p.population),
                format!("{}", p.pilot),
                format!("{}", p.sampled),
            ]
        })
        .collect();
    plot::print_table(
        "Two-phase allocation (pilot -> Neyman)",
        &["stratum", "N_h", "pilot", "sampled"],
        &plan_rows,
    );

    let est_rows: Vec<Vec<String>> = METRIC_NAMES
        .iter()
        .zip(result.estimator.all_estimates().iter())
        .map(|(name, e)| {
            vec![
                (*name).to_string(),
                format!("{:.1}", e.total),
                format!("[{:.1}, {:.1}]", e.total_lo, e.total_hi),
                format!("{:.4}", e.mean),
            ]
        })
        .collect();
    plot::print_table(
        "Fleet estimates (95% CI, finite-population corrected)",
        &["metric", "fleet total", "95% CI", "per-machine mean"],
        &est_rows,
    );

    let cells = result.estimator.cells_sampled();
    let effective = machines as f64 * model.ticks_per_cell() as f64 / wall;
    println!(
        "\nfleet_rate sampled OK ({cells} cells for a {machines}-machine fleet in {wall:.2} s, \
         {effective:.0} effective fleet machine-ticks/s)"
    );
}

/// Day-mode driver: the same fleet day, bare or resident behind the
/// observability plane. Both paths tick the identical harness, so the
/// reported numbers don't depend on which one ran.
enum Runner {
    Bare(Box<Cpi2Harness>),
    Resident(Box<ServeHarness>),
}

impl Runner {
    fn run_for(&mut self, d: SimDuration) {
        match self {
            Runner::Bare(s) => s.run_for(d),
            Runner::Resident(sh) => sh.run_for(d),
        }
    }

    fn system_mut(&mut self) -> &mut Cpi2Harness {
        match self {
            Runner::Bare(s) => s,
            Runner::Resident(sh) => sh.inner_mut(),
        }
    }

    fn finish(self) -> Cpi2Harness {
        match self {
            Runner::Bare(s) => *s,
            Runner::Resident(sh) => sh.into_inner(),
        }
    }
}

fn main() {
    let args = Args::new();
    if args.flag("--help") {
        print!("{USAGE}");
        return;
    }
    let machines: u32 = args.parsed("--machines", args.positional().unwrap_or(150));
    let parallelism: usize = args.parsed("--parallelism", default_parallelism());
    let seed: u64 = args.parsed("--seed", 0xF1EE7);
    let faults = args.value("--faults").map(|name| {
        FaultProfile::named(name)
            .unwrap_or_else(|| panic!("--faults takes one of: none, lossy, heavy (got {name:?})"))
    });
    let telemetry_path = args.value("--telemetry").map(str::to_string);
    let identifier = args
        .value("--identifier")
        .map(|name| {
            IdentifierKind::named(name).unwrap_or_else(|| {
                let all: Vec<&str> = IdentifierKind::ALL.iter().map(|k| k.name()).collect();
                panic!(
                    "--identifier takes one of: {} (got {name:?})",
                    all.join(", ")
                )
            })
        })
        .unwrap_or_default();
    let telemetry = if telemetry_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    if let Some(budget) = args.value("--sample-budget") {
        let budget: u32 = budget.parse().expect("--sample-budget takes an integer");
        sampled_mode(machines, budget, seed);
        return;
    }

    if let Some(seconds) = args.value("--seconds") {
        let seconds: i64 = seconds.parse().expect("--seconds takes an integer");
        throughput_mode(
            machines,
            seconds,
            parallelism,
            telemetry_path.as_deref(),
            seed,
            faults.as_ref(),
            identifier,
        );
        return;
    }

    let mut cluster = build_fleet(machines, parallelism, &telemetry, seed);

    // Transient antagonists: a Poisson-ish stream of short-lived thrasher
    // jobs over the measured day (≈ machines/20 arrivals, 60–120 min
    // each), arriving after the full-day spec warm-up.
    let mut rng = SimRng::new(0x0DD5);
    let arrivals = (machines / 20).max(3);
    let mut trace = Vec::new();
    for i in 0..arrivals {
        trace.push(TraceJob {
            at_s: rng.range_u64(25 * 3_600, 44 * 3_600) as i64,
            name: "cache-thrasher".into(),
            class: "best-effort".into(),
            tasks: 1,
            cpu: 1.0,
            seed: 0xA11 + i as u64,
            duration_s: Some(rng.range_u64(3_600, 7_200) as i64),
        });
    }
    workloads::schedule_trace(&mut cluster, &trace);

    let config = Cpi2Config {
        min_samples_per_task: 5,
        identifier,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    if let Some(profile) = &faults {
        system.set_fault_plan(Some(FaultPlan::new(seed, profile.clone())));
    }

    // With --serve, run the day resident: same ticks, but every tick
    // publishes a snapshot the HTTP plane reads, so the measurement can
    // be watched live without perturbing it.
    let mut runner = match args.value("--serve") {
        Some(addr) => {
            let mut sh = ServeHarness::new(system);
            let bound = sh
                .serve(addr, ServerConfig::default())
                .unwrap_or_else(|e| panic!("--serve {addr}: bind failed: {e}"));
            println!("observability plane at http://{bound} (for the whole run)");
            Runner::Resident(Box::new(sh))
        }
        None => Runner::Bare(Box::new(system)),
    };

    // Learn specs over one clean day: the spec σ must absorb the diurnal
    // swing (the paper refreshes every 24 h).
    runner.run_for(SimDuration::from_hours(24));
    runner.system_mut().force_spec_refresh();

    // Measure the next 22 hours (antagonists arrive from hour 25 on).
    // With telemetry on, snapshot the registry as JSON every 2 simulated
    // hours so the measured day leaves a time series, not just a total.
    if let Some(path) = &telemetry_path {
        for _ in 0..11 {
            runner.run_for(SimDuration::from_hours(2));
            if let Some(json) = runner.system_mut().telemetry().json_snapshot() {
                emit(path, &format!("{json}\n"));
            }
        }
    } else {
        runner.run_for(SimDuration::from_hours(22));
    }
    let system = runner.finish();

    let identifications = system
        .incidents()
        .iter()
        .filter(|mi| {
            mi.incident
                .top_suspect()
                .is_some_and(|s| s.class.throttle_eligible() && s.correlation >= 0.35)
        })
        .count();
    let machine_days = machines as f64 * 22.0 / 24.0;
    let rate = identifications as f64 / machine_days;
    let incident_rate = system.incidents().len() as f64 / machine_days;

    let mut rows = vec![
        vec![
            "machines x days".into(),
            format!("{machines} x 0.92"),
            "whole fleet".into(),
        ],
        vec![
            "antagonist arrivals".into(),
            format!("{arrivals} transient thrashers"),
            "(production mix)".into(),
        ],
        vec![
            "identifications / machine-day".into(),
            format!("{rate:.2}"),
            "0.37".into(),
        ],
        vec![
            "all anomalies / machine-day".into(),
            format!("{incident_rate:.2}"),
            "(not reported)".into(),
        ],
        vec![
            "caps applied".into(),
            format!("{}", system.caps_applied()),
            "enforcement was opt-in".into(),
        ],
        vec![
            "collector batches dropped".into(),
            format!("{}", system.collector_dropped()),
            "pipeline is lossy by design".into(),
        ],
    ];
    if faults.is_some() {
        rows.push(vec![
            "injected agent restarts / machine crashes".into(),
            format!("{} / {}", system.agent_restarts(), system.machine_crashes()),
            "(fault injection)".into(),
        ]);
        rows.push(vec![
            "injected shipment faults".into(),
            format!("{}", system.shipment_faults()),
            "(fault injection)".into(),
        ]);
    }
    plot::print_table(
        "Fleet incident rate over one simulated day",
        &["metric", "measured", "paper"],
        &rows,
    );
    if let Some(path) = &telemetry_path {
        dump_export(system.telemetry(), path);
    }
    assert!(
        (0.01..=5.0).contains(&rate),
        "identification rate {rate} outside the paper's order of magnitude"
    );
    println!("\nfleet_rate OK ({rate:.2} identifications per machine-day; paper: 0.37)");
}
