//! The §1–§2 motivation, quantified: interference discards search replies.
//!
//! "An end-user response time beyond a couple of hundred milliseconds can
//! adversely affect user experience, so replies from leaves that take too
//! long to arrive are simply discarded, lowering the quality of the search
//! result" (§2); the intro's anecdote: "1/66 of user traffic for an
//! application ... had a latency of more than 200 ms rather than 40 ms for
//! more than 1 hr."
//!
//! Three phases over one leaf-serving cluster: clean, under batch
//! interference with protection off, and with CPI² protection on. We
//! report mean leaf latency, the fraction of replies missing the fan-out
//! deadline (= discarded, i.e. lost result quality), and the >200 ms tail.
//!
//! Run: `cargo run -p cpi2-bench --release --bin motivation_quality`

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, SimDuration};
use cpi2::workloads::{self, CacheThrasher};
use cpi2_bench::{metrics, plot};

/// Fan-out deadline: replies later than this are discarded by the mixer.
const DEADLINE_MS: f64 = 80.0;
/// The intro anecdote's user-visible pain threshold.
const TAIL_MS: f64 = 200.0;

#[derive(Debug, Default, Clone, Copy)]
struct Quality {
    mean_latency: f64,
    discarded_frac: f64,
    tail_frac: f64,
}

/// Measures per-leaf-reply quality over `secs` seconds.
fn measure(system: &mut Cpi2Harness, secs: u32) -> Quality {
    let mut n = 0u64;
    let mut sum = 0.0;
    let mut discarded = 0u64;
    let mut tail = 0u64;
    for _ in 0..secs {
        system.step();
        for obs in metrics::per_task(&system.cluster, "websearch-leaf") {
            let Some(l) = obs.latency_ms else { continue };
            n += 1;
            sum += l;
            if l > DEADLINE_MS {
                discarded += 1;
            }
            if l > TAIL_MS {
                tail += 1;
            }
        }
    }
    Quality {
        mean_latency: sum / n.max(1) as f64,
        discarded_frac: discarded as f64 / n.max(1) as f64,
        tail_frac: tail as f64 / n.max(1) as f64,
    }
}

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 404,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 12);
    cluster
        .submit_job(
            JobSpec::latency_sensitive("websearch-leaf", 12, 2.0),
            true,
            workloads::factory("websearch-leaf", 12),
        )
        .expect("placement");
    let config = Cpi2Config {
        min_samples_per_task: 5,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);

    // Learn specs, then measure the clean baseline.
    system.run_for(SimDuration::from_mins(30));
    system.force_spec_refresh();
    let clean = measure(&mut system, 600);

    // Batch thrashers land; protection off — the pre-CPI² world.
    system.set_protection_enabled(false);
    system
        .cluster
        .submit_job(
            JobSpec::best_effort("indexer", 5, 1.0),
            true,
            Box::new(|i| Box::new(CacheThrasher::new(8.0, 600, 120, 9 + i as u64))),
        )
        .expect("placement");
    system.run_for(SimDuration::from_mins(5));
    let degraded = measure(&mut system, 1800);

    // CPI² protection on.
    system.set_protection_enabled(true);
    system.run_for(SimDuration::from_mins(15)); // detection + first caps
    let protected = measure(&mut system, 1800);

    let row = |name: &str, q: Quality| {
        vec![
            name.to_string(),
            format!("{:.1} ms", q.mean_latency),
            format!("{:.2}%", q.discarded_frac * 100.0),
            if q.tail_frac > 0.0 {
                format!("1/{:.0}", 1.0 / q.tail_frac)
            } else {
                "none".to_string()
            },
        ]
    };
    plot::print_table(
        "Search quality under interference (deadline 80 ms, tail 200 ms)",
        &[
            "phase",
            "mean leaf latency",
            "replies discarded",
            "traffic >200 ms",
        ],
        &[
            row("clean", clean),
            row("interfered, no CPI2", degraded),
            row("interfered, CPI2 on", protected),
        ],
    );
    println!(
        "caps applied once protection enabled: {}",
        system.caps_applied()
    );

    assert!(
        degraded.discarded_frac > clean.discarded_frac * 2.0 + 0.01,
        "interference must discard replies: {} -> {}",
        clean.discarded_frac,
        degraded.discarded_frac
    );
    assert!(
        protected.discarded_frac < degraded.discarded_frac * 0.7,
        "CPI2 must restore quality: {} -> {}",
        degraded.discarded_frac,
        protected.discarded_frac
    );
    assert!(system.caps_applied() >= 1);
    println!(
        "\nmotivation_quality OK (discarded: {:.1}% -> {:.1}% -> {:.1}%)",
        clean.discarded_frac * 100.0,
        degraded.discarded_frac * 100.0,
        protected.discarded_frac * 100.0
    );
}
