//! Performance gate: pinned-seed throughput and spec-refresh latency.
//!
//! Measures the two numbers the perf work optimizes, at fixed seeds so
//! runs are comparable:
//!
//! 1. **Simulator throughput** — machine-ticks/sec advancing a seeded
//!    mostly-healthy fleet on the serial path (best of `--repeat` runs;
//!    the serial path is what a 1-CPU CI box can measure honestly).
//! 2. **Spec-refresh latency** — wall micros for an `Aggregator` refresh
//!    with every shard dirty (fresh sample load) and for the incremental
//!    refresh immediately after, when every shard is clean and served
//!    from its cached roll.
//! 3. **Sampled-mode throughput** — machine-ticks/sec through the
//!    statistical fleet mode's cell simulations (stratifier + two-phase
//!    allocator + per-cell sim, DESIGN.md §12). Gated only when the
//!    baseline file records `sampled_ticks_per_sec`.
//!
//! Results are written to `--out` (default `BENCH_5.json`). With
//! `--baseline <file>` the run compares its throughput against the
//! committed baseline and exits non-zero only when it regresses by more
//! than `--max-regress` (default 0.30) — a generous threshold: CI boxes
//! are noisy, and the gate exists to catch order-of-magnitude mistakes,
//! not percent-level drift.
//!
//! Run: `cargo run -p cpi2-bench --release --bin perf_gate -- \
//!           [--machines N] [--seconds S] [--seed SEED] [--repeat R] \
//!           [--out FILE] [--baseline FILE] [--max-regress F]`

use cpi2::core::Cpi2Config;
use cpi2::pipeline::{Aggregator, SpecStore};
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, SimDuration};
use cpi2::telemetry::Telemetry;
use cpi2::workloads;
use cpi2_bench::args::Args;
use cpi2_bench::sampling::{run_sampled, simulate_cell, FleetModel, SamplingConfig};
use cpi2_core::{CpiSample, TaskClass, TaskHandle};
use std::time::Instant;

/// The same mostly-healthy fleet regime `fleet_rate` measures: sparse
/// serving load plus a swarm of small tenants, all seeded.
fn build_fleet(machines: u32, seed: u64) -> Cluster {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        overcommit: 2.0,
        parallelism: 1,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), machines);
    for (name, frac_tasks, cpu) in [
        ("websearch-leaf", 0.25f64, 2.0),
        ("bigtable-tablet", 0.20, 1.2),
        ("storage-server", 0.15, 1.0),
        ("image-frontend", 0.15, 1.0),
    ] {
        let tasks = ((machines as f64 * frac_tasks) as u32).max(6);
        cluster
            .submit_job(
                JobSpec::latency_sensitive(name, tasks, cpu),
                true,
                workloads::factory(name, 0xFEE ^ tasks as u64),
            )
            .expect("placement");
    }
    cluster
        .submit_job(
            JobSpec::latency_sensitive("tenant", machines * 2, 0.2),
            true,
            Box::new(|i| {
                let mut p = cpi2::sim::ResourceProfile::compute_bound();
                p.cache_mb = 0.5;
                Box::new(cpi2::workloads::LsService::new(p, 0.2, 6, 0x7E ^ i as u64))
            }),
        )
        .expect("placement");
    cluster
}

/// Best-of-`repeat` serial machine-ticks/sec over `seconds` sim-seconds.
fn measure_throughput(machines: u32, seconds: i64, seed: u64, repeat: u32) -> f64 {
    let tick_s = ClusterConfig::default().tick.as_secs_f64();
    let machine_ticks = machines as f64 * (seconds as f64 / tick_s);
    let mut best = 0.0f64;
    for _ in 0..repeat.max(1) {
        let mut cluster = build_fleet(machines, seed);
        let start = Instant::now();
        cluster.run_for(SimDuration::from_secs(seconds));
        let rate = machine_ticks / start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(rate);
    }
    best
}

/// Deterministic synthetic sample load: `jobs` keys × `tasks` tasks ×
/// `per_task` samples each, timestamps spread over the first day.
fn sample_load(jobs: u32, tasks: u64, per_task: i64) -> Vec<CpiSample> {
    let mut out = Vec::new();
    for j in 0..jobs {
        let platform = if j % 2 == 0 {
            "westmere"
        } else {
            "sandybridge"
        };
        for t in 0..tasks {
            for i in 0..per_task {
                out.push(CpiSample {
                    task: TaskHandle(u64::from(j) * 1000 + t),
                    jobname: format!("job-{j}"),
                    platforminfo: platform.into(),
                    timestamp: i * 60_000_000 + (t as i64) * 7_000,
                    cpu_usage: 1.0,
                    cpi: 1.0 + f64::from(j % 7) * 0.1 + (t as f64) * 0.01,
                    l3_mpki: 1.0,
                    class: TaskClass::latency_sensitive(),
                });
            }
        }
    }
    out
}

/// (dirty_us, clean_us, specs, skipped_on_clean): refresh latency with
/// every shard dirty, then with every shard clean (cache-served).
fn measure_refresh(repeat: u32) -> (u64, u64, usize, u64) {
    let config = Cpi2Config {
        min_samples_per_task: 10,
        ..Cpi2Config::default()
    };
    let samples = sample_load(256, 16, 12);
    let day_us = 24 * 3_600 * 1_000_000i64;
    let mut dirty_best = u64::MAX;
    let mut clean_best = u64::MAX;
    let mut specs = 0usize;
    let mut skipped = 0u64;
    for _ in 0..repeat.max(1) {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(config.clone(), 0);
        agg.set_telemetry(&Telemetry::disabled());
        agg.ingest(&samples);

        let start = Instant::now();
        let published = agg.refresh_at(&store, day_us);
        dirty_best = dirty_best.min(start.elapsed().as_micros() as u64);
        specs = published.len();

        // No ingest since: every shard is clean and served from cache.
        let before = agg.shards_skipped();
        let start = Instant::now();
        let republished = agg.refresh_at(&store, 2 * day_us);
        clean_best = clean_best.min(start.elapsed().as_micros() as u64);
        skipped = agg.shards_skipped() - before;
        assert_eq!(
            published.len(),
            republished.len(),
            "incremental refresh changed the published spec count"
        );
    }
    (dirty_best, clean_best, specs, skipped)
}

/// Statistical-fleet-mode throughput: raw machine-ticks/sec simulating
/// the cells of a two-phase stratified sample (best of `repeat`). A
/// small fleet with short windows — the gate watches the sampled hot
/// path (stratifier, allocator, per-cell sim), not the statistics.
fn measure_sampled(repeat: u32) -> f64 {
    let model = FleetModel {
        machines: 10_000,
        seed: 0x5AFE,
        warmup: SimDuration::from_mins(5),
        measure: SimDuration::from_mins(10),
    };
    let cfg = SamplingConfig::with_budget(24);
    let mut best = 0.0f64;
    for _ in 0..repeat.max(1) {
        let start = Instant::now();
        let result = run_sampled(&model, &cfg, &mut |idx| simulate_cell(&model, idx));
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let ticks = u64::from(result.estimator.cells_sampled()) * model.ticks_per_cell();
        best = best.max(ticks as f64 / wall);
    }
    best
}

/// Pulls `"key": <number>` out of a flat JSON object (hand-rolled: the
/// gate must not trust a vendored parser with its own gate inputs).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = Args::new();
    let machines: u32 = args.parsed("--machines", 400);
    let seconds: i64 = args.parsed("--seconds", 120);
    let seed: u64 = args.parsed("--seed", 0xF1EE7);
    let repeat: u32 = args.parsed("--repeat", 3);
    let out_path = args.value("--out").unwrap_or("BENCH_5.json").to_string();
    let baseline = args.value("--baseline").map(str::to_string);
    let max_regress: f64 = args.parsed("--max-regress", 0.30);

    println!("perf_gate: {machines} machines x {seconds} sim-s, seed {seed:#x}, best of {repeat}");
    let ticks_per_sec = measure_throughput(machines, seconds, seed, repeat);
    println!("  machine-ticks/sec (serial): {ticks_per_sec:.0}");

    let (dirty_us, clean_us, specs, skipped) = measure_refresh(repeat);
    println!("  spec refresh: dirty {dirty_us} us, clean {clean_us} us ({specs} specs, {skipped} shards cache-served)");

    let sampled_ticks_per_sec = measure_sampled(repeat);
    println!("  sampled-mode machine-ticks/sec (cell sims): {sampled_ticks_per_sec:.0}");

    let json = format!(
        "{{\n  \"bench\": \"perf_gate\",\n  \"machines\": {machines},\n  \"seconds\": {seconds},\n  \"seed\": {seed},\n  \"repeat\": {repeat},\n  \"machine_ticks_per_sec\": {ticks_per_sec:.0},\n  \"sampled_ticks_per_sec\": {sampled_ticks_per_sec:.0},\n  \"spec_refresh_dirty_us\": {dirty_us},\n  \"spec_refresh_clean_us\": {clean_us},\n  \"specs_published\": {specs},\n  \"shards_cache_served\": {skipped}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("  wrote {out_path}");

    if let Some(base_path) = baseline {
        let base_text = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let base = json_f64(&base_text, "machine_ticks_per_sec")
            .unwrap_or_else(|| panic!("baseline {base_path} has no machine_ticks_per_sec"));
        let floor = base * (1.0 - max_regress);
        println!(
            "  baseline {base:.0} ticks/sec, floor {floor:.0} (max regress {:.0}%)",
            max_regress * 100.0
        );
        if ticks_per_sec < floor {
            eprintln!(
                "perf_gate FAIL: {ticks_per_sec:.0} ticks/sec is below the \
                 {floor:.0} floor ({base:.0} - {:.0}%)",
                max_regress * 100.0
            );
            std::process::exit(1);
        }
        // The sampled-mode gate only arms once the baseline records the
        // key — older committed baselines stay valid untouched.
        if let Some(base_sampled) = json_f64(&base_text, "sampled_ticks_per_sec") {
            let sampled_floor = base_sampled * (1.0 - max_regress);
            println!("  sampled baseline {base_sampled:.0} ticks/sec, floor {sampled_floor:.0}");
            if sampled_ticks_per_sec < sampled_floor {
                eprintln!(
                    "perf_gate FAIL: sampled mode {sampled_ticks_per_sec:.0} ticks/sec is \
                     below the {sampled_floor:.0} floor"
                );
                std::process::exit(1);
            }
        }
        println!(
            "perf_gate OK (within {:.0}% of baseline)",
            max_regress * 100.0
        );
    } else {
        println!("perf_gate OK (no baseline given; gate not applied)");
    }
}
