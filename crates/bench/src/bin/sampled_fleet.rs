//! Statistical fleet mode: fleet-level figures from a stratified sample.
//!
//! Exhaustive simulation tops out around BENCH_5.json's ~1.5M
//! machine-ticks/s — three orders of magnitude short of a 10⁶-machine
//! fleet. This bin runs the two-phase stratified sampler (DESIGN.md §12)
//! over a seeded fleet description instead: partition by platform × load
//! band × tenancy, pilot each stratum, spend the remaining budget
//! Neyman-style, and extrapolate fleet incident/throttle/cap totals and
//! CPI spec moments with finite-population-corrected 95% CIs.
//!
//! Results are written to `--out` (default `BENCH_9.json`), including the
//! *effective* fleet machine-ticks/s — fleet machines × per-cell ticks /
//! wall — which is what the sampling buys over exhaustive simulation.
//! With `--baseline <file>` the run gates on that number (same
//! generous-threshold philosophy as `perf_gate`).
//!
//! Run: `cargo run -p cpi2-bench --release --bin sampled_fleet -- \
//!           [--fleet-machines N] [--budget B] [--seed SEED] \
//!           [--warmup-mins W] [--measure-mins M] \
//!           [--out FILE] [--baseline FILE] [--max-regress F]`

use cpi2::sim::SimDuration;
use cpi2_bench::args::Args;
use cpi2_bench::plot;
use cpi2_bench::sampling::{run_sampled, simulate_cell, FleetModel, SamplingConfig, METRIC_NAMES};
use std::time::Instant;

/// Pulls `"key": <number>` out of a flat JSON object (hand-rolled: the
/// gate must not trust a vendored parser with its own gate inputs).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = Args::new();
    let fleet_machines: u32 = args.parsed("--fleet-machines", 1_000_000);
    let budget: u32 = args.parsed("--budget", 240);
    let seed: u64 = args.parsed("--seed", 0x5AFE);
    let warmup_mins: i64 = args.parsed("--warmup-mins", 60);
    let measure_mins: i64 = args.parsed("--measure-mins", 120);
    let out_path = args.value("--out").unwrap_or("BENCH_9.json").to_string();
    let baseline = args.value("--baseline").map(str::to_string);
    let max_regress: f64 = args.parsed("--max-regress", 0.30);

    let model = FleetModel {
        machines: fleet_machines,
        seed,
        warmup: SimDuration::from_mins(warmup_mins),
        measure: SimDuration::from_mins(measure_mins),
    };
    let cfg = SamplingConfig::with_budget(budget);

    println!(
        "sampled_fleet: {fleet_machines} machines, budget {budget} cells, seed {seed:#x}, \
         {warmup_mins}+{measure_mins} min windows"
    );
    let start = Instant::now();
    let result = run_sampled(&model, &cfg, &mut |idx| simulate_cell(&model, idx));
    let wall = start.elapsed().as_secs_f64().max(1e-9);

    let cells = result.estimator.cells_sampled();
    let ticks_per_cell = model.ticks_per_cell();
    let simulated_ticks = u64::from(cells) * ticks_per_cell;
    let raw_rate = simulated_ticks as f64 / wall;
    let effective_rate = fleet_machines as f64 * ticks_per_cell as f64 / wall;

    let plan_rows: Vec<Vec<String>> = result
        .plan
        .iter()
        .map(|p| {
            vec![
                p.key.label(),
                format!("{}", p.population),
                format!("{}", p.pilot),
                format!("{}", p.sampled),
            ]
        })
        .collect();
    plot::print_table(
        "Two-phase allocation (pilot -> Neyman)",
        &["stratum", "N_h", "pilot", "sampled"],
        &plan_rows,
    );

    let estimates = result.estimator.all_estimates();
    let est_rows: Vec<Vec<String>> = METRIC_NAMES
        .iter()
        .zip(estimates.iter())
        .map(|(name, e)| {
            vec![
                (*name).to_string(),
                format!("{:.1}", e.total),
                format!("[{:.1}, {:.1}]", e.total_lo, e.total_hi),
                format!("{:.4}", e.mean),
            ]
        })
        .collect();
    plot::print_table(
        "Fleet estimates (95% CI, finite-population corrected)",
        &["metric", "fleet total", "95% CI", "per-machine mean"],
        &est_rows,
    );
    println!(
        "\n{cells} cells simulated in {wall:.2} s: {raw_rate:.0} machine-ticks/s raw, \
         {effective_rate:.0} effective fleet machine-ticks/s"
    );

    let mut fields = vec![
        ("bench".to_string(), "\"sampled_fleet\"".to_string()),
        ("fleet_machines".to_string(), format!("{fleet_machines}")),
        ("sample_budget".to_string(), format!("{budget}")),
        ("cells_sampled".to_string(), format!("{cells}")),
        ("strata".to_string(), format!("{}", result.plan.len())),
        ("seed".to_string(), format!("{seed}")),
        ("warmup_mins".to_string(), format!("{warmup_mins}")),
        ("measure_mins".to_string(), format!("{measure_mins}")),
        (
            "machine_ticks_per_sec".to_string(),
            format!("{raw_rate:.0}"),
        ),
        (
            "effective_fleet_ticks_per_sec".to_string(),
            format!("{effective_rate:.0}"),
        ),
    ];
    for (name, e) in METRIC_NAMES.iter().zip(estimates.iter()) {
        fields.push((format!("{name}_total"), format!("{:.3}", e.total)));
        fields.push((format!("{name}_ci_lo"), format!("{:.3}", e.total_lo)));
        fields.push((format!("{name}_ci_hi"), format!("{:.3}", e.total_hi)));
    }
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    std::fs::write(&out_path, &json).expect("write results");
    println!("wrote {out_path}");

    if let Some(base_path) = baseline {
        let base_text = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let base = json_f64(&base_text, "effective_fleet_ticks_per_sec")
            .unwrap_or_else(|| panic!("baseline {base_path} has no effective_fleet_ticks_per_sec"));
        let floor = base * (1.0 - max_regress);
        println!(
            "baseline {base:.0} effective ticks/s, floor {floor:.0} (max regress {:.0}%)",
            max_regress * 100.0
        );
        if effective_rate < floor {
            eprintln!(
                "sampled_fleet FAIL: {effective_rate:.0} effective ticks/s is below the \
                 {floor:.0} floor"
            );
            std::process::exit(1);
        }
        println!(
            "sampled_fleet OK (within {:.0}% of baseline)",
            max_regress * 100.0
        );
    } else {
        println!("sampled_fleet OK (no baseline given; gate not applied)");
    }
}
