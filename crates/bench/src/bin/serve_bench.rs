//! Control-plane load gate: keep-alive throughput, latency, and
//! tick-thread publish cost, pinned to `BENCH_10.json`.
//!
//! Three measurements (see `cpi2_bench::serve_load` for the generator):
//!
//! 1. **Keep-alive throughput** — N concurrent persistent connections
//!    (default 512) drive the mixed GET/scrape/query schedule against a
//!    live, ticking [`ServeHarness`]; requests/s and p50/p99 latency.
//! 2. **Connection-overhead speedup** — pure `GET /healthz` (so handler
//!    cost doesn't mask the connection layer), keep-alive vs the
//!    one-request-per-connection regime the event-loop server replaced
//!    (every request opens a fresh connection). The gate requires
//!    keep-alive to beat the baseline by `--min-speedup` (default 10×).
//! 3. **Publish cost** — µs/tick the tick thread spends publishing
//!    snapshots at 400 vs 4000 machines, full-every-tick vs delta
//!    (`full_every` 64). The gate requires delta publishing at 4000
//!    machines to cost at most half of full republish — tick cost must
//!    scale with churn, not fleet size.
//!
//! Hard gates (always on): zero 5xx, zero handler panics, all
//! `--connections` clients simultaneously connected at peak. With
//! `--baseline FILE` the run additionally compares its keep-alive
//! requests/s against the committed baseline and fails below
//! `1 - --max-regress` of it (default 0.30 — CI boxes are noisy; the
//! gate exists to catch order-of-magnitude mistakes).
//!
//! Run: `cargo run -p cpi2-bench --release --bin serve_bench -- \
//!           [--connections N] [--seconds S] [--pipeline D] [--machines N] \
//!           [--publish-machines-big N] [--seed SEED] [--min-speedup F] \
//!           [--out FILE] [--baseline FILE] [--max-regress F]`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cpi2_bench::args::Args;
use cpi2_bench::serve_load::{
    build_serve_fleet, measure_publish_cost, run_load, LoadConfig, LoadReport,
};
use cpi2_serve::poll::raise_nofile_limit;
use cpi2_serve::ServerConfig;

/// Boots a resident fleet, serves it, and drives `cfg` against it while
/// the harness keeps ticking (100 ms pace) — the server is measured
/// live, with delta publishing and snapshot churn underneath.
fn run_against_live_harness(machines: u32, seed: u64, cfg: LoadConfig) -> (LoadReport, bool) {
    let mut sh = build_serve_fleet(machines, seed);
    sh.run_for(cpi2::sim::SimDuration::from_mins(1));
    let server_cfg = ServerConfig {
        max_connections: cfg.connections * 2 + 64,
        ..ServerConfig::default()
    };
    let addr = sh.serve("127.0.0.1:0", server_cfg).expect("bind loopback");

    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    let load = std::thread::spawn(move || {
        let report = run_load(addr, &cfg);
        flag.store(true, Ordering::SeqCst);
        report
    });
    while !done.load(Ordering::SeqCst) {
        sh.tick();
        std::thread::sleep(Duration::from_millis(100));
    }
    let report = load.join().expect("load thread");

    sh.shutdown_server();
    let text = sh.inner().telemetry().prometheus_text().unwrap_or_default();
    let no_panics = text.contains("cpi_serve_handler_panics_total 0");
    (report, no_panics)
}

/// Pulls `"key": <number>` out of a flat JSON object (hand-rolled: the
/// gate must not trust a vendored parser with its own gate inputs).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = Args::new();
    let connections: usize = args.parsed("--connections", 512);
    let seconds: f64 = args.parsed("--seconds", 3.0);
    let pipeline: usize = args.parsed("--pipeline", 8);
    let machines: u32 = args.parsed("--machines", 400);
    let big: u32 = args.parsed("--publish-machines-big", 4000);
    let seed: u64 = args.parsed("--seed", 0x5E4E);
    let min_speedup: f64 = args.parsed("--min-speedup", 10.0);
    let out_path = args.value("--out").unwrap_or("BENCH_10.json").to_string();
    let baseline = args.value("--baseline").map(str::to_string);
    let max_regress: f64 = args.parsed("--max-regress", 0.30);

    let granted = raise_nofile_limit((connections * 4 + 256) as u64);
    println!(
        "serve_bench: {connections} connections x {seconds}s, pipeline {pipeline}, \
         {machines}-machine fleet, seed {seed:#x} (fd limit {granted})"
    );

    let (ka, ka_clean) = run_against_live_harness(
        machines,
        seed,
        LoadConfig {
            connections,
            seconds,
            keep_alive: true,
            pipeline,
            mix: true,
        },
    );
    println!(
        "  keep-alive: {:.0} req/s ({} requests, p50 {:.0} us, p99 {:.0} us, \
         peak {} conns, 4xx {}, 5xx {}, io {})",
        ka.rps,
        ka.requests,
        ka.p50_us,
        ka.p99_us,
        ka.peak_open,
        ka.errors_4xx,
        ka.errors_5xx,
        ka.io_errors
    );

    // Connection-overhead microbenchmark: same fleet, pure /healthz, so
    // the two regimes differ only in connection handling.
    let (ka_hz, hz_clean) = run_against_live_harness(
        machines,
        seed,
        LoadConfig {
            connections,
            seconds,
            keep_alive: true,
            pipeline,
            mix: false,
        },
    );
    println!(
        "  keep-alive /healthz: {:.0} req/s (p50 {:.0} us, p99 {:.0} us, 5xx {})",
        ka_hz.rps, ka_hz.p50_us, ka_hz.p99_us, ka_hz.errors_5xx
    );
    let (close, close_clean) = run_against_live_harness(
        machines,
        seed,
        LoadConfig {
            connections,
            seconds,
            keep_alive: false,
            pipeline: 1,
            mix: false,
        },
    );
    println!(
        "  one-request-per-connection /healthz: {:.0} req/s ({} requests, p50 {:.0} us, 5xx {})",
        close.rps, close.requests, close.p50_us, close.errors_5xx
    );
    let speedup = ka_hz.rps / close.rps.max(1e-9);
    println!("  keep-alive speedup: {speedup:.1}x");

    // Publish cost: µs/tick at small and big fleets, delta vs full.
    let delta_small = measure_publish_cost(machines, 64, 80, seed);
    let full_small = measure_publish_cost(machines, 1, 16, seed);
    let delta_big = measure_publish_cost(big, 64, 80, seed);
    let full_big = measure_publish_cost(big, 1, 16, seed);
    println!(
        "  publish us/tick: {machines} machines delta {delta_small:.0} vs full {full_small:.0}; \
         {big} machines delta {delta_big:.0} vs full {full_big:.0}"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_bench\",\n  \"connections\": {connections},\n  \"seconds\": {seconds},\n  \"pipeline\": {pipeline},\n  \"machines\": {machines},\n  \"seed\": {seed},\n  \"keepalive_rps\": {:.0},\n  \"keepalive_requests\": {},\n  \"keepalive_p50_us\": {:.0},\n  \"keepalive_p99_us\": {:.0},\n  \"keepalive_peak_conns\": {},\n  \"keepalive_errors_4xx\": {},\n  \"keepalive_errors_5xx\": {},\n  \"keepalive_healthz_rps\": {:.0},\n  \"close_rps\": {:.0},\n  \"close_p50_us\": {:.0},\n  \"speedup\": {speedup:.1},\n  \"publish_delta_us_small\": {delta_small:.0},\n  \"publish_full_us_small\": {full_small:.0},\n  \"publish_machines_big\": {big},\n  \"publish_delta_us_big\": {delta_big:.0},\n  \"publish_full_us_big\": {full_big:.0}\n}}\n",
        ka.rps,
        ka.requests,
        ka.p50_us,
        ka.p99_us,
        ka.peak_open,
        ka.errors_4xx,
        ka.errors_5xx,
        ka_hz.rps,
        close.rps,
        close.p50_us,
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("  wrote {out_path}");

    // Hard gates.
    let mut failures: Vec<String> = Vec::new();
    if ka.errors_5xx != 0 || ka_hz.errors_5xx != 0 || close.errors_5xx != 0 {
        failures.push(format!(
            "5xx responses under load (keep-alive {}, healthz {}, close {})",
            ka.errors_5xx, ka_hz.errors_5xx, close.errors_5xx
        ));
    }
    if !ka_clean || !hz_clean || !close_clean {
        failures.push("handler panics recorded during load".to_string());
    }
    if ka.peak_open < connections {
        failures.push(format!(
            "only {} of {connections} clients were simultaneously connected",
            ka.peak_open
        ));
    }
    if speedup < min_speedup {
        failures.push(format!(
            "keep-alive speedup {speedup:.1}x below the {min_speedup:.0}x floor"
        ));
    }
    if delta_big * 2.0 > full_big {
        failures.push(format!(
            "delta publish at {big} machines ({delta_big:.0} us/tick) is not at least 2x \
             cheaper than full republish ({full_big:.0} us/tick)"
        ));
    }
    if let Some(base_path) = baseline {
        let base_text = std::fs::read_to_string(&base_path)
            .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
        let base = json_f64(&base_text, "keepalive_rps")
            .unwrap_or_else(|| panic!("baseline {base_path} has no keepalive_rps"));
        let floor = base * (1.0 - max_regress);
        println!(
            "  baseline {base:.0} req/s, floor {floor:.0} (max regress {:.0}%)",
            max_regress * 100.0
        );
        if ka.rps < floor {
            failures.push(format!(
                "keep-alive {:.0} req/s is below the {floor:.0} floor ({base:.0} - {:.0}%)",
                ka.rps,
                max_regress * 100.0
            ));
        }
    }

    if failures.is_empty() {
        println!("serve_bench OK");
    } else {
        for f in &failures {
            eprintln!("serve_bench FAIL: {f}");
        }
        std::process::exit(1);
    }
}
