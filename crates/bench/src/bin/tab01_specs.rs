//! Table 1: CPI specs of representative latency-sensitive jobs.
//!
//! The paper reports:
//!
//! ```text
//! Job A  0.88 ± 0.09   312 tasks
//! Job B  1.36 ± 0.26  1040 tasks
//! Job C  2.03 ± 0.20  1250 tasks
//! ```
//!
//! We build three jobs with matching microarchitectural characters through
//! the real aggregation pipeline and print their learned specs. Task counts
//! are scaled 1:4 to keep the simulation quick; the shape target is tight
//! σ/µ per job and clearly separated means.
//!
//! Run: `cargo run -p cpi2-bench --release --bin tab01_specs`

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, ResourceProfile, SimDuration};
use cpi2::workloads::LsService;
use cpi2_bench::plot;

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: 8,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), 120);

    // Three job characters chosen to land near the paper's specs.
    let jobs: [(&str, u32, ResourceProfile); 3] = [
        (
            "job-a",
            78,
            ResourceProfile {
                base_cpi: 0.88,
                cache_mb: 1.0,
                mpki_solo: 0.3,
                cache_sensitivity: 0.6,
                cpi_noise: 0.09,
            },
        ),
        (
            "job-b",
            260,
            ResourceProfile {
                base_cpi: 1.33,
                cache_mb: 4.0,
                mpki_solo: 1.5,
                cache_sensitivity: 1.0,
                cpi_noise: 0.17,
            },
        ),
        (
            "job-c",
            312,
            ResourceProfile {
                base_cpi: 2.0,
                cache_mb: 6.0,
                mpki_solo: 2.5,
                cache_sensitivity: 1.0,
                cpi_noise: 0.09,
            },
        ),
    ];
    for (name, tasks, profile) in jobs {
        cluster
            .submit_job(
                JobSpec::latency_sensitive(name, tasks, 0.8),
                true,
                Box::new(move |i| Box::new(LsService::new(profile, 0.8, 8, i as u64))),
            )
            .expect("placement");
    }

    let mut system = Cpi2Harness::new(cluster, Cpi2Config::default());
    system.run_for(SimDuration::from_hours(2));
    let specs = system.force_spec_refresh();

    let mut rows = Vec::new();
    let paper = [
        ("Job A", "0.88 ± 0.09", 312),
        ("Job B", "1.36 ± 0.26", 1040),
        ("Job C", "2.03 ± 0.20", 1250),
    ];
    for ((name, tasks, _), (pname, pspec, ptasks)) in jobs.iter().zip(paper.iter()) {
        let s = specs
            .iter()
            .find(|s| s.jobname == *name)
            .expect("spec built");
        rows.push(vec![
            pname.to_string(),
            format!("{:.2} ± {:.2}", s.cpi_mean, s.cpi_stddev),
            format!("{tasks} (paper: {ptasks})"),
            pspec.to_string(),
        ]);
    }
    plot::print_table(
        "Table 1: CPI specs of representative latency-sensitive jobs",
        &["job", "measured CPI", "tasks", "paper CPI"],
        &rows,
    );

    // Shape checks: ordered means, tight relative spread.
    let get = |n: &str| specs.iter().find(|s| s.jobname == n).unwrap();
    let (a, b, c) = (get("job-a"), get("job-b"), get("job-c"));
    assert!(a.cpi_mean < b.cpi_mean && b.cpi_mean < c.cpi_mean);
    for s in [a, b, c] {
        assert!(
            s.cpi_stddev / s.cpi_mean < 0.35,
            "σ/µ too wide for {}",
            s.jobname
        );
    }
    assert!(
        b.cpi_stddev / b.cpi_mean > a.cpi_stddev / a.cpi_mean,
        "job B is the noisy one in the paper"
    );
    println!("\ntab01 OK");
}
