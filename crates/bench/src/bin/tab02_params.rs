//! Table 2: CPI² parameters and their default values.
//!
//! Prints the live configuration defaults and checks them against the
//! paper's table verbatim.
//!
//! Run: `cargo run -p cpi2-bench --release --bin tab02_params`

use cpi2::core::Cpi2Config;
use cpi2_bench::plot;

fn main() {
    let config = Cpi2Config::default();
    let rows: Vec<Vec<String>> = config
        .table2_rows()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    plot::print_table(
        "Table 2: CPI2 parameters and default values",
        &["Parameter", "Value"],
        &rows,
    );

    // Verbatim checks against the paper.
    assert_eq!(config.sampling_duration_s, 10);
    assert_eq!(config.sampling_period_s, 60);
    assert_eq!(config.spec_refresh_hours, 24);
    assert_eq!(config.min_cpu_usage, 0.25);
    assert_eq!(config.outlier_sigma, 2.0);
    assert_eq!(config.violations_required, 3);
    assert_eq!(config.violation_window_s, 300);
    assert_eq!(config.correlation_threshold, 0.35);
    assert_eq!(config.cap_batch, 0.1);
    assert_eq!(config.cap_best_effort, 0.01);
    assert_eq!(config.cap_duration_s, 300);
    println!("\ntab02 OK (all defaults match the paper)");
}
