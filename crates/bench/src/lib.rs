//! Experiment harness for the CPI² reproduction.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; this
//! library provides the shared pieces:
//!
//! * [`plot`] — ASCII tables, scatter plots and CDFs for terminal output.
//! * [`trials`] — the §7 large-scale trial protocol with ground truth
//!   (used by the Fig. 14–16 experiments).
//!
//! Criterion micro-benchmarks (correlation cost, detection throughput,
//! aggregation, simulator tick rate, query scans) live in `benches/`.

#![warn(missing_docs)]

pub mod accuracy;
pub mod args;
pub mod metrics;
pub mod plot;
pub mod probe;
pub mod sampling;
pub mod scenario;
pub mod serve_load;
pub mod svg;
pub mod trials;
