//! Job-level metric collection from a running cluster.
//!
//! The motivation experiments (Figs. 2–5) plot application-level series —
//! transactions/sec, request latency — against counter-level series (IPS,
//! CPI). These helpers scrape both from the simulator each tick.

use cpi2::sim::{Cluster, SimDuration, TaskId, TickOutcome};

/// Aggregated job metrics for one tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobTick {
    /// Instruction-weighted mean CPI across the job's tasks.
    pub cpi: f64,
    /// Total instructions per second across tasks.
    pub ips: f64,
    /// Total application transactions per second (if the workload reports
    /// them).
    pub tps: f64,
    /// Mean request latency in ms (if the workload reports it).
    pub latency_ms: f64,
    /// Mean CPU usage per task, cores.
    pub cpu: f64,
    /// Tasks sampled.
    pub tasks: u32,
}

/// Scrapes one tick's aggregated metrics for a job.
///
/// Returns `None` if no task of the job has run yet.
pub fn job_tick(cluster: &Cluster, job_name: &str, dt: SimDuration) -> Option<JobTick> {
    let mut cycles = 0.0;
    let mut instr = 0.0;
    let mut tps = 0.0;
    let mut lat_sum = 0.0;
    let mut lat_n = 0u32;
    let mut cpu = 0.0;
    let mut n = 0u32;
    let dt_sec = dt.as_secs_f64();
    for m in cluster.machines() {
        for t in m.tasks() {
            if t.job_name != job_name {
                continue;
            }
            let Some(o) = t.last_outcome() else { continue };
            cycles += o.cpi * o.instructions;
            instr += o.instructions;
            cpu += o.cpu_granted;
            if let Some(x) = t.model().transactions(o, dt) {
                tps += x / dt_sec;
            }
            if let Some(l) = t.model().request_latency_ms(o) {
                lat_sum += l;
                lat_n += 1;
            }
            n += 1;
        }
    }
    if n == 0 || instr <= 0.0 {
        return None;
    }
    Some(JobTick {
        cpi: cycles / instr,
        ips: instr / dt_sec,
        tps,
        latency_ms: if lat_n > 0 {
            lat_sum / lat_n as f64
        } else {
            0.0
        },
        cpu: cpu / n as f64,
        tasks: n,
    })
}

/// One task's observation for per-task scatter figures (Fig. 4).
#[derive(Debug, Clone)]
pub struct TaskObservation {
    /// The task.
    pub task: TaskId,
    /// Platform name of its machine.
    pub platform: String,
    /// The tick outcome.
    pub outcome: TickOutcome,
    /// Request latency reported by the workload, if any.
    pub latency_ms: Option<f64>,
}

/// Scrapes every task of a job at the current tick.
pub fn per_task(cluster: &Cluster, job_name: &str) -> Vec<TaskObservation> {
    let mut out = Vec::new();
    for m in cluster.machines() {
        for t in m.tasks() {
            if t.job_name != job_name {
                continue;
            }
            let Some(o) = t.last_outcome() else { continue };
            out.push(TaskObservation {
                task: t.id,
                platform: m.platform.name.clone(),
                outcome: *o,
                latency_ms: t.model().request_latency_ms(o),
            });
        }
    }
    out
}

/// Normalizes a series to its minimum (the paper plots "normalized to the
/// minimum value observed in the collection period").
///
/// # Panics
///
/// Panics if the minimum is not positive.
pub fn normalize_to_min(xs: &[f64]) -> Vec<f64> {
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        min > 0.0,
        "normalize_to_min: min must be positive, got {min}"
    );
    xs.iter().map(|x| x / min).collect()
}

/// Buckets a per-tick series into fixed-size means (e.g. 10-minute means
/// over 2 hours).
pub fn bucket_means(xs: &[f64], bucket: usize) -> Vec<f64> {
    assert!(bucket > 0, "bucket size must be positive");
    xs.chunks(bucket)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform};
    use cpi2::workloads;

    #[test]
    fn job_tick_scrapes_running_job() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.add_machines(&Platform::westmere(), 2);
        c.submit_job(
            JobSpec::latency_sensitive("websearch-leaf", 4, 2.0),
            true,
            workloads::factory("websearch-leaf", 1),
        )
        .unwrap();
        assert!(job_tick(&c, "websearch-leaf", c.tick_len()).is_none());
        c.run_for(cpi2::sim::SimDuration::from_secs(5));
        let m = job_tick(&c, "websearch-leaf", c.tick_len()).unwrap();
        assert_eq!(m.tasks, 4);
        assert!(m.cpi > 0.5);
        assert!(m.ips > 0.0);
        assert!(m.tps > 0.0);
        assert!(m.latency_ms > 0.0);
        assert!(job_tick(&c, "nope", c.tick_len()).is_none());
        assert_eq!(per_task(&c, "websearch-leaf").len(), 4);
    }

    #[test]
    fn normalize_and_bucket() {
        assert_eq!(normalize_to_min(&[2.0, 4.0, 6.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(
            bucket_means(&[1.0, 3.0, 5.0, 7.0, 9.0], 2),
            vec![2.0, 6.0, 9.0]
        );
    }
}
