//! Terminal rendering of the paper's tables and figures.
//!
//! Every experiment binary prints its series/rows through these helpers so
//! the output can be compared side-by-side with the paper's artwork.
//! When the `CPI2_SVG_DIR` environment variable is set, every plot is
//! additionally written there as an SVG file (named from its title).

/// Prints a fixed-width table with a header row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Renders an x/y scatter as an ASCII plot.
pub fn scatter(title: &str, xlabel: &str, ylabel: &str, points: &[(f64, f64)]) {
    plot_impl(title, xlabel, ylabel, &[("", points)], 72, 20);
    maybe_svg(title, xlabel, ylabel, &[("", points)], false);
}

/// Renders multiple named series on one ASCII plot (distinct glyphs).
pub fn multi_series(title: &str, xlabel: &str, ylabel: &str, series: &[(&str, &[(f64, f64)])]) {
    let owned: Vec<(&str, &[(f64, f64)])> = series.to_vec();
    plot_impl(title, xlabel, ylabel, &owned, 72, 20);
    maybe_svg(title, xlabel, ylabel, series, false);
}

/// Writes the plot to `$CPI2_SVG_DIR/<slug>.svg` when that variable is set.
fn maybe_svg(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series: &[(&str, &[(f64, f64)])],
    lines: bool,
) {
    let Ok(dir) = std::env::var("CPI2_SVG_DIR") else {
        return;
    };
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let path = std::path::Path::new(&dir).join(format!("{slug}.svg"));
    if let Err(e) = crate::svg::save(&path, title, xlabel, ylabel, series, lines) {
        eprintln!("svg: could not write {}: {e}", path.display());
    }
}

const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

fn plot_impl(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) {
    println!("\n== {title} ==");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        println!("(no data)");
        return;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts.iter() {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    for (si, (name, _)) in series.iter().enumerate() {
        if !name.is_empty() {
            println!("  {} {}", GLYPHS[si % GLYPHS.len()], name);
        }
    }
    println!("{ymax:>10.3} +{}", "-".repeat(width));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == height / 2 {
            format!("{ylabel:>10}")
        } else {
            " ".repeat(10)
        };
        println!("{label} |{}", row.iter().collect::<String>());
    }
    println!("{ymin:>10.3} +{}", "-".repeat(width));
    println!(
        "{:>11}{:<w$}{:>8}",
        format!("{xmin:.3}"),
        format!("  [{xlabel}]"),
        format!("{xmax:.3}"),
        w = width - 8
    );
}

/// Prints a CDF as an ASCII plot from raw observations.
pub fn cdf(title: &str, xlabel: &str, values: &[f64], points: usize) {
    if values.is_empty() {
        println!("\n== {title} ==\n(no data)");
        return;
    }
    let e = cpi2_stats::Ecdf::new(values.to_vec());
    let series = e.series(points);
    plot_impl(title, xlabel, "CDF", &[("", &series)], 72, 16);
    maybe_svg(title, xlabel, "CDF", &[("", &series)], true);
}

/// Formats a float compactly for table cells.
pub fn f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn scatter_handles_degenerate_input() {
        scatter("deg", "x", "y", &[(1.0, 1.0)]);
        scatter("empty", "x", "y", &[]);
        scatter("nan", "x", "y", &[(f64::NAN, 1.0)]);
    }

    #[test]
    fn cdf_renders() {
        cdf("c", "v", &[1.0, 2.0, 3.0, 4.0], 10);
    }

    #[test]
    fn format_helper() {
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(0.1234), "0.123");
    }
}
