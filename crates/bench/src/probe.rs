//! The active-probing baseline CPI² rejected (§4.2).
//!
//! "An active scheme might rank-order a list of suspects based on
//! heuristics like CPU usage ... and temporarily throttle them back one by
//! one to see if the CPI of the victim task improves. Unfortunately, this
//! simple approach may disrupt many innocent tasks." This module
//! implements that scheme so the tradeoff can be measured: identification
//! accuracy vs CPU-time denied to innocents vs time to a verdict.

use cpi2::harness::Cpi2Harness;
use cpi2::sim::{MachineId, SimDuration, TaskId};
use cpi2_stats::summary::RunningStats;

/// Result of one active-probing identification.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// The suspect the probe blamed, if any improvement cleared the margin.
    pub identified: Option<TaskId>,
    /// Suspects probed before the verdict.
    pub probes: u32,
    /// CPU-time denied to *innocent* tasks by the probing itself, in
    /// CPU-seconds (throttled time of every probed task that was not the
    /// ground-truth antagonist).
    pub innocent_disruption_cpu_s: f64,
    /// Wall-clock time spent probing, seconds.
    pub elapsed_s: i64,
}

/// Configuration of the prober.
#[derive(Debug, Clone, Copy)]
pub struct ProbeConfig {
    /// Cap rate while probing a suspect.
    pub probe_rate: f64,
    /// Length of each probe, seconds.
    pub probe_secs: u32,
    /// Settle time before/after each probe, seconds.
    pub settle_secs: u32,
    /// Improvement margin: a suspect is blamed when victim CPI during the
    /// probe drops below `(1 − margin) ×` the pre-probe level.
    pub margin: f64,
    /// Maximum suspects probed.
    pub max_probes: u32,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            probe_rate: 0.1,
            probe_secs: 180,
            settle_secs: 60,
            margin: 0.1,
            max_probes: 8,
        }
    }
}

fn victim_cpi_over(system: &mut Cpi2Harness, machine: MachineId, victim: TaskId, secs: u32) -> f64 {
    let mut stats = RunningStats::new();
    for _ in 0..secs {
        system.step();
        if let Some(o) = system
            .cluster
            .machine(machine)
            .and_then(|m| m.task(victim))
            .and_then(|t| t.task().last_outcome())
        {
            stats.push(o.cpi);
        }
    }
    stats.mean()
}

fn throttled_us(system: &Cpi2Harness, machine: MachineId, task: TaskId) -> i64 {
    system
        .cluster
        .machine(machine)
        .and_then(|m| m.task(task))
        .map(|t| t.cgroup.throttled_us())
        .unwrap_or(0)
}

/// Runs the §4.2 active scheme against a degraded victim: rank co-tenants
/// by CPU usage and throttle them one by one until the victim improves.
///
/// `ground_truth` is only used for the disruption accounting (probing the
/// real antagonist is not "innocent" disruption).
pub fn active_identify(
    system: &mut Cpi2Harness,
    machine: MachineId,
    victim: TaskId,
    ground_truth: TaskId,
    config: &ProbeConfig,
) -> ProbeResult {
    let start = system.cluster.now();

    // Rank suspects by current CPU usage, highest first (the paper's
    // stated heuristic).
    let mut suspects: Vec<(TaskId, f64, bool)> = system
        .cluster
        .machine(machine)
        .map(|m| {
            m.tasks()
                .filter(|t| t.id != victim)
                .map(|t| {
                    (
                        t.id,
                        t.last_outcome().map(|o| o.cpu_granted).unwrap_or(0.0),
                        t.class.throttle_eligible(),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    suspects.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite usage"));

    let mut probes = 0;
    let mut innocent_us = 0i64;
    let mut identified = None;
    for (suspect, _, eligible) in suspects {
        if probes >= config.max_probes {
            break;
        }
        if !eligible {
            // Even the active scheme won't throttle latency-sensitive
            // tasks; but note it *considered* them.
            continue;
        }
        probes += 1;
        let before = victim_cpi_over(system, machine, victim, config.settle_secs);
        let throttled_before = throttled_us(system, machine, suspect);
        let until = system.cluster.now() + SimDuration::from_secs(config.probe_secs as i64 + 60);
        system
            .cluster
            .apply_hard_cap(suspect, config.probe_rate, until);
        let during = victim_cpi_over(system, machine, victim, config.probe_secs);
        system.cluster.remove_hard_cap(suspect);
        let denied_us = throttled_us(system, machine, suspect) - throttled_before;
        if suspect != ground_truth {
            innocent_us += denied_us.max(0);
        }
        if before > 0.0 && during < before * (1.0 - config.margin) {
            identified = Some(suspect);
            break;
        }
        // Settle before the next probe.
        victim_cpi_over(system, machine, victim, config.settle_secs);
    }
    ProbeResult {
        identified,
        probes,
        innocent_disruption_cpu_s: innocent_us as f64 / 1e6,
        elapsed_s: (system.cluster.now() - start).as_us() / 1_000_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2::core::Cpi2Config;
    use cpi2::sim::{Cluster, ClusterConfig, ConstantLoad, JobSpec, Platform, ResourceProfile};
    use cpi2::workloads::LsService;

    #[test]
    fn active_probe_finds_steady_antagonist_but_disrupts() {
        let mut cluster = Cluster::new(ClusterConfig {
            seed: 9,
            overcommit: 2.0,
            ..ClusterConfig::default()
        });
        cluster.add_machines(&Platform::westmere(), 1);
        let victim_job = cluster
            .submit_job(
                JobSpec::latency_sensitive("victim", 1, 1.2),
                true,
                Box::new(|_| Box::new(LsService::new(ResourceProfile::cache_heavy(), 1.2, 12, 5))),
            )
            .unwrap();
        // Three innocent batch tasks with real CPU appetites...
        cluster
            .submit_job(
                JobSpec::batch("innocent", 3, 1.0),
                true,
                Box::new(|i| {
                    let mut p = ResourceProfile::compute_bound();
                    p.cache_mb = 0.2;
                    Box::new(ConstantLoad::new(1.5 + i as f64 * 0.5, 4, p))
                }),
            )
            .unwrap();
        // ...and the true antagonist.
        let ant_job = cluster
            .submit_job(
                JobSpec::batch("antagonist", 1, 1.0),
                true,
                Box::new(|_| Box::new(ConstantLoad::new(5.0, 8, ResourceProfile::streaming()))),
            )
            .unwrap();
        let victim = TaskId {
            job: victim_job,
            index: 0,
        };
        let antagonist = TaskId {
            job: ant_job,
            index: 0,
        };
        let machine = cluster.locate(victim).unwrap();
        let mut system = Cpi2Harness::new(cluster, Cpi2Config::default());
        system.set_protection_enabled(false);
        system.run_for(SimDuration::from_mins(5));

        let result = active_identify(
            &mut system,
            machine,
            victim,
            antagonist,
            &ProbeConfig::default(),
        );
        assert_eq!(result.identified, Some(antagonist), "{result:?}");
        assert!(result.probes >= 1);
        // The defining cost: if innocents were probed first, real CPU was
        // denied to them.
        if result.probes > 1 {
            assert!(result.innocent_disruption_cpu_s > 10.0, "{result:?}");
        }
        assert!(result.elapsed_s >= config_min_elapsed(result.probes));
    }

    fn config_min_elapsed(probes: u32) -> i64 {
        let c = ProbeConfig::default();
        (probes as i64) * (c.probe_secs as i64 + c.settle_secs as i64)
    }
}
