//! Statistical fleet mode: two-phase stratified sampling with
//! finite-population-corrected confidence intervals (DESIGN.md §12).
//!
//! BENCH_5.json pins exhaustive simulation at ~1.5M machine-ticks/s —
//! three orders of magnitude short of a 10⁶-machine fleet. This module
//! gets fleet-level figures without exhaustive simulation: a
//! [`Stratifier`] partitions the fleet description by platform × load
//! band × tenancy, a two-phase allocator spends a machine budget (pilot
//! phase measures per-stratum variance, the second phase allocates the
//! remainder Neyman-style), and a [`FleetEstimator`] extrapolates
//! incident rates, throttle totals and CPI spec moments with
//! stratum-weighted means and 95% confidence intervals.
//!
//! The construction is only trustworthy because every machine of the
//! described fleet is an *independent cell*: machine `i`'s simulation is
//! a pure function of `(fleet seed, i)`, so simulating a sampled subset
//! reproduces exactly what the exhaustive run would have produced for
//! those machines. The estimator-coverage test suite exploits the same
//! property to validate the CIs against exhaustive ground truth.
//!
//! All randomness (stratum assignment, within-stratum sampling order,
//! per-cell workloads) derives from the fleet seed through [`SimRng`] —
//! nothing here reads clocks, environment entropy or hash-map iteration
//! order, so a `(model, budget, seed)` triple fully determines the
//! output.

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, JobSpec, Platform, SimDuration};
use cpi2::telemetry::Telemetry;
use cpi2::workloads::{self, TraceJob};
use cpi2_stats::rng::SimRng;
use cpi2_stats::special::norm_quantile;

/// Salt separating the stratum-assignment RNG stream from cell seeds.
const STRATUM_SALT: u64 = 0x57A7_1F1E_D000;
/// Salt separating the within-stratum sampling order from everything else.
const ORDER_SALT: u64 = 0x0DD_E4D0;
/// Salt for per-cell simulation seeds.
const CELL_SALT: u64 = 0xCE11_5EED;

/// Hardware platform class of a stratum (mirrors [`Platform`] catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlatformClass {
    /// 12-core Westmere, 12 MB L3.
    Westmere,
    /// 16-core Sandy Bridge, 20 MB L3.
    SandyBridge,
    /// 8-core small node, 8 MB L3.
    SmallNode,
}

impl PlatformClass {
    /// The concrete platform for cells of this class.
    pub fn platform(self) -> Platform {
        match self {
            PlatformClass::Westmere => Platform::westmere(),
            PlatformClass::SandyBridge => Platform::sandy_bridge(),
            PlatformClass::SmallNode => Platform::small_node(),
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PlatformClass::Westmere => "westmere",
            PlatformClass::SandyBridge => "sandybridge",
            PlatformClass::SmallNode => "smallnode",
        }
    }
}

/// Antagonist pressure band of a stratum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LoadBand {
    /// No transient antagonists.
    Light,
    /// One transient cache thrasher during the measured window.
    Medium,
    /// A cache thrasher plus a memory-bandwidth hog.
    Heavy,
}

impl LoadBand {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LoadBand::Light => "light",
            LoadBand::Medium => "medium",
            LoadBand::Heavy => "heavy",
        }
    }
}

/// Tenancy band of a stratum: how crowded the machine's serving load is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TenancyBand {
    /// One five-task serving job.
    Sparse,
    /// Two serving jobs, eleven tasks.
    Dense,
}

impl TenancyBand {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TenancyBand::Sparse => "sparse",
            TenancyBand::Dense => "dense",
        }
    }
}

/// One stratum's identity: the cross product cell the machine falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StratumKey {
    /// Hardware platform class.
    pub platform: PlatformClass,
    /// Antagonist pressure band.
    pub load: LoadBand,
    /// Serving-load tenancy band.
    pub tenancy: TenancyBand,
}

impl StratumKey {
    /// `platform/load/tenancy` label for reports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.platform.label(),
            self.load.label(),
            self.tenancy.label()
        )
    }

    /// Every possible key, in canonical (deterministic) order.
    pub fn all() -> Vec<StratumKey> {
        let mut keys = Vec::new();
        for platform in [
            PlatformClass::Westmere,
            PlatformClass::SandyBridge,
            PlatformClass::SmallNode,
        ] {
            for load in [LoadBand::Light, LoadBand::Medium, LoadBand::Heavy] {
                for tenancy in [TenancyBand::Sparse, TenancyBand::Dense] {
                    keys.push(StratumKey {
                        platform,
                        load,
                        tenancy,
                    });
                }
            }
        }
        keys
    }
}

/// Description of a fleet to sample: every machine index in
/// `0..machines` is an independent cell whose stratum and workload are a
/// pure function of `(seed, index)`.
#[derive(Debug, Clone)]
pub struct FleetModel {
    /// Fleet size (population `N`).
    pub machines: u32,
    /// Fleet seed: drives stratum assignment and every cell's workload.
    pub seed: u64,
    /// Spec warm-up per cell before the measured window.
    pub warmup: SimDuration,
    /// Measured window per cell (metrics are deltas over this window).
    pub measure: SimDuration,
}

impl FleetModel {
    /// A fleet of `machines` machines under `seed` with the default
    /// per-cell windows (1 h warm-up, 2 h measured).
    pub fn new(machines: u32, seed: u64) -> Self {
        FleetModel {
            machines,
            seed,
            warmup: SimDuration::from_hours(1),
            measure: SimDuration::from_hours(2),
        }
    }

    /// Simulated machine-ticks one cell costs (warm-up + measure).
    pub fn ticks_per_cell(&self) -> u64 {
        let tick = ClusterConfig::default().tick.as_secs_f64();
        (((self.warmup.as_secs_f64() + self.measure.as_secs_f64()) / tick).round()) as u64
    }
}

/// One stratum of the partition: its key and every member machine index.
#[derive(Debug, Clone)]
pub struct Stratum {
    /// Stratum identity.
    pub key: StratumKey,
    /// Member machine indices, ascending.
    pub members: Vec<u32>,
}

/// Partitions a fleet description into strata.
pub struct Stratifier;

impl Stratifier {
    /// The stratum machine `index` of the fleet falls in: a seeded
    /// weighted draw over platform (50/30/20), load band (40/40/20) and
    /// tenancy (60/40) — mirroring a mostly-healthy production mix.
    pub fn stratum_of(model: &FleetModel, index: u32) -> StratumKey {
        let mut rng = SimRng::derive(model.seed ^ STRATUM_SALT, u64::from(index));
        let platform = match rng.weighted_index(&[5.0, 3.0, 2.0]) {
            0 => PlatformClass::Westmere,
            1 => PlatformClass::SandyBridge,
            _ => PlatformClass::SmallNode,
        };
        let load = match rng.weighted_index(&[4.0, 4.0, 2.0]) {
            0 => LoadBand::Light,
            1 => LoadBand::Medium,
            _ => LoadBand::Heavy,
        };
        let tenancy = match rng.weighted_index(&[3.0, 2.0]) {
            0 => TenancyBand::Sparse,
            _ => TenancyBand::Dense,
        };
        StratumKey {
            platform,
            load,
            tenancy,
        }
    }

    /// Partitions `0..machines` into strata: disjoint, exhaustive, in
    /// canonical key order, members ascending. Empty strata are dropped.
    pub fn partition(model: &FleetModel) -> Vec<Stratum> {
        let keys = StratumKey::all();
        let mut members: Vec<Vec<u32>> = keys.iter().map(|_| Vec::new()).collect();
        for index in 0..model.machines {
            let key = Self::stratum_of(model, index);
            if let Some(pos) = keys.iter().position(|k| *k == key) {
                if let Some(bucket) = members.get_mut(pos) {
                    bucket.push(index);
                }
            }
        }
        keys.into_iter()
            .zip(members)
            .filter(|(_, m)| !m.is_empty())
            .map(|(key, members)| Stratum { key, members })
            .collect()
    }
}

/// Tuning of the two-phase allocator.
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Total machine budget (pilot + second phase), cells.
    pub budget: u32,
    /// Pilot cells per stratum (capped by stratum size and budget).
    pub pilot_per_stratum: u32,
}

impl SamplingConfig {
    /// A budget with the default pilot size (4 cells per stratum).
    pub fn with_budget(budget: u32) -> Self {
        SamplingConfig {
            budget,
            pilot_per_stratum: 4,
        }
    }
}

/// Phase-1 pilot sizes: round-robin one cell at a time across strata (in
/// order) until each stratum reaches `min(pilot_per_stratum, N_h)` or the
/// budget is exhausted. Never exceeds `budget`; degenerates gracefully
/// when `budget < #strata` (later strata get zero pilots).
pub fn plan_pilot(populations: &[u32], budget: u32, pilot_per_stratum: u32) -> Vec<u32> {
    let mut pilots = vec![0u32; populations.len()];
    let mut left = budget;
    let mut progressed = true;
    while left > 0 && progressed {
        progressed = false;
        for (pilot, &pop) in pilots.iter_mut().zip(populations.iter()) {
            if left == 0 {
                break;
            }
            if *pilot < pilot_per_stratum.min(pop) {
                *pilot += 1;
                left -= 1;
                progressed = true;
            }
        }
    }
    pilots
}

/// Phase-2 Neyman allocation: splits the remaining budget across strata
/// proportionally to `N_h · s_h` (population × pilot standard deviation),
/// falling back to plain proportional (`N_h`) when every pilot variance
/// is zero. Uses largest-remainder rounding, caps each stratum at its
/// population, and redistributes capped surplus round-robin. Returns the
/// *final* per-stratum sample sizes (pilot included); the total never
/// exceeds `budget`.
pub fn plan_final(populations: &[u32], pilots: &[u32], pilot_std: &[f64], budget: u32) -> Vec<u32> {
    let mut finals: Vec<u32> = pilots.to_vec();
    let used: u32 = pilots.iter().sum();
    let mut left = budget.saturating_sub(used);
    if left == 0 {
        return finals;
    }

    // NaN counts as zero spread, matching `s.max(0.0)` in the weights.
    let all_zero = pilot_std.iter().all(|&s| s.max(0.0) == 0.0);
    let weights: Vec<f64> = populations
        .iter()
        .zip(pilot_std.iter())
        .map(|(&n, &s)| {
            if all_zero {
                f64::from(n)
            } else {
                f64::from(n) * s.max(0.0)
            }
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();
    if total_weight > 0.0 {
        // Integer shares by largest remainder.
        let shares: Vec<f64> = weights
            .iter()
            .map(|w| f64::from(left) * w / total_weight)
            .collect();
        let mut granted = 0u32;
        for ((fin, &pop), &share) in finals.iter_mut().zip(populations.iter()).zip(shares.iter()) {
            let capacity = pop.saturating_sub(*fin);
            let base = (share.floor() as u32).min(capacity);
            *fin += base;
            granted += base;
        }
        left -= granted.min(left);
        // Remainder pass: biggest fractional part first (ties: stratum
        // order), one cell each, skipping full strata.
        let mut order: Vec<usize> = (0..shares.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = shares.get(a).map_or(0.0, |s| s - s.floor());
            let fb = shares.get(b).map_or(0.0, |s| s - s.floor());
            fb.partial_cmp(&fa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in &order {
            if left == 0 {
                break;
            }
            if let (Some(fin), Some(&pop)) = (finals.get_mut(i), populations.get(i)) {
                if *fin < pop {
                    *fin += 1;
                    left -= 1;
                }
            }
        }
    }
    // Capped surplus: round-robin over strata with remaining capacity.
    let mut progressed = true;
    while left > 0 && progressed {
        progressed = false;
        for (fin, &pop) in finals.iter_mut().zip(populations.iter()) {
            if left == 0 {
                break;
            }
            if *fin < pop {
                *fin += 1;
                left -= 1;
                progressed = true;
            }
        }
    }
    finals
}

/// Per-cell metrics over the measured window, as extrapolation targets.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellMetrics {
    /// CPI outlier incidents raised during the window.
    pub incidents: f64,
    /// Incidents whose top suspect was throttle-eligible with correlation
    /// ≥ 0.35 (the paper's identification criterion).
    pub identifications: f64,
    /// CFS-bandwidth throttle events during the window.
    pub throttles: f64,
    /// Hard caps applied during the window.
    pub caps: f64,
    /// Mean published spec CPI at the end of the window (0 if none).
    pub spec_cpi: f64,
}

/// Metric names, in the order [`CellMetrics::get`] indexes them.
pub const METRIC_NAMES: [&str; 5] = [
    "incidents",
    "identifications",
    "throttles",
    "caps",
    "spec_cpi",
];

impl CellMetrics {
    /// Metric by index (order of [`METRIC_NAMES`]).
    pub fn get(&self, metric: usize) -> f64 {
        match metric {
            0 => self.incidents,
            1 => self.identifications,
            2 => self.throttles,
            3 => self.caps,
            _ => self.spec_cpi,
        }
    }
}

/// Simulates one cell: a single-machine cluster plus the full CPI²
/// harness, deterministic in `(model.seed, index)`. The workload follows
/// the cell's stratum: serving jobs per the tenancy band, transient
/// antagonists per the load band arriving *after* the spec warm-up, so
/// specs learn a clean baseline exactly as the paper's 24-hour refresh
/// does.
pub fn simulate_cell(model: &FleetModel, index: u32) -> CellMetrics {
    let key = Stratifier::stratum_of(model, index);
    let mut cell_rng = SimRng::derive(model.seed ^ CELL_SALT, u64::from(index));
    let cell_seed = cell_rng.next_u64();

    let mut cluster = Cluster::new(ClusterConfig {
        seed: cell_seed,
        overcommit: 2.0,
        parallelism: 1,
        telemetry: Telemetry::disabled(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&key.platform.platform(), 1);

    // Serving load per tenancy band. Every job has ≥ 5 tasks so its spec
    // clears the aggregation pipeline's min-task floor on this one
    // machine.
    cluster
        .submit_job(
            JobSpec::latency_sensitive("bigtable-tablet", 5, 0.6),
            true,
            workloads::factory("bigtable-tablet", cell_seed ^ 0xB16),
        )
        .expect("cell serving placement");
    if key.tenancy == TenancyBand::Dense {
        cluster
            .submit_job(
                JobSpec::latency_sensitive("image-frontend", 6, 0.5),
                true,
                workloads::factory("image-frontend", cell_seed ^ 0x1F0),
            )
            .expect("cell dense placement");
    }

    // Transient antagonists per load band, arriving a seeded offset into
    // the measured window (never during warm-up).
    let warmup_s = model.warmup.as_secs_f64() as i64;
    let measure_s = model.measure.as_secs_f64() as i64;
    let mut trace = Vec::new();
    let arrivals: &[&str] = match key.load {
        LoadBand::Light => &[],
        LoadBand::Medium => &["cache-thrasher"],
        LoadBand::Heavy => &["cache-thrasher", "membw-hog"],
    };
    for (i, name) in arrivals.iter().enumerate() {
        let offset = cell_rng.range_u64(60, (measure_s / 4).max(61) as u64) as i64;
        trace.push(TraceJob {
            at_s: warmup_s + offset,
            name: (*name).into(),
            class: "best-effort".into(),
            tasks: 1,
            cpu: 1.0,
            seed: cell_seed ^ (0xA17 + i as u64),
            duration_s: Some((measure_s / 2).max(600)),
        });
    }
    workloads::schedule_trace(&mut cluster, &trace);

    let mut system = Cpi2Harness::new(
        cluster,
        Cpi2Config {
            min_samples_per_task: 5,
            ..Cpi2Config::default()
        },
    );

    // Warm up specs on the clean machine, then publish and measure.
    system.run_for(model.warmup);
    system.force_spec_refresh();
    let caps_before = system.caps_applied();
    let throttles_before: u64 = system
        .cluster
        .machines()
        .iter()
        .map(|m| m.throttle_events())
        .sum();
    system.run_for(model.measure);

    let measure_start_us = model.warmup.as_us();
    let mut incidents = 0u32;
    let mut identifications = 0u32;
    for mi in system.incidents() {
        if mi.incident.at < measure_start_us {
            continue;
        }
        incidents += 1;
        if mi
            .incident
            .top_suspect()
            .is_some_and(|s| s.class.throttle_eligible() && s.correlation >= 0.35)
        {
            identifications += 1;
        }
    }
    let throttles_after: u64 = system
        .cluster
        .machines()
        .iter()
        .map(|m| m.throttle_events())
        .sum();
    let specs = system.spec_store.changed_since(0);
    let spec_cpi = if specs.is_empty() {
        0.0
    } else {
        specs.iter().map(|s| s.cpi_mean).sum::<f64>() / specs.len() as f64
    };

    CellMetrics {
        incidents: f64::from(incidents),
        identifications: f64::from(identifications),
        throttles: (throttles_after - throttles_before) as f64,
        caps: (system.caps_applied() - caps_before) as f64,
        spec_cpi,
    }
}

/// One metric's fleet-level estimate with a finite-population-corrected
/// 95% confidence interval.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Stratum-weighted per-machine mean `ȳ_st = Σ W_h ȳ_h`.
    pub mean: f64,
    /// Standard error of the mean, `√(Σ W_h² (1 − n_h/N_h) s_h²/n_h)`.
    pub se: f64,
    /// Fleet total `N · ȳ_st`.
    pub total: f64,
    /// Lower bound of the 95% CI on the fleet total.
    pub total_lo: f64,
    /// Upper bound of the 95% CI on the fleet total.
    pub total_hi: f64,
}

impl Estimate {
    /// Width of the 95% CI on the fleet total.
    pub fn total_width(&self) -> f64 {
        self.total_hi - self.total_lo
    }

    /// Whether `truth` lies inside the 95% CI on the fleet total.
    pub fn covers(&self, truth: f64) -> bool {
        truth >= self.total_lo && truth <= self.total_hi
    }
}

/// Per-stratum samples of one fleet: population plus the measured cells.
#[derive(Debug, Clone)]
pub struct StratumSamples {
    /// Stratum identity.
    pub key: StratumKey,
    /// Stratum population `N_h`.
    pub population: u32,
    /// Measured cells (pilot + second phase).
    pub samples: Vec<CellMetrics>,
}

/// Extrapolates fleet-level figures from per-stratum samples.
#[derive(Debug, Clone)]
pub struct FleetEstimator {
    /// Fleet population `N`.
    pub population: u32,
    /// Per-stratum samples.
    pub strata: Vec<StratumSamples>,
}

impl FleetEstimator {
    /// Estimate for metric `metric` (index into [`METRIC_NAMES`]).
    ///
    /// Classical stratified estimator: mean `Σ W_h ȳ_h` with variance
    /// `Σ W_h² (1 − n_h/N_h) s_h²/n_h` (finite population correction per
    /// stratum). Degenerate strata contribute no variance: a census
    /// stratum (`n_h = N_h`) has zero FPC, a single-sample or unsampled
    /// stratum has no measurable variance (documented limitation — its
    /// uncertainty is understated, which the coverage suite bounds).
    pub fn estimate(&self, metric: usize) -> Estimate {
        let n_total = f64::from(self.population.max(1));
        let mut mean = 0.0f64;
        let mut variance = 0.0f64;
        for stratum in &self.strata {
            let n_h = f64::from(stratum.population);
            let w_h = n_h / n_total;
            let sampled = stratum.samples.len();
            if sampled == 0 {
                continue;
            }
            let m = sampled as f64;
            let ybar: f64 = stratum.samples.iter().map(|c| c.get(metric)).sum::<f64>() / m;
            mean += w_h * ybar;
            if sampled >= 2 {
                let s2: f64 = stratum
                    .samples
                    .iter()
                    .map(|c| {
                        let d = c.get(metric) - ybar;
                        d * d
                    })
                    .sum::<f64>()
                    / (m - 1.0);
                let fpc = (1.0 - m / n_h).max(0.0);
                variance += w_h * w_h * fpc * s2 / m;
            }
        }
        let se = variance.max(0.0).sqrt();
        let z = norm_quantile(0.975);
        let total = n_total * mean;
        Estimate {
            mean,
            se,
            total,
            total_lo: n_total * (mean - z * se),
            total_hi: n_total * (mean + z * se),
        }
    }

    /// Estimates for every metric, in [`METRIC_NAMES`] order.
    pub fn all_estimates(&self) -> Vec<Estimate> {
        (0..METRIC_NAMES.len()).map(|m| self.estimate(m)).collect()
    }

    /// Cells actually simulated (Σ n_h).
    pub fn cells_sampled(&self) -> u32 {
        self.strata.iter().map(|s| s.samples.len() as u32).sum()
    }
}

/// One stratum's allocation in a sampled run, for reports.
#[derive(Debug, Clone)]
pub struct PlannedStratum {
    /// Stratum identity.
    pub key: StratumKey,
    /// Stratum population `N_h`.
    pub population: u32,
    /// Pilot cells measured in phase 1.
    pub pilot: u32,
    /// Final cells measured (pilot included).
    pub sampled: u32,
}

/// Result of a sampled fleet run: the allocation and the estimator.
#[derive(Debug, Clone)]
pub struct SampledFleet {
    /// Per-stratum allocation.
    pub plan: Vec<PlannedStratum>,
    /// The loaded estimator (call [`FleetEstimator::estimate`]).
    pub estimator: FleetEstimator,
}

/// Runs the two-phase sampled fleet: partition, pilot, Neyman second
/// phase, estimator. `metrics` maps a machine index to its cell metrics —
/// production callers pass [`simulate_cell`]; tests inject a cache so
/// exhaustive and sampled runs share one simulation per machine (valid
/// because cells are independent and per-index deterministic).
///
/// The pilot's incident counts drive the Neyman weights (`N_h · s_h`).
/// Within each stratum the sampled members are a seeded-shuffle prefix,
/// so the pilot is a subset of the final sample and no cell is simulated
/// twice.
pub fn run_sampled(
    model: &FleetModel,
    cfg: &SamplingConfig,
    metrics: &mut dyn FnMut(u32) -> CellMetrics,
) -> SampledFleet {
    let strata = Stratifier::partition(model);
    // Deterministic within-stratum order: one seeded shuffle per stratum.
    let shuffled: Vec<Vec<u32>> = strata
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut members = s.members.clone();
            SimRng::derive(model.seed ^ ORDER_SALT, i as u64).shuffle(&mut members);
            members
        })
        .collect();
    let populations: Vec<u32> = strata.iter().map(|s| s.members.len() as u32).collect();

    // Phase 1: pilots.
    let pilots = plan_pilot(&populations, cfg.budget, cfg.pilot_per_stratum);
    let mut samples: Vec<Vec<CellMetrics>> = shuffled
        .iter()
        .zip(pilots.iter())
        .map(|(members, &pilot)| {
            members
                .iter()
                .take(pilot as usize)
                .map(|&idx| metrics(idx))
                .collect()
        })
        .collect();

    // Pilot incident std per stratum → Neyman weights for phase 2.
    let pilot_std: Vec<f64> = samples
        .iter()
        .map(|cells| {
            if cells.len() < 2 {
                return 0.0;
            }
            let m = cells.len() as f64;
            let mean = cells.iter().map(|c| c.incidents).sum::<f64>() / m;
            let s2 = cells
                .iter()
                .map(|c| {
                    let d = c.incidents - mean;
                    d * d
                })
                .sum::<f64>()
                / (m - 1.0);
            s2.sqrt()
        })
        .collect();

    // Phase 2: extend each stratum's shuffled prefix to its final size.
    let finals = plan_final(&populations, &pilots, &pilot_std, cfg.budget);
    for ((cells, members), &fin) in samples.iter_mut().zip(shuffled.iter()).zip(finals.iter()) {
        for &idx in members.iter().take(fin as usize).skip(cells.len()) {
            cells.push(metrics(idx));
        }
    }

    let plan: Vec<PlannedStratum> = strata
        .iter()
        .zip(populations.iter())
        .zip(pilots.iter().zip(finals.iter()))
        .map(|((s, &population), (&pilot, &sampled))| PlannedStratum {
            key: s.key,
            population,
            pilot,
            sampled,
        })
        .collect();
    let estimator = FleetEstimator {
        population: model.machines,
        strata: strata
            .iter()
            .zip(samples)
            .map(|(s, samples)| StratumSamples {
                key: s.key,
                population: s.members.len() as u32,
                samples,
            })
            .collect(),
    };
    SampledFleet { plan, estimator }
}

/// Exhaustive ground truth: every cell simulated, metrics summed (means
/// for `spec_cpi`). The estimator-coverage suite compares sampled CIs
/// against these totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetTotals {
    /// Total incidents across the fleet's measured windows.
    pub incidents: f64,
    /// Total paper-criterion identifications.
    pub identifications: f64,
    /// Total CFS throttle events.
    pub throttles: f64,
    /// Total hard caps applied.
    pub caps: f64,
    /// Fleet mean of per-cell spec CPI.
    pub spec_cpi_mean: f64,
}

impl FleetTotals {
    /// Ground-truth fleet figure for metric `metric` on the same scale as
    /// [`Estimate::total`] (totals for counts, `N ×` mean for `spec_cpi`).
    pub fn for_metric(&self, metric: usize, machines: u32) -> f64 {
        match metric {
            0 => self.incidents,
            1 => self.identifications,
            2 => self.throttles,
            3 => self.caps,
            _ => self.spec_cpi_mean * f64::from(machines),
        }
    }
}

/// Sums every cell of the fleet through `metrics` (the exhaustive run).
pub fn exhaustive_totals(
    model: &FleetModel,
    metrics: &mut dyn FnMut(u32) -> CellMetrics,
) -> FleetTotals {
    let mut totals = FleetTotals::default();
    for index in 0..model.machines {
        let c = metrics(index);
        totals.incidents += c.incidents;
        totals.identifications += c.identifications;
        totals.throttles += c.throttles;
        totals.caps += c.caps;
        totals.spec_cpi_mean += c.spec_cpi;
    }
    if model.machines > 0 {
        totals.spec_cpi_mean /= f64::from(model.machines);
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratum_assignment_is_deterministic() {
        let model = FleetModel::new(64, 7);
        for index in 0..64 {
            assert_eq!(
                Stratifier::stratum_of(&model, index),
                Stratifier::stratum_of(&model, index)
            );
        }
    }

    #[test]
    fn pilot_never_exceeds_budget() {
        let pilots = plan_pilot(&[10, 10, 10], 5, 4);
        assert_eq!(pilots.iter().sum::<u32>(), 5);
        let pilots = plan_pilot(&[2, 10], 100, 4);
        assert_eq!(pilots, vec![2, 4]);
    }

    #[test]
    fn final_allocation_respects_budget_and_population() {
        let populations = [100u32, 50, 10];
        let pilots = plan_pilot(&populations, 40, 4);
        let finals = plan_final(&populations, &pilots, &[2.0, 1.0, 0.0], 40);
        assert!(finals.iter().sum::<u32>() <= 40);
        for (f, p) in finals.iter().zip(populations.iter()) {
            assert!(f <= p);
        }
        // Zero-variance stratum keeps only its pilot.
        assert_eq!(finals[2], pilots[2]);
    }

    #[test]
    fn estimator_census_has_zero_width() {
        // Sampling every member of every stratum leaves no sampling
        // uncertainty: FPC zeroes the variance.
        let samples: Vec<CellMetrics> = (0..4)
            .map(|i| CellMetrics {
                incidents: f64::from(i),
                ..CellMetrics::default()
            })
            .collect();
        let est = FleetEstimator {
            population: 4,
            strata: vec![StratumSamples {
                key: StratumKey {
                    platform: PlatformClass::Westmere,
                    load: LoadBand::Light,
                    tenancy: TenancyBand::Sparse,
                },
                population: 4,
                samples,
            }],
        }
        .estimate(0);
        assert!((est.total - 6.0).abs() < 1e-9);
        assert!(est.total_width() < 1e-9);
    }
}
