//! Case-study scenario construction (§6's testbed machines).
//!
//! Each case study needs the same skeleton: a victim job with a learned
//! spec, a crowd of co-tenants (the paper's machines hosted 28–57), one
//! antagonist co-resident with a victim task, and a timeline recording of
//! victim CPI / antagonist CPU / thread count around the intervention.

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{
    Cluster, ClusterConfig, JobSpec, MachineId, ModelFactory, Platform, ResourceProfile,
    SimDuration, TaskId,
};
use cpi2::workloads::LsService;

/// Parameters of a case-study scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Master seed.
    pub seed: u64,
    /// Machines in the mini-cluster.
    pub machines: u32,
    /// Victim-job task count (≥5 for spec eligibility).
    pub victim_tasks: u32,
    /// Small co-tenant tasks across the cluster (drives per-machine
    /// tenancy toward the paper's 28–57).
    pub tenants: u32,
    /// Spec warm-up length before the antagonist arrives.
    pub warmup: SimDuration,
    /// Whether the agents may cap automatically.
    pub auto_throttle: bool,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            seed: 1,
            machines: 6,
            victim_tasks: 6,
            tenants: 120,
            warmup: SimDuration::from_mins(30),
            auto_throttle: false,
        }
    }
}

/// A built scenario: the running system plus the principal actors.
pub struct CaseScenario {
    /// The assembled CPI² system.
    pub system: Cpi2Harness,
    /// The machine where victim and antagonist collide.
    pub machine: MachineId,
    /// The victim task on that machine.
    pub victim: TaskId,
    /// The antagonist task on that machine.
    pub antagonist: TaskId,
}

/// Builds a scenario: victim job + tenants, warm-up, spec refresh, then
/// the antagonist submitted and located. Returns `None` if the scheduler's
/// placement left no victim task next to the antagonist (retry with
/// another seed).
pub fn build_case(
    spec: &ScenarioSpec,
    antagonist: JobSpec,
    antagonist_restart: bool,
    antagonist_factory: ModelFactory,
) -> Option<CaseScenario> {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: spec.seed,
        overcommit: 2.0,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), spec.machines);
    let seed = spec.seed;
    let victim_job = cluster
        .submit_job(
            JobSpec::latency_sensitive("victim-service", spec.victim_tasks, 1.2),
            true,
            Box::new(move |i| {
                Box::new(LsService::new(
                    ResourceProfile::cache_heavy(),
                    1.2,
                    12,
                    seed ^ (i as u64) << 9,
                ))
            }),
        )
        .ok()?;
    if spec.tenants > 0 {
        cluster
            .submit_job(
                JobSpec::latency_sensitive("tenant", spec.tenants, 0.1),
                true,
                Box::new(move |i| {
                    let mut p = ResourceProfile::compute_bound();
                    p.cache_mb = 0.3;
                    p.cache_sensitivity = 0.1;
                    Box::new(LsService::new(p, 0.1, 6, seed ^ 0x7E ^ i as u64))
                }),
            )
            .ok();
    }

    let config = Cpi2Config {
        min_samples_per_task: 5,
        auto_throttle: spec.auto_throttle,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, config);
    system.run_for(spec.warmup);
    let specs = system.force_spec_refresh();
    specs.iter().find(|s| s.jobname == "victim-service")?;

    let ant_job = system
        .cluster
        .submit_job(antagonist, antagonist_restart, antagonist_factory)
        .ok()?;
    let ant_task = TaskId {
        job: ant_job,
        index: 0,
    };
    let machine = system.cluster.locate(ant_task)?;
    let victim = system
        .cluster
        .machine(machine)?
        .tasks()
        .find(|t| t.id.job == victim_job)
        .map(|t| t.id)?;
    Some(CaseScenario {
        system,
        machine,
        victim,
        antagonist: ant_task,
    })
}

/// A per-bucket timeline of the principals.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    /// Bucket midpoints in minutes from recording start.
    pub minutes: Vec<f64>,
    /// Victim CPI per bucket.
    pub victim_cpi: Vec<f64>,
    /// Antagonist CPU usage (cores) per bucket.
    pub ant_cpu: Vec<f64>,
    /// Antagonist thread count per bucket.
    pub ant_threads: Vec<f64>,
}

impl Timeline {
    /// `(minute, victim_cpi)` series for plotting.
    pub fn victim_series(&self) -> Vec<(f64, f64)> {
        self.minutes
            .iter()
            .copied()
            .zip(self.victim_cpi.iter().copied())
            .collect()
    }

    /// `(minute, antagonist_cpu)` series for plotting.
    pub fn ant_series(&self) -> Vec<(f64, f64)> {
        self.minutes
            .iter()
            .copied()
            .zip(self.ant_cpu.iter().copied())
            .collect()
    }

    /// `(minute, antagonist_threads)` series for plotting.
    pub fn thread_series(&self) -> Vec<(f64, f64)> {
        self.minutes
            .iter()
            .copied()
            .zip(self.ant_threads.iter().copied())
            .collect()
    }

    /// Mean victim CPI over a minute range `[from, to)`.
    pub fn victim_mean(&self, from: f64, to: f64) -> f64 {
        let vals: Vec<f64> = self
            .minutes
            .iter()
            .zip(&self.victim_cpi)
            .filter(|(&m, _)| m >= from && m < to)
            .map(|(_, &v)| v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// Steps the system for `secs` seconds, appending `bucket_secs`-wide means
/// to `timeline`. `start_min` anchors the minute axis.
pub fn record(
    scenario: &mut CaseScenario,
    timeline: &mut Timeline,
    start_min: f64,
    secs: u32,
    bucket_secs: u32,
) {
    let mut acc_cpi = 0.0;
    let mut acc_cpu = 0.0;
    let mut acc_thr = 0.0;
    let mut n = 0u32;
    let mut n_victim = 0u32;
    for s in 0..secs {
        scenario.system.step();
        let m = scenario.system.cluster.machine(scenario.machine);
        if let Some(m) = m {
            if let Some(t) = m.task(scenario.victim) {
                if let Some(o) = t.last_outcome() {
                    acc_cpi += o.cpi;
                    n_victim += 1;
                }
            }
            if let Some(a) = m.task(scenario.antagonist) {
                if let Some(o) = a.last_outcome() {
                    acc_cpu += o.cpu_granted;
                }
                acc_thr += a.threads() as f64;
            }
        }
        n += 1;
        if (s + 1) % bucket_secs == 0 {
            timeline.minutes.push(start_min + (s + 1) as f64 / 60.0);
            timeline.victim_cpi.push(if n_victim > 0 {
                acc_cpi / n_victim as f64
            } else {
                0.0
            });
            timeline.ant_cpu.push(acc_cpu / n as f64);
            timeline.ant_threads.push(acc_thr / n as f64);
            acc_cpi = 0.0;
            acc_cpu = 0.0;
            acc_thr = 0.0;
            n = 0;
            n_victim = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2::sim::ConstantLoad;

    #[test]
    fn build_and_record() {
        let scenario = build_case(
            &ScenarioSpec {
                tenants: 20,
                warmup: SimDuration::from_mins(26),
                ..Default::default()
            },
            JobSpec::best_effort("ant", 1, 1.0),
            true,
            Box::new(|_| Box::new(ConstantLoad::new(6.0, 8, ResourceProfile::streaming()))),
        );
        let mut sc = scenario.expect("scenario builds");
        let mut tl = Timeline::default();
        record(&mut sc, &mut tl, 0.0, 120, 30);
        assert_eq!(tl.minutes.len(), 4);
        assert!(tl.victim_cpi.iter().all(|&c| c > 0.0));
        assert!(tl.ant_cpu.iter().any(|&c| c > 1.0));
        assert!(tl.victim_mean(0.0, 2.0) > 0.0);
    }
}
