//! Poll-multiplexed HTTP load generator for the `cpi2-serve` control
//! plane.
//!
//! One thread drives N concurrent clients over non-blocking sockets
//! using the serve crate's own [`PollSet`](cpi2_serve::poll::PollSet)
//! and client-side response scanner
//! ([`scan_response`](cpi2_serve::http::scan_response)) — the load
//! generator exercises the server with the exact wire grammar the
//! server itself speaks, and a single generator thread leaves the CPU
//! to the shards it is measuring.
//!
//! Two regimes, selected by [`LoadConfig::keep_alive`]:
//!
//! * **keep-alive** — every client holds one persistent connection and
//!   keeps up to [`LoadConfig::pipeline`] requests in flight on it
//!   (responses are answered in order, so latency is measured
//!   per-response against its own send time). A server-initiated close
//!   (`max_requests_per_conn`) is handled by reconnecting.
//! * **one-request-per-connection** — the pre-event-loop regime: each
//!   request opens a fresh connection, sends `Connection: close`, reads
//!   one response, reconnects. This is the baseline the ≥10× speedup
//!   gate compares against.
//!
//! The request mix per 16 requests: 12 × `GET /healthz`, 2 × scrape
//! (`GET /metrics`), 1 × streamed `GET /incidents`, 1 × `POST /query`.
//!
//! This module also measures the *tick-thread publish cost* of
//! [`ServeHarness`](cpi2_serve::ServeHarness) (µs per tick spent
//! building/publishing snapshots) under full-every-tick vs delta
//! publishing — the second half of the `serve_bench` gate.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, Platform};
use cpi2::workloads;
use cpi2_serve::http::{scan_response, ScannedResponse};
use cpi2_serve::poll::{PollSet, IN, OUT};
use cpi2_serve::ServeHarness;

/// Poll granularity of the generator loop.
const POLL_TICK_MS: i32 = 5;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Wall-clock duration of the measurement.
    pub seconds: f64,
    /// Persistent connections (false = one request per connection).
    pub keep_alive: bool,
    /// Max requests in flight per keep-alive connection (clamped ≥ 1;
    /// ignored when `keep_alive` is false).
    pub pipeline: usize,
    /// Use the mixed request schedule (false = pure `GET /healthz`, the
    /// connection-overhead microbenchmark the speedup gate compares).
    pub mix: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 512,
            seconds: 3.0,
            keep_alive: true,
            pipeline: 8,
            mix: true,
        }
    }
}

/// What the generator observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Completed responses inside the measurement window.
    pub requests: u64,
    /// Wall seconds the window actually spanned.
    pub wall_s: f64,
    /// `requests / wall_s`.
    pub rps: f64,
    /// Median response latency, µs (send-enqueued → response complete).
    pub p50_us: f64,
    /// 99th-percentile response latency, µs.
    pub p99_us: f64,
    /// Responses with a 4xx status.
    pub errors_4xx: u64,
    /// Responses with a 5xx status (the gate requires zero).
    pub errors_5xx: u64,
    /// Connect/read/write failures and malformed responses.
    pub io_errors: u64,
    /// Most clients simultaneously connected at any poll pass.
    pub peak_open: usize,
}

struct Client {
    stream: Option<TcpStream>,
    out: Vec<u8>,
    out_pos: usize,
    inb: Vec<u8>,
    /// Send timestamps of in-flight requests, oldest first (responses
    /// arrive strictly in order).
    inflight: VecDeque<Instant>,
    /// Rotates the request mix.
    seq: usize,
}

impl Client {
    fn new(seq0: usize) -> Client {
        Client {
            stream: None,
            out: Vec::new(),
            out_pos: 0,
            inb: Vec::new(),
            inflight: VecDeque::new(),
            seq: seq0,
        }
    }

    /// Drops the connection and all in-flight bookkeeping.
    fn disconnect(&mut self) {
        self.stream = None;
        self.out.clear();
        self.out_pos = 0;
        self.inb.clear();
        self.inflight.clear();
    }
}

/// The mixed request schedule: 12/16 health checks, 2/16 scrapes, 1/16
/// streamed incident reads, 1/16 queries.
fn request_bytes(seq: usize, keep_alive: bool, mix: bool) -> Vec<u8> {
    let conn = if keep_alive {
        ""
    } else {
        "Connection: close\r\n"
    };
    match if mix { seq % 16 } else { 0 } {
        12 | 13 => format!("GET /metrics HTTP/1.1\r\nHost: b\r\n{conn}\r\n").into_bytes(),
        14 => format!("GET /incidents HTTP/1.1\r\nHost: b\r\n{conn}\r\n").into_bytes(),
        15 => {
            let sql = "SELECT count(*) FROM samples";
            format!(
                "POST /query HTTP/1.1\r\nHost: b\r\n{conn}Content-Length: {}\r\n\r\n{sql}",
                sql.len()
            )
            .into_bytes()
        }
        _ => format!("GET /healthz HTTP/1.1\r\nHost: b\r\n{conn}\r\n").into_bytes(),
    }
}

/// Drives `cfg.connections` clients against `addr` for `cfg.seconds`.
/// Single-threaded; returns when the window closes (in-flight requests
/// at the deadline are not counted).
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let depth = if cfg.keep_alive {
        cfg.pipeline.max(1)
    } else {
        1
    };
    let mut clients: Vec<Client> = (0..cfg.connections.max(1)).map(Client::new).collect();
    let mut poll = PollSet::new();
    let mut lat_us: Vec<f64> = Vec::new();
    let mut report = LoadReport::default();

    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(cfg.seconds.max(0.1));

    while Instant::now() < deadline {
        // (Re)connect and (re)fill outgoing buffers.
        let mut open = 0usize;
        for c in &mut clients {
            if c.stream.is_none() {
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        if s.set_nonblocking(true).is_err() {
                            report.io_errors += 1;
                            continue;
                        }
                        c.stream = Some(s);
                    }
                    Err(_) => {
                        report.io_errors += 1;
                        continue;
                    }
                }
            }
            open += 1;
            while c.inflight.len() < depth {
                c.out
                    .extend_from_slice(&request_bytes(c.seq, cfg.keep_alive, cfg.mix));
                c.seq += 1;
                c.inflight.push_back(Instant::now());
                if !cfg.keep_alive {
                    break;
                }
            }
        }
        report.peak_open = report.peak_open.max(open);

        poll.clear();
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(clients.len());
        for c in &clients {
            match &c.stream {
                Some(s) => {
                    use std::os::unix::io::AsRawFd;
                    let mut ev = IN;
                    if c.out_pos < c.out.len() {
                        ev |= OUT;
                    }
                    slots.push(Some(poll.push(s.as_raw_fd(), ev)));
                }
                None => slots.push(None),
            }
        }
        let _ = poll.wait(POLL_TICK_MS);
        let now = Instant::now();

        for (c, slot) in clients.iter_mut().zip(&slots) {
            let Some(slot) = *slot else { continue };
            if poll.writable(slot) && c.out_pos < c.out.len() {
                let s = c.stream.as_mut().expect("slot implies stream");
                match s.write(&c.out[c.out_pos..]) {
                    Ok(0) => {
                        report.io_errors += 1;
                        c.disconnect();
                        continue;
                    }
                    Ok(n) => {
                        c.out_pos += n;
                        if c.out_pos == c.out.len() {
                            c.out.clear();
                            c.out_pos = 0;
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        report.io_errors += 1;
                        c.disconnect();
                        continue;
                    }
                }
            }
            if !poll.readable(slot) {
                continue;
            }
            let mut chunk = [0u8; 16 * 1024];
            let mut eof = false;
            loop {
                let s = c.stream.as_mut().expect("slot implies stream");
                match s.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => c.inb.extend_from_slice(&chunk[..n]),
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        report.io_errors += 1;
                        eof = true;
                        break;
                    }
                }
            }
            // Consume every complete response buffered so far.
            loop {
                match scan_response(&c.inb) {
                    ScannedResponse::Complete { status, consumed } => {
                        c.inb.drain(..consumed);
                        if let Some(sent) = c.inflight.pop_front() {
                            lat_us.push(now.saturating_duration_since(sent).as_micros() as f64);
                        }
                        report.requests += 1;
                        match status {
                            500..=599 => report.errors_5xx += 1,
                            400..=499 => report.errors_4xx += 1,
                            _ => {}
                        }
                        if !cfg.keep_alive {
                            c.disconnect();
                            break;
                        }
                    }
                    ScannedResponse::Partial => break,
                    ScannedResponse::Malformed => {
                        report.io_errors += 1;
                        c.disconnect();
                        break;
                    }
                }
            }
            if eof && c.stream.is_some() {
                // Server-side close (request cap, reap): reconnect on
                // the next pass. In-flight requests on this connection
                // are simply not counted.
                c.disconnect();
            }
        }
    }

    report.wall_s = start.elapsed().as_secs_f64();
    report.rps = report.requests as f64 / report.wall_s.max(1e-9);
    lat_us.sort_by(|a, b| a.total_cmp(b));
    report.p50_us = percentile(&lat_us, 0.50);
    report.p99_us = percentile(&lat_us, 0.99);
    report
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Builds the resident fleet `serve_bench` serves and measures: one
/// task per ~64 machines of each catalog job, all seeded.
pub fn build_serve_fleet(machines: u32, seed: u64) -> ServeHarness {
    let mut cluster = Cluster::new(ClusterConfig {
        seed,
        overcommit: 2.0,
        parallelism: 1,
        telemetry: cpi2::telemetry::Telemetry::enabled(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), machines.max(1));
    workloads::submit_typical_mix(&mut cluster, (machines / 64).max(1), seed);
    ServeHarness::new(Cpi2Harness::new(cluster, Cpi2Config::default()))
}

/// Mean tick-thread publish cost, µs/tick, for a `machines`-sized fleet
/// publishing with the given full-base period (`full_every` 1 = the
/// legacy full-snapshot-every-tick mode) over `ticks` ticks.
pub fn measure_publish_cost(machines: u32, full_every: u32, ticks: u32, seed: u64) -> f64 {
    let mut sh = build_serve_fleet(machines, seed);
    sh.set_full_snapshot_every(full_every);
    for _ in 0..ticks.max(1) {
        sh.tick();
    }
    let (count, total_us) = sh.publish_stats();
    total_us as f64 / count.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_serve::ServerConfig;

    fn boot(machines: u32) -> (ServeHarness, SocketAddr) {
        let mut sh = build_serve_fleet(machines, 0xBEAC4);
        sh.run_for(cpi2::sim::SimDuration::from_mins(1));
        let addr = sh
            .serve("127.0.0.1:0", ServerConfig::default())
            .expect("bind loopback");
        (sh, addr)
    }

    #[test]
    fn keep_alive_load_completes_without_server_errors() {
        let (mut sh, addr) = boot(8);
        let report = run_load(
            addr,
            &LoadConfig {
                connections: 8,
                seconds: 0.4,
                keep_alive: true,
                pipeline: 4,
                mix: true,
            },
        );
        assert!(report.requests > 0, "no requests completed: {report:?}");
        assert_eq!(report.errors_5xx, 0, "{report:?}");
        assert_eq!(report.errors_4xx, 0, "{report:?}");
        assert_eq!(report.peak_open, 8, "{report:?}");
        assert!(report.p99_us >= report.p50_us, "{report:?}");
        sh.shutdown_server();
    }

    #[test]
    fn close_mode_reconnects_per_request() {
        let (mut sh, addr) = boot(8);
        let report = run_load(
            addr,
            &LoadConfig {
                connections: 4,
                seconds: 0.4,
                keep_alive: false,
                pipeline: 1,
                mix: true,
            },
        );
        assert!(report.requests > 0, "no requests completed: {report:?}");
        assert_eq!(report.errors_5xx, 0, "{report:?}");
        sh.shutdown_server();
    }

    #[test]
    fn delta_publishing_is_cheaper_than_full_at_scale() {
        // Tiny version of the serve_bench sublinearity gate, sized for
        // a debug-build test run.
        let full = measure_publish_cost(256, 1, 8, 0xD1FF);
        let delta = measure_publish_cost(256, 64, 24, 0xD1FF);
        assert!(
            delta < full,
            "delta publish ({delta:.0} us/tick) not cheaper than full ({full:.0} us/tick)"
        );
    }
}
