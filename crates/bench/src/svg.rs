//! SVG rendering of experiment figures.
//!
//! The ASCII plots in [`crate::plot`] go to the terminal; these helpers
//! write the same series as standalone SVG files under `results/` so the
//! repository ships real figure artifacts. No dependencies: the SVG is
//! assembled by hand.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];
const W: f64 = 640.0;
const H: f64 = 400.0;
const MARGIN: f64 = 56.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn bounds(series: &[(&str, &[(f64, f64)])]) -> Option<(f64, f64, f64, f64)> {
    let mut it = series
        .iter()
        .flat_map(|(_, pts)| pts.iter())
        .filter(|(x, y)| x.is_finite() && y.is_finite());
    let first = it.next()?;
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (first.0, first.0, first.1, first.1);
    for &(x, y) in it {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-12 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-12 {
        ymax = ymin + 1.0;
    }
    Some((xmin, xmax, ymin, ymax))
}

/// Renders named series as an SVG chart. `lines` joins points with a
/// polyline (time series); otherwise points are drawn as a scatter.
// The raw-string templates end with a newline to frame SVG elements one
// per line; `writeln!` cannot express that inside `r#""#` literals.
#[allow(clippy::write_with_newline)]
pub fn render(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series: &[(&str, &[(f64, f64)])],
    lines: bool,
) -> String {
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">
<rect width="{W}" height="{H}" fill="white"/>
<text x="{tx}" y="22" font-family="sans-serif" font-size="15" text-anchor="middle" font-weight="bold">{title}</text>
"#,
        tx = W / 2.0,
        title = esc(title),
    );
    let Some((xmin, xmax, ymin, ymax)) = bounds(series) else {
        svg.push_str("</svg>\n");
        return svg;
    };
    let sx = |x: f64| MARGIN + (x - xmin) / (xmax - xmin) * (W - 2.0 * MARGIN);
    let sy = |y: f64| H - MARGIN - (y - ymin) / (ymax - ymin) * (H - 2.0 * MARGIN);

    // Axes + ticks.
    let _ = write!(
        svg,
        r#"<line x1="{m}" y1="{hb}" x2="{wr}" y2="{hb}" stroke="black"/>
<line x1="{m}" y1="{mt}" x2="{m}" y2="{hb}" stroke="black"/>
"#,
        m = MARGIN,
        mt = MARGIN,
        hb = H - MARGIN,
        wr = W - MARGIN,
    );
    for i in 0..=4 {
        let fx = xmin + (xmax - xmin) * i as f64 / 4.0;
        let fy = ymin + (ymax - ymin) * i as f64 / 4.0;
        let _ = write!(
            svg,
            r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="11" text-anchor="middle">{v:.3}</text>
<text x="{lx}" y="{ly}" font-family="sans-serif" font-size="11" text-anchor="end">{w:.3}</text>
"#,
            x = sx(fx),
            y = H - MARGIN + 18.0,
            v = fx,
            lx = MARGIN - 6.0,
            ly = sy(fy) + 4.0,
            w = fy,
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{cx}" y="{by}" font-family="sans-serif" font-size="13" text-anchor="middle">{xl}</text>
<text x="16" y="{cy}" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 {cy})">{yl}</text>
"#,
        cx = W / 2.0,
        by = H - 12.0,
        xl = esc(xlabel),
        cy = H / 2.0,
        yl = esc(ylabel),
    );

    // Series.
    for (si, (name, pts)) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        if lines && pts.len() > 1 {
            let mut path = String::new();
            for (i, &(x, y)) in pts.iter().enumerate() {
                if !(x.is_finite() && y.is_finite()) {
                    continue;
                }
                let _ = write!(
                    path,
                    "{}{:.1},{:.1} ",
                    if i == 0 { "M" } else { "L" },
                    sx(x),
                    sy(y)
                );
            }
            let _ = write!(
                svg,
                r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.5"/>
"#
            );
        } else {
            for &(x, y) in pts.iter().filter(|(x, y)| x.is_finite() && y.is_finite()) {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.5" fill="{color}" fill-opacity="0.6"/>
"#,
                    sx(x),
                    sy(y),
                );
            }
        }
        if !name.is_empty() {
            let _ = write!(
                svg,
                r#"<rect x="{lx}" y="{ly}" width="12" height="12" fill="{color}"/>
<text x="{tx}" y="{ty}" font-family="sans-serif" font-size="12">{n}</text>
"#,
                lx = W - MARGIN - 150.0,
                ly = MARGIN + 6.0 + si as f64 * 18.0,
                tx = W - MARGIN - 133.0,
                ty = MARGIN + 16.0 + si as f64 * 18.0,
                n = esc(name),
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Writes a chart to `path` (creating parent directories).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(
    path: impl AsRef<Path>,
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series: &[(&str, &[(f64, f64)])],
    lines: bool,
) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(title, xlabel, ylabel, series, lines))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_svg_scatter() {
        let pts = [(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)];
        let svg = render("t", "x", "y", &[("series", &pts)], false);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("series"));
    }

    #[test]
    fn renders_lines() {
        let pts = [(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)];
        let svg = render("t", "x", "y", &[("s", &pts)], true);
        assert!(svg.contains("<path"));
    }

    #[test]
    fn escapes_labels() {
        let svg = render("a<b & c", "x", "y", &[("", &[(0.0, 0.0)])], false);
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn handles_empty_and_degenerate() {
        let svg = render("t", "x", "y", &[("", &[])], false);
        assert!(svg.ends_with("</svg>\n"));
        let svg = render("t", "x", "y", &[("", &[(1.0, 1.0)])], true);
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("cpi2_svg_test");
        let path = dir.join("fig.svg");
        save(
            &path,
            "t",
            "x",
            "y",
            &[("", &[(0.0, 0.0), (1.0, 1.0)])],
            true,
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
