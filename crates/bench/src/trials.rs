//! The §7 large-scale evaluation machinery.
//!
//! The paper: "we periodically look for recently-reported antagonists and
//! manually cap their CPU rate for 5 minutes, and examine the victim's CPI
//! to see if it improves. We collected data for about 400 such trials."
//!
//! [`run_trial`] reproduces one such trial against the simulator, with
//! ground truth: a victim job with a learned spec, an injected antagonist
//! of a chosen kind, filler load to vary machine utilization, detection
//! with auto-throttle disabled, then a manual 5-minute cap on the top
//! suspect and before/during CPI + L3 measurement.

use cpi2::core::{Cpi2Config, CpiSpec};
use cpi2::harness::{task_for, Cpi2Harness};
use cpi2::sim::{
    Cluster, ClusterConfig, ConstantLoad, JobId, JobSpec, MachineId, Platform, ResourceProfile,
    SimDuration, TaskId,
};
use cpi2::workloads::{BatchTask, CacheThrasher, LsService, MapReduceWorker, TurnTakingMember};
use cpi2_stats::summary::RunningStats;

/// The kind of antagonist injected into a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AntagonistKind {
    /// Bursty streaming cache thrasher (strongly correlated).
    Thrasher,
    /// Phase-structured video-processing batch job.
    VideoBatch,
    /// MapReduce worker (bursty, idles between shards).
    MapReduce,
    /// Constant-rate streaming hog (usage flat ⇒ weak correlation signal).
    SteadyHog,
    /// Four tasks taking turns filling the cache — §4.2's hard case.
    TurnTakingGroup,
}

impl AntagonistKind {
    /// All kinds, for round-robin trial generation.
    pub const ALL: [AntagonistKind; 5] = [
        AntagonistKind::Thrasher,
        AntagonistKind::VideoBatch,
        AntagonistKind::MapReduce,
        AntagonistKind::SteadyHog,
        AntagonistKind::TurnTakingGroup,
    ];
}

/// Configuration of one trial.
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Master seed.
    pub seed: u64,
    /// Production victims have uniform tasks; non-production victims get
    /// heterogeneous per-task behaviour (§7.2: "non-production jobs'
    /// behaviors are less uniform").
    pub production: bool,
    /// Which antagonist to inject.
    pub antagonist: AntagonistKind,
    /// Extra low-interference filler tasks on each machine (varies
    /// utilization for Fig. 14).
    pub filler_tasks: u32,
    /// Minimum top-suspect correlation at which the trial still caps.
    /// The Fig. 15 threshold sweep needs trials capped below the 0.35
    /// operating point, so this defaults to 0.2.
    pub cap_floor: f64,
    /// Antagonist intensity scale (0.5 = mild, 1.0 = full-bore). Mild
    /// antagonists produce marginal degradations whose capping benefit can
    /// drown in the noise — the paper's non-clear-cut trials.
    pub intensity: f64,
    /// Inject a second, independent antagonist that the trial will *not*
    /// cap: capping the top suspect then only partially restores the
    /// victim (a paper-style partial-cause case).
    pub second_antagonist: bool,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            seed: 0,
            production: true,
            antagonist: AntagonistKind::Thrasher,
            filler_tasks: 0,
            cap_floor: 0.2,
            intensity: 1.0,
            second_antagonist: false,
        }
    }
}

/// Outcome of one trial.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// Trial configuration echo.
    pub production: bool,
    /// Injected antagonist kind.
    pub antagonist: AntagonistKind,
    /// Machine CPU utilization at detection (0–1).
    pub utilization: f64,
    /// Correlation of the top throttle-eligible suspect.
    pub correlation: f64,
    /// Whether the top eligible suspect was the injected antagonist.
    pub correct_identification: bool,
    /// Victim CPI just before the cap divided by the spec mean
    /// (Fig. 14c/16c x-axis).
    pub degradation: f64,
    /// Standard deviations above the spec mean at detection (Fig. 16b).
    pub sigmas_above: f64,
    /// Victim CPI during the cap divided by before (Figs. 15b/16c/16d).
    pub relative_cpi: f64,
    /// Victim L3 MPKI during the cap divided by before (Fig. 15c).
    pub relative_l3: f64,
    /// Spec stddev / mean — the paper's true/false-positive margin.
    pub margin: f64,
}

impl TrialOutcome {
    /// True positive under the paper's rule: capping reduced victim CPI by
    /// more than the spec-stddev margin.
    pub fn true_positive(&self) -> bool {
        self.relative_cpi < 1.0 - self.margin
    }

    /// False positive: victim CPI *rose* by more than the margin.
    pub fn false_positive(&self) -> bool {
        self.relative_cpi > 1.0 + self.margin
    }
}

/// Detection events without an identified antagonist (Fig. 14d's second
/// CDF): victim degradation when nothing cleared the threshold.
#[derive(Debug, Clone)]
pub struct UnidentifiedAnomaly {
    /// Victim CPI ÷ spec mean at the anomaly.
    pub degradation: f64,
}

fn victim_factory(production: bool, seed: u64) -> cpi2::sim::ModelFactory {
    Box::new(move |i| {
        if production {
            Box::new(LsService::new(
                ResourceProfile::cache_heavy(),
                1.2,
                12,
                seed ^ (i as u64) << 8,
            ))
        } else {
            // §7.2: "non-production jobs' behaviors are less uniform
            // (e.g., engineers testing experimental features)" — their CPI
            // shifts endogenously, so some detected anomalies are
            // self-inflicted and capping a neighbour does not help.
            Box::new(NonProductionService::new(seed ^ (i as u64) << 8))
        }
    })
}

/// A non-production victim: serving demand plus endogenous CPI phases
/// (experimental builds, debug logging bursts, recompiled binaries...).
struct NonProductionService {
    inner: LsService,
    phase_factor: f64,
    phase_left: u32,
    rng: cpi2_stats::rng::SimRng,
}

impl NonProductionService {
    fn new(seed: u64) -> Self {
        let mut rng = cpi2_stats::rng::SimRng::derive(seed, 0xA0);
        let phase_left = 200 + rng.below(600) as u32;
        NonProductionService {
            inner: LsService::new(ResourceProfile::cache_heavy(), 1.2, 12, seed),
            phase_factor: 1.0,
            phase_left,
            rng,
        }
    }
}

impl cpi2::sim::TaskModel for NonProductionService {
    fn profile(&self) -> ResourceProfile {
        let mut p = self.inner.profile();
        p.base_cpi *= self.phase_factor;
        p.cpi_noise = 0.08;
        p
    }

    fn demand(
        &mut self,
        now: cpi2::sim::SimTime,
        dt: SimDuration,
        rng: &mut cpi2_stats::rng::SimRng,
    ) -> cpi2::sim::TaskDemand {
        if self.phase_left == 0 {
            // Switch phase: half the time a degraded experimental phase.
            self.phase_factor = if self.rng.chance(0.5) {
                1.0
            } else {
                self.rng.range_f64(1.25, 1.7)
            };
            self.phase_left = 300 + self.rng.below(900) as u32;
        }
        self.phase_left -= 1;
        self.inner.demand(now, dt, rng)
    }
}

fn submit_antagonist(
    cluster: &mut Cluster,
    kind: AntagonistKind,
    seed: u64,
    intensity: f64,
) -> Result<JobId, cpi2::sim::PlacementError> {
    match kind {
        AntagonistKind::Thrasher => cluster.submit_job(
            JobSpec::best_effort("antagonist", 1, 1.0),
            true,
            Box::new(move |_| {
                Box::new(
                    CacheThrasher::new(8.0 * intensity, 240, 240, seed)
                        .with_footprint(32.0 * intensity),
                )
            }),
        ),
        AntagonistKind::VideoBatch => cluster.submit_job(
            JobSpec::batch("antagonist", 1, 1.0),
            true,
            Box::new(move |_| Box::new(BatchTask::video_processing(seed))),
        ),
        AntagonistKind::MapReduce => cluster.submit_job(
            JobSpec::batch("antagonist", 1, 1.0),
            false,
            Box::new(move |_| Box::new(MapReduceWorker::new(seed))),
        ),
        AntagonistKind::SteadyHog => cluster.submit_job(
            JobSpec::batch("antagonist", 1, 1.0),
            true,
            Box::new(move |_| {
                Box::new(ConstantLoad::new(
                    6.0 * intensity,
                    8,
                    ResourceProfile::streaming(),
                ))
            }),
        ),
        AntagonistKind::TurnTakingGroup => cluster.submit_job(
            JobSpec::batch("antagonist", 4, 1.0),
            true,
            Box::new(move |i| {
                Box::new(TurnTakingMember::new(i % 4, 4, 120, 6.0 * intensity, seed))
            }),
        ),
    }
}

/// Result of [`run_trial`].
#[derive(Debug, Clone)]
pub enum TrialResult {
    /// A cap was applied and measured.
    Capped(TrialOutcome),
    /// An anomaly was reported but no suspect cleared the threshold.
    Unidentified(UnidentifiedAnomaly),
    /// No anomaly was detected within the trial window, or the layout made
    /// the trial unusable (no victim co-resident with the antagonist).
    Nothing,
}

/// The trial platform: a wide (24-context) machine so one antagonist's
/// CPU is a modest fraction of capacity, as on the paper's many-tenant
/// production machines — utilization is then driven by the filler load,
/// not by the antagonist itself.
fn trial_platform() -> Platform {
    Platform {
        cores: 24,
        ..Platform::westmere()
    }
}

/// Runs one §7 trial. See module docs for the protocol.
pub fn run_trial(config: &TrialConfig) -> TrialResult {
    let mut cluster = Cluster::new(ClusterConfig {
        seed: config.seed,
        ..ClusterConfig::default()
    });
    cluster.add_machines(&trial_platform(), 6);
    let victim_job = cluster
        .submit_job(
            JobSpec::latency_sensitive("victim", 6, 1.2),
            true,
            victim_factory(config.production, config.seed),
        )
        .expect("victim placement");
    if config.filler_tasks > 0 {
        let seed = config.seed;
        cluster
            .submit_job(
                JobSpec::latency_sensitive("filler", config.filler_tasks * 6, 0.8),
                true,
                Box::new(move |i| {
                    // Pure CPU load: negligible cache/memory pressure, so
                    // utilization varies without varying interference.
                    let mut p = ResourceProfile::compute_bound();
                    p.cache_mb = 0.05;
                    p.mpki_solo = 0.05;
                    p.cache_sensitivity = 0.05;
                    Box::new(LsService::new(p, 0.9, 4, seed ^ 0xF111 ^ i as u64))
                }),
            )
            .ok();
    }

    let cpi2_config = Cpi2Config {
        min_samples_per_task: 5,
        // The trial caps manually, per the §7 protocol.
        auto_throttle: false,
        ..Cpi2Config::default()
    };
    let mut system = Cpi2Harness::new(cluster, cpi2_config);

    // Learn the victim's spec interference-free.
    system.run_for(SimDuration::from_mins(25));
    let specs = system.force_spec_refresh();
    let Some(spec) = specs.iter().find(|s| s.jobname == "victim").cloned() else {
        return TrialResult::Nothing;
    };

    // Inject the antagonist and find a co-resident victim task.
    let Ok(antagonist_job) = submit_antagonist(
        &mut system.cluster,
        config.antagonist,
        config.seed,
        config.intensity,
    ) else {
        return TrialResult::Nothing;
    };
    let ant_task = TaskId {
        job: antagonist_job,
        index: 0,
    };
    let Some(machine) = system.cluster.locate(ant_task) else {
        return TrialResult::Nothing;
    };
    let victim_here = system
        .cluster
        .machine(machine)
        .unwrap()
        .tasks()
        .find(|t| t.id.job == victim_job)
        .map(|t| t.id);
    let Some(victim_task) = victim_here else {
        return TrialResult::Nothing;
    };

    // Optionally a second cause the trial will not address: a mild steady
    // hog placed cluster-wide (one task per machine so one definitely
    // shares the victim's machine).
    if config.second_antagonist {
        let _ = system.cluster.submit_job(
            JobSpec::batch("background-hog", 6, 0.5),
            true,
            Box::new(move |_| Box::new(ConstantLoad::new(2.5, 4, ResourceProfile::streaming()))),
        );
    }

    // Watch for the first incident involving this victim task.
    let mut incident_idx = system.incidents().len();
    let deadline = system.cluster.now() + SimDuration::from_mins(45);
    let (mut found, mut utilization) = (None, 0.0);
    while system.cluster.now() < deadline {
        system.step();
        while incident_idx < system.incidents().len() {
            let mi = &system.incidents()[incident_idx];
            incident_idx += 1;
            if mi.machine == machine && task_for(mi.incident.victim) == victim_task {
                utilization = system
                    .cluster
                    .machine(machine)
                    .map(|m| m.utilization())
                    .unwrap_or(0.0);
                found = Some(mi.incident.clone());
                break;
            }
        }
        if found.is_some() {
            break;
        }
    }
    let Some(incident) = found else {
        return TrialResult::Nothing;
    };

    // Pick the top throttle-eligible suspect (the paper's protocol caps
    // "the single most-suspected antagonist").
    let threshold = config.cap_floor;
    let top_eligible = incident
        .suspects
        .iter()
        .find(|s| s.class.throttle_eligible())
        .cloned();
    let Some(suspect) = top_eligible else {
        return TrialResult::Unidentified(UnidentifiedAnomaly {
            degradation: incident.victim_cpi / spec.cpi_mean,
        });
    };
    if suspect.correlation < threshold {
        return TrialResult::Unidentified(UnidentifiedAnomaly {
            degradation: incident.victim_cpi / spec.cpi_mean,
        });
    }

    // Measure "before": victim tick CPI over the next minute (pre-cap).
    let before = measure_victim(&mut system, machine, victim_task, 60);

    // Manual 5-minute cap on the suspect.
    let until = system.cluster.now() + SimDuration::from_mins(5);
    system
        .cluster
        .apply_hard_cap(task_for(suspect.task), 0.01, until);
    // Skip 30 s of settling, then measure "during".
    measure_victim(&mut system, machine, victim_task, 30);
    let during = measure_victim(&mut system, machine, victim_task, 240);

    let (before_cpi, before_l3) = before;
    let (during_cpi, during_l3) = during;
    if before_cpi.count() == 0 || during_cpi.count() == 0 || before_cpi.mean() <= 0.0 {
        return TrialResult::Nothing;
    }
    let correct = task_for(suspect.task).job == antagonist_job;
    TrialResult::Capped(TrialOutcome {
        production: config.production,
        antagonist: config.antagonist,
        utilization,
        correlation: suspect.correlation,
        correct_identification: correct,
        degradation: incident.victim_cpi / spec.cpi_mean,
        sigmas_above: sigmas(&spec, incident.victim_cpi),
        relative_cpi: during_cpi.mean() / before_cpi.mean(),
        relative_l3: if before_l3.mean() > 0.0 {
            during_l3.mean() / before_l3.mean()
        } else {
            1.0
        },
        margin: if spec.cpi_mean > 0.0 {
            spec.cpi_stddev / spec.cpi_mean
        } else {
            0.1
        },
    })
}

fn sigmas(spec: &CpiSpec, cpi: f64) -> f64 {
    if spec.cpi_stddev > 0.0 {
        (cpi - spec.cpi_mean) / spec.cpi_stddev
    } else {
        0.0
    }
}

/// Steps the system for `secs` ticks, accumulating the victim's per-tick
/// CPI and L3 MPKI. Returns (cpi stats, l3-mpki stats).
fn measure_victim(
    system: &mut Cpi2Harness,
    machine: MachineId,
    victim: TaskId,
    secs: u32,
) -> (RunningStats, RunningStats) {
    let mut cpi = RunningStats::new();
    let mut l3 = RunningStats::new();
    for _ in 0..secs {
        system.step();
        if let Some(t) = system.cluster.machine(machine).and_then(|m| m.task(victim)) {
            if let Some(o) = t.last_outcome() {
                cpi.push(o.cpi);
                if o.instructions > 0.0 {
                    l3.push(o.l3_misses / (o.instructions / 1000.0));
                }
            }
        }
    }
    (cpi, l3)
}

/// Runs a batch of trials round-robining antagonist kinds and filler
/// levels; returns capped outcomes and unidentified anomalies.
pub fn run_batch(
    n: usize,
    production: bool,
    base_seed: u64,
) -> (Vec<TrialOutcome>, Vec<UnidentifiedAnomaly>) {
    let mut outcomes = Vec::new();
    let mut unidentified = Vec::new();
    for i in 0..n {
        let config = TrialConfig {
            seed: base_seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            production,
            antagonist: AntagonistKind::ALL[i % AntagonistKind::ALL.len()],
            filler_tasks: 2 * (i % 6) as u32,
            cap_floor: 0.2,
            // A third of trials face a mild antagonist, a third carry an
            // extra uncapped cause — the paper's not-clear-cut majority.
            intensity: if i % 3 == 1 { 0.55 } else { 1.0 },
            second_antagonist: i % 3 == 2,
        };
        match run_trial(&config) {
            TrialResult::Capped(o) => outcomes.push(o),
            TrialResult::Unidentified(u) => unidentified.push(u),
            TrialResult::Nothing => {}
        }
    }
    (outcomes, unidentified)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thrasher_trial_is_true_positive() {
        let r = run_trial(&TrialConfig {
            seed: 42,
            ..Default::default()
        });
        match r {
            TrialResult::Capped(o) => {
                assert!(o.correlation >= 0.35);
                assert!(o.correct_identification, "blamed the wrong job");
                assert!(
                    o.relative_cpi < 0.9,
                    "capping should improve the victim, got {}",
                    o.relative_cpi
                );
                assert!(o.relative_l3 < 1.0, "L3 should improve too");
                assert!(o.true_positive());
            }
            other => panic!("expected a capped trial, got {other:?}"),
        }
    }

    #[test]
    fn batch_produces_outcomes() {
        let (outcomes, _unidentified) = run_batch(5, true, 7);
        assert!(!outcomes.is_empty(), "no trial produced a cap");
    }
}
