//! Estimator ground truth: the sampled fleet's 95% CIs must actually
//! cover the exhaustive answer, and must tighten as the budget grows.
//!
//! The whole statistical fleet mode (DESIGN.md §12) stands on two claims:
//!
//! 1. **Coverage** — run the same fleet exhaustively and sampled (several
//!    budgets × seeds); the true fleet incident count / throttle total
//!    must fall inside the sampled 95% CI at roughly the nominal rate.
//!    Small strata get z-interval (not t) CIs and counts are discrete, so
//!    a binomial tolerance below 95% is applied, not exact nominal.
//! 2. **Shrink** — CI width must fall roughly like 1/√n with the budget
//!    (finite-population correction makes it shrink *faster* as the
//!    sample approaches a census).
//!
//! Every machine of a fleet is an independent cell, deterministic in
//! `(seed, index)`, so the exhaustive run and every sampled run share one
//! simulation per machine through a cache — the suite simulates each cell
//! exactly once, making exhaustive-vs-many-budgets comparisons cheap.

use cpi2_bench::sampling::{
    exhaustive_totals, run_sampled, simulate_cell, CellMetrics, FleetModel, SamplingConfig,
};
use cpi2_sim::SimDuration;
use std::collections::BTreeMap;

/// Short per-cell windows keep the debug-build suite fast; the cells
/// still learn specs (600 samples/task in warm-up) and see their
/// antagonists (arrival ≤ 5 min into the 20-min measured window).
fn model(machines: u32, seed: u64) -> FleetModel {
    FleetModel {
        machines,
        seed,
        warmup: SimDuration::from_mins(10),
        measure: SimDuration::from_mins(20),
    }
}

/// Cache-backed cell metrics: each machine index simulates once per
/// fleet, shared by the exhaustive pass and every sampled budget (valid
/// because cells are independent and per-index deterministic).
fn cached<'a>(
    m: &'a FleetModel,
    cache: &'a mut BTreeMap<u32, CellMetrics>,
) -> impl FnMut(u32) -> CellMetrics + 'a {
    move |idx| *cache.entry(idx).or_insert_with(|| simulate_cell(m, idx))
}

/// Metrics whose fleet totals the coverage checks target.
const TARGET_METRICS: [usize; 3] = [0, 1, 2]; // incidents, identifications, throttles

struct CaseResult {
    /// (covered?, metric, budget) per check.
    checks: Vec<(bool, usize, u32)>,
    /// (budget, mean CI width over target metrics, relative to totals).
    widths: Vec<(u32, f64)>,
}

/// Runs one fleet at several budgets against its exhaustive truth.
fn run_case(machines: u32, seed: u64, budgets: &[u32]) -> CaseResult {
    let m = model(machines, seed);
    let mut cache = BTreeMap::new();
    let truth = exhaustive_totals(&m, &mut cached(&m, &mut cache));

    let mut checks = Vec::new();
    let mut widths = Vec::new();
    for &budget in budgets {
        let sampled = run_sampled(
            &m,
            &SamplingConfig::with_budget(budget),
            &mut cached(&m, &mut cache),
        );
        assert!(
            sampled.estimator.cells_sampled() <= budget,
            "fleet {machines} seed {seed}: sampled {} cells over budget {budget}",
            sampled.estimator.cells_sampled()
        );
        let mut width_sum = 0.0;
        let mut width_n = 0u32;
        for &metric in &TARGET_METRICS {
            let est = sampled.estimator.estimate(metric);
            let t = truth.for_metric(metric, machines);
            assert!(
                est.total.is_finite() && est.total_lo.is_finite() && est.total_hi.is_finite(),
                "fleet {machines} seed {seed} budget {budget}: non-finite estimate"
            );
            checks.push((est.covers(t), metric, budget));
            // Normalize width by the truth scale so metrics average
            // sensibly (skip all-zero metrics).
            if t > 0.0 {
                width_sum += est.total_width() / t;
                width_n += 1;
            }
        }
        if width_n > 0 {
            widths.push((budget, width_sum / f64::from(width_n)));
        }
    }
    CaseResult { checks, widths }
}

#[test]
fn sampled_cis_cover_exhaustive_truth_across_seeds_and_budgets() {
    // Fleets of 200–800 machines: three seeds at 200, one each at 400 and
    // 800, several budgets each. ~1800 cells total, each simulated once.
    let mut all = Vec::new();
    let mut shrink_checked = 0;
    for (machines, seed, budgets) in [
        (200u32, 11u64, &[40u32, 80, 160][..]),
        (200, 12, &[40, 80, 160]),
        (200, 13, &[40, 80, 160]),
        (400, 11, &[60, 120, 240]),
        (800, 21, &[80, 160, 320]),
    ] {
        let case = run_case(machines, seed, budgets);
        all.extend(
            case.checks
                .iter()
                .map(|&(c, m, b)| (machines, seed, c, m, b)),
        );

        // CI width must shrink with the budget: comparing the smallest
        // and largest budget (4x apart), the relative width should drop
        // well below 1 — nominal 1/sqrt(4) = 0.5, with FPC pushing lower;
        // 0.8 catches an estimator that stopped tightening at all.
        if let (Some(&(b_lo, w_lo)), Some(&(b_hi, w_hi))) =
            (case.widths.first(), case.widths.last())
        {
            assert!(b_hi > b_lo, "budgets not increasing");
            assert!(
                w_hi < w_lo * 0.8,
                "fleet {machines} seed {seed}: CI width did not shrink with budget \
                 ({w_lo:.4} at {b_lo} cells -> {w_hi:.4} at {b_hi} cells)"
            );
            shrink_checked += 1;
        }
    }
    assert!(shrink_checked >= 3, "width-shrink checks were vacuous");

    let covered = all.iter().filter(|&&(_, _, c, _, _)| c).count();
    let total = all.len();
    assert!(total >= 30, "coverage sample too small: {total} checks");
    let rate = covered as f64 / total as f64;
    let misses: Vec<String> = all
        .iter()
        .filter(|&&(_, _, c, _, _)| !c)
        .map(|&(m, s, _, metric, b)| format!("fleet {m} seed {s} metric {metric} budget {b}"))
        .collect();
    // Binomial tolerance: at a true 95% coverage over ~45 checks, the
    // chance of dipping below 80% is ~0.2%; a real estimator bug (wrong
    // variance, missing FPC, biased mean) lands far lower.
    assert!(
        rate >= 0.80,
        "CI coverage {covered}/{total} = {rate:.2} below binomial tolerance; misses: {misses:?}"
    );
}

#[test]
fn cells_are_deterministic_and_budget_never_oversamples() {
    let m = model(64, 5);
    // Per-index determinism is what makes sampled == exhaustive per cell.
    let a = simulate_cell(&m, 7);
    let b = simulate_cell(&m, 7);
    assert_eq!(a, b, "cell 7 not deterministic");

    // A budget beyond the population degrades to a census of every
    // stratum — and a census CI has zero width (FPC).
    let mut cache = BTreeMap::new();
    let census = run_sampled(
        &m,
        &SamplingConfig::with_budget(10_000),
        &mut cached(&m, &mut cache),
    );
    assert_eq!(census.estimator.cells_sampled(), 64);
    let truth = exhaustive_totals(&m, &mut cached(&m, &mut cache));
    for metric in 0..3 {
        let est = census.estimator.estimate(metric);
        let t = truth.for_metric(metric, 64);
        assert!(
            (est.total - t).abs() < 1e-6,
            "census metric {metric}: {} != truth {t}",
            est.total
        );
        assert!(est.total_width() < 1e-6, "census CI not degenerate");
    }
}
