//! Property tests for the stratifier and the two-phase allocator
//! (DESIGN.md §12): the partition is exact, the budget is a hard bound,
//! and degenerate inputs produce finite CIs instead of panics.

use cpi2_bench::sampling::{
    plan_final, plan_pilot, CellMetrics, FleetEstimator, FleetModel, LoadBand, PlatformClass,
    SamplingConfig, Stratifier, StratumKey, StratumSamples, TenancyBand,
};
use proptest::prelude::*;

fn key() -> StratumKey {
    StratumKey {
        platform: PlatformClass::Westmere,
        load: LoadBand::Light,
        tenancy: TenancyBand::Sparse,
    }
}

proptest! {
    #[test]
    fn partition_is_disjoint_and_exhaustive(machines in 1u32..600, seed in 0u64..1000) {
        let model = FleetModel::new(machines, seed);
        let strata = Stratifier::partition(&model);
        let mut seen = vec![false; machines as usize];
        for s in &strata {
            prop_assert!(!s.members.is_empty(), "empty stratum kept");
            for &m in &s.members {
                prop_assert!(m < machines, "member {m} out of range");
                let slot = seen.get_mut(m as usize).expect("in range");
                prop_assert!(!*slot, "machine {m} in two strata");
                *slot = true;
            }
            // Members match the per-machine assignment.
            for &m in &s.members {
                prop_assert_eq!(Stratifier::stratum_of(&model, m), s.key);
            }
        }
        prop_assert!(seen.iter().all(|&v| v), "partition not exhaustive");
    }

    #[test]
    fn pilot_plus_final_never_exceeds_budget(
        populations in prop::collection::vec(0u32..200, 1..12),
        budget in 0u32..300,
        pilot_per in 1u32..8,
        stds in prop::collection::vec(0.0f64..5.0, 12),
    ) {
        let pilots = plan_pilot(&populations, budget, pilot_per);
        prop_assert!(pilots.iter().sum::<u32>() <= budget, "pilot over budget");
        for (p, n) in pilots.iter().zip(populations.iter()) {
            prop_assert!(p <= n, "pilot exceeds stratum population");
        }
        let stds = &stds[..populations.len().min(stds.len())];
        let finals = plan_final(&populations, &pilots, stds, budget);
        prop_assert!(finals.iter().sum::<u32>() <= budget, "final over budget");
        for ((f, p), n) in finals.iter().zip(pilots.iter()).zip(populations.iter()) {
            prop_assert!(f >= p, "final below pilot");
            prop_assert!(f <= n, "final exceeds stratum population");
        }
        // When the budget covers every machine, the plan is a census.
        let total: u32 = populations.iter().sum();
        if budget >= total {
            prop_assert_eq!(finals.iter().sum::<u32>(), total);
        }
    }

    #[test]
    fn estimates_always_finite(
        values in prop::collection::vec(0.0f64..50.0, 0..20),
        population in 1u32..100_000,
    ) {
        let samples: Vec<CellMetrics> = values
            .iter()
            .map(|&v| CellMetrics { incidents: v, ..CellMetrics::default() })
            .collect();
        let n = (samples.len() as u32).max(1).min(population);
        let est = FleetEstimator {
            population,
            strata: vec![StratumSamples { key: key(), population: n.max(samples.len() as u32), samples }],
        }
        .estimate(0);
        prop_assert!(est.mean.is_finite());
        prop_assert!(est.se.is_finite());
        prop_assert!(est.total.is_finite());
        prop_assert!(est.total_lo.is_finite() && est.total_hi.is_finite());
        prop_assert!(est.total_lo <= est.total + 1e-9 && est.total <= est.total_hi + 1e-9);
    }
}

#[test]
fn degenerate_cases_do_not_panic() {
    // One stratum.
    let pilots = plan_pilot(&[10], 6, 4);
    assert_eq!(pilots, vec![4]);
    let finals = plan_final(&[10], &pilots, &[1.0], 6);
    assert_eq!(finals.iter().sum::<u32>(), 6);

    // Budget smaller than the stratum count: round-robin degrades, later
    // strata get nothing, nothing panics.
    let pilots = plan_pilot(&[5, 5, 5, 5, 5], 3, 4);
    assert_eq!(pilots, vec![1, 1, 1, 0, 0]);
    let finals = plan_final(&[5, 5, 5, 5, 5], &pilots, &[0.0; 5], 3);
    assert_eq!(finals.iter().sum::<u32>(), 3);

    // Zero budget.
    assert_eq!(plan_pilot(&[5, 5], 0, 4), vec![0, 0]);
    assert_eq!(plan_final(&[5, 5], &[0, 0], &[0.0, 0.0], 0), vec![0, 0]);

    // Empty stratum list.
    assert!(plan_pilot(&[], 10, 4).is_empty());
    assert!(plan_final(&[], &[], &[], 10).is_empty());

    // Zero-variance stratum alongside a noisy one: Neyman weights send
    // the whole second phase to the noisy stratum, CIs stay finite.
    let populations = [50u32, 50];
    let pilots = plan_pilot(&populations, 20, 4);
    let finals = plan_final(&populations, &pilots, &[0.0, 2.0], 20);
    assert_eq!(finals[0], pilots[0], "zero-variance stratum grew");
    assert_eq!(finals.iter().sum::<u32>(), 20);

    // Estimator over degenerate strata: unsampled and single-sample
    // strata contribute no variance but still finite numbers.
    let est = FleetEstimator {
        population: 100,
        strata: vec![
            StratumSamples {
                key: key(),
                population: 60,
                samples: vec![],
            },
            StratumSamples {
                key: key(),
                population: 40,
                samples: vec![CellMetrics {
                    incidents: 3.0,
                    ..CellMetrics::default()
                }],
            },
        ],
    }
    .estimate(0);
    assert!(est.total.is_finite());
    assert!(est.total_width().abs() < 1e-9);
    assert!((est.total - 100.0 * (0.4 * 3.0)).abs() < 1e-9);
}

#[test]
fn allocation_is_deterministic() {
    let model = FleetModel::new(300, 42);
    let a = Stratifier::partition(&model);
    let b = Stratifier::partition(&model);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.members, y.members);
    }
    let cfg = SamplingConfig::with_budget(50);
    assert_eq!(cfg.budget, 50);
}
