//! The per-machine CPI² management agent.
//!
//! §4.1: "To avoid a central bottleneck, CPI values are measured and
//! analyzed locally by a management agent that runs in every machine."
//! The agent holds the predicted CPI specs pushed down by the aggregation
//! pipeline, watches every task's samples for anomalies, runs the
//! antagonist-correlation analysis when a protected victim is anomalous,
//! and (when auto-throttle is enabled) emits hard-cap commands.

use crate::amelioration::cap_for;
use crate::antagonist::{rank_suspects, select_target, Suspect, SuspectInput};
use crate::config::Cpi2Config;
use crate::correlation::antagonist_correlation;
use crate::incident::{Incident, IncidentAction};
use crate::outlier::{OutlierDetector, Verdict};
use crate::panda::EvidenceBook;
use crate::sample::{CpiSample, JobKey, TaskClass, TaskHandle};
use crate::spec::CpiSpec;
use crate::trace::{TraceId, TraceSpan, TraceStage};
use cpi2_stats::timeseries::TimeSeries;
use cpi2_telemetry::{Counter, Histo, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Serializes `BTreeMap`s with non-string keys as vectors of pairs
/// (JSON requires string map keys). Ordered maps also make checkpoint
/// blobs byte-stable across runs.
mod pairs {
    use serde::{Deserialize, Error, Serialize, Value};
    use std::collections::BTreeMap;

    pub fn to_value<K, V>(map: &BTreeMap<K, V>) -> Value
    where
        K: Serialize,
        V: Serialize,
    {
        Value::Array(
            map.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }

    pub fn from_value<K, V>(v: &Value) -> Result<BTreeMap<K, V>, Error>
    where
        K: Deserialize + Ord,
        V: Deserialize,
    {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array of pairs"))?;
        items
            .iter()
            .map(|item| match item.as_array().map(Vec::as_slice) {
                Some([k, v]) => Ok((K::from_value(k)?, V::from_value(v)?)),
                _ => Err(Error::custom("expected [key, value] pair")),
            })
            .collect()
    }
}

/// Cached telemetry handles for the agent's hot paths.
///
/// Resolved once in [`Agent::set_telemetry`]; the `Default` (all handles
/// disabled) costs one branch per update. Detection latency is recorded in
/// *sim-time* microseconds — the gap between a task entering its violation
/// window and the incident that fires — so the histogram is deterministic.
#[derive(Debug, Clone, Default)]
struct AgentMetrics {
    telemetry: Telemetry,
    samples: Counter,
    violations: Counter,
    incidents_hard_cap: Counter,
    incidents_none: Counter,
    detection_latency_us: Histo,
    correlation_runs: Counter,
    /// Detection decisions taken in degraded mode because the cached spec
    /// aged past `spec_ttl_hours` (conservative wide-sigma fallback).
    degraded_stale_spec: Counter,
    /// Identification passes, labeled by the configured backend.
    identifier_runs: Counter,
    /// PANDA-only: incident windows whose evidence was filtered as noise.
    panda_windows_filtered: Counter,
    /// PANDA-only: evidence pairs evicted to honor the state bound.
    panda_evidence_evictions: Counter,
}

impl AgentMetrics {
    fn new(telemetry: &Telemetry, identifier: &'static str) -> AgentMetrics {
        AgentMetrics {
            telemetry: telemetry.clone(),
            samples: telemetry.counter("cpi_agent_samples_total", &[]),
            violations: telemetry.counter("cpi_agent_outlier_violations_total", &[]),
            incidents_hard_cap: telemetry.counter("cpi_incidents_total", &[("action", "hard_cap")]),
            incidents_none: telemetry.counter("cpi_incidents_total", &[("action", "none")]),
            detection_latency_us: telemetry.histogram("cpi_agent_detection_latency_us", &[]),
            correlation_runs: telemetry.counter("cpi_agent_correlation_runs_total", &[]),
            degraded_stale_spec: telemetry.counter(
                "cpi_agent_degraded_decisions_total",
                &[("reason", "stale_spec")],
            ),
            identifier_runs: telemetry
                .counter("cpi_identifier_runs_total", &[("kind", identifier)]),
            panda_windows_filtered: telemetry.counter("cpi_panda_windows_filtered_total", &[]),
            panda_evidence_evictions: telemetry.counter("cpi_panda_evidence_evictions_total", &[]),
        }
    }
}

/// A command the agent wants executed on the machine.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentCommand {
    /// Apply a CPU hard cap to a task's cgroup.
    ApplyHardCap {
        /// Target task.
        target: TaskHandle,
        /// Target's job name (for the operator log).
        target_job: String,
        /// Cap rate, CPU-sec/sec.
        cpu_rate: f64,
        /// Expiry, µs since epoch.
        until: i64,
        /// The incident trace this cap belongs to (the executor appends
        /// the amelioration span to it).
        trace: TraceId,
    },
}

/// Per-task state the agent keeps.
#[derive(Debug, Default, Serialize, Deserialize)]
struct TaskState {
    jobname: String,
    platform: String,
    class: TaskClass,
    detector: OutlierDetector,
    cpi: TimeSeries,
    usage: TimeSeries,
    last_seen: i64,
}

/// The per-machine management agent.
///
/// The agent is fully serializable: a production daemon checkpoints its
/// state across restarts so in-flight violation windows, sample histories
/// and active caps survive (see [`Agent::checkpoint`]).
#[derive(Debug, Serialize, Deserialize)]
pub struct Agent {
    config: Cpi2Config,
    #[serde(with = "pairs")]
    specs: BTreeMap<JobKey, CpiSpec>,
    /// Publish time (µs) of each cached spec; `i64::MAX` means "never
    /// stale" (untimestamped install). Keyed by pipeline publish time —
    /// not install time — so re-installing the same old spec after an
    /// agent restart does not reset its staleness clock.
    #[serde(with = "pairs")]
    spec_published_at: BTreeMap<JobKey, i64>,
    // BTreeMap: the correlation pass iterates co-resident tasks, and the
    // suspect ranking it feeds must not depend on hash order.
    #[serde(with = "pairs")]
    tasks: BTreeMap<TaskHandle, TaskState>,
    /// µs timestamp of the last correlation analysis (rate limiting, §4.2).
    last_analysis: i64,
    /// Caps the agent has issued: target → expiry µs.
    #[serde(with = "pairs")]
    active_caps: BTreeMap<TaskHandle, i64>,
    /// Last incident report per victim (deduplication cooldown).
    #[serde(with = "pairs")]
    last_incident: BTreeMap<TaskHandle, i64>,
    incidents: Vec<Incident>,
    /// PANDA cross-incident evidence (empty and unused under the paper
    /// backend; checkpoints from before the field deserialize empty).
    #[serde(default)]
    evidence: EvidenceBook,
    /// Detection-side trace spans awaiting collection
    /// ([`Agent::take_trace_spans`]).
    #[serde(default)]
    trace_spans: Vec<TraceSpan>,
    /// Victims with an open trace awaiting recovery: the first
    /// non-anomalous sample closes the chain with a recovery span.
    #[serde(default, with = "pairs")]
    open_traces: BTreeMap<TaskHandle, TraceId>,
    /// Telemetry handles are runtime wiring, not state: checkpoints store
    /// `null` and restores come back disabled (re-attach after restore).
    #[serde(with = "cpi2_telemetry::serde_stub")]
    metrics: AgentMetrics,
}

impl Agent {
    /// Creates an agent with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(config: Cpi2Config) -> Self {
        // lint: allow(panic) — documented constructor contract: `new`
        // panics on an invalid config by design (see doc comment).
        config.validate().expect("valid CPI2 configuration");
        Agent {
            config,
            specs: BTreeMap::new(),
            spec_published_at: BTreeMap::new(),
            tasks: BTreeMap::new(),
            last_analysis: i64::MIN / 2,
            active_caps: BTreeMap::new(),
            last_incident: BTreeMap::new(),
            incidents: Vec::new(),
            evidence: EvidenceBook::new(),
            trace_spans: Vec::new(),
            open_traces: BTreeMap::new(),
            metrics: AgentMetrics::default(),
        }
    }

    /// Attaches (or replaces) the telemetry registry this agent reports
    /// to. Agents default to disabled telemetry; call this after
    /// construction — or after [`Agent::restore`], since checkpoints do
    /// not carry telemetry wiring.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = AgentMetrics::new(telemetry, self.config.identifier.name());
    }

    /// The agent's configuration.
    pub fn config(&self) -> &Cpi2Config {
        &self.config
    }

    /// Installs (or refreshes) a predicted CPI spec pushed by the pipeline
    /// with no publish timestamp (it never ages out).
    pub fn install_spec(&mut self, spec: CpiSpec) {
        self.install_spec_at(spec, i64::MAX);
    }

    /// Installs a spec together with its pipeline publish time (µs). Once
    /// the spec is older than [`Cpi2Config::spec_ttl_hours`], detection
    /// for its job falls back to the conservative
    /// [`Cpi2Config::stale_outlier_sigma`] threshold and each such
    /// decision is counted in telemetry.
    pub fn install_spec_at(&mut self, spec: CpiSpec, published_at_us: i64) {
        self.spec_published_at.insert(spec.key(), published_at_us);
        self.specs.insert(spec.key(), spec);
    }

    /// The spec for a job × platform key, if any.
    pub fn spec(&self, key: &JobKey) -> Option<&CpiSpec> {
        self.specs.get(key)
    }

    /// Publish time (µs) of the cached spec for a key: `i64::MAX` for
    /// untimestamped installs, `None` when no spec is cached.
    pub fn spec_published_at(&self, key: &JobKey) -> Option<i64> {
        self.spec_published_at.get(key).copied()
    }

    /// All incidents the agent has reported, oldest first.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Drains the incident log (pipeline collection).
    pub fn take_incidents(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.incidents)
    }

    /// Drains the detection-side trace spans recorded since the last call
    /// (sample window, violation, identification, decision, recovery), in
    /// the order they were produced.
    pub fn take_trace_spans(&mut self) -> Vec<TraceSpan> {
        std::mem::take(&mut self.trace_spans)
    }

    /// Serializes the agent's full state (specs, per-task histories,
    /// violation windows, active caps) for a daemon restart.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn checkpoint(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores an agent from a [`Agent::checkpoint`] blob.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or an invalid embedded configuration.
    pub fn restore(blob: &str) -> Result<Agent, serde_json::Error> {
        serde_json::from_str(blob)
    }

    /// Ingests one batch of samples (typically all tasks of the machine at
    /// one sampling instant) and returns any commands to execute.
    pub fn ingest(&mut self, samples: &[CpiSample]) -> Vec<AgentCommand> {
        let mut commands = Vec::new();
        let window_us = self.config.correlation_window_s * 1_000_000;
        self.metrics.samples.add(samples.len() as u64);

        // Record histories first so the analysis sees this batch.
        for s in samples {
            let st = self.tasks.entry(s.task).or_default();
            st.jobname = s.jobname.clone();
            st.platform = s.platforminfo.clone();
            st.class = s.class;
            st.last_seen = s.timestamp;
            // Monotonicity guard: a restarted collector may replay.
            let advances = match st.cpi.points().last() {
                Some(&(t, _)) => t < s.timestamp,
                None => true,
            };
            if advances {
                st.cpi.push(s.timestamp, s.cpi);
                st.usage.push(s.timestamp, s.cpu_usage);
            }
            st.cpi.evict_before(s.timestamp - 2 * window_us);
            st.usage.evict_before(s.timestamp - 2 * window_us);
        }

        // Evict tasks not seen for two windows (they left the machine).
        if let Some(&newest) = samples.iter().map(|s| &s.timestamp).max() {
            self.tasks
                .retain(|_, st| st.last_seen > newest - 2 * window_us);
            let tasks = &self.tasks;
            // A victim that left the machine before recovering leaves its
            // trace open-ended (the chain simply has no recovery span).
            self.open_traces.retain(|t, _| tasks.contains_key(t));
            self.active_caps.retain(|_, &mut until| until > newest);
            let cooldown_us = self.config.incident_cooldown_s * 1_000_000;
            self.last_incident
                .retain(|_, &mut t| t > newest - 2 * cooldown_us);
        }

        // Detection pass.
        for s in samples {
            let Some(spec) = self.specs.get(&s.key()) else {
                continue;
            };
            if !spec.robust() || spec.cpi_stddev <= 0.0 {
                continue;
            }
            let spec = spec.clone();
            // Degraded mode: a spec published longer ago than the TTL only
            // supports conservative detection — the workload may have
            // drifted, so require a wider deviation before flagging.
            let ttl_us = self.config.spec_ttl_hours * 3_600 * 1_000_000;
            let published_at = self
                .spec_published_at
                .get(&s.key())
                .copied()
                .unwrap_or(i64::MAX);
            let stale = ttl_us > 0 && s.timestamp.saturating_sub(published_at) > ttl_us;
            let sigma = if stale {
                self.metrics.degraded_stale_spec.inc();
                // Clamp: ablation configs sweep outlier_sigma above the
                // stale default; degraded mode must never be *less*
                // conservative than normal mode.
                self.config
                    .stale_outlier_sigma
                    .max(self.config.outlier_sigma)
            } else {
                self.config.outlier_sigma
            };
            let Some(st) = self.tasks.get_mut(&s.task) else {
                continue;
            };
            let verdict = st
                .detector
                .observe_with_sigma(s, &spec, &self.config, sigma);
            if matches!(verdict, Verdict::Flagged | Verdict::Anomalous) {
                self.metrics.violations.inc();
            }
            // Close an open incident trace at the victim's first sample
            // that is back within spec (recovery).
            if verdict == Verdict::Normal {
                if let Some(trace) = self.open_traces.remove(&s.task) {
                    let span = TraceSpan {
                        trace,
                        stage: TraceStage::Recovery,
                        start_us: s.timestamp,
                        end_us: s.timestamp,
                        detail: format!(
                            "victim={} job={} cpi={:.3} back under threshold={:.3}",
                            s.task.0,
                            s.jobname,
                            s.cpi,
                            spec.outlier_threshold(sigma)
                        ),
                    };
                    // Field-disjoint push (`st` is still borrowed below).
                    self.metrics.telemetry.event("trace", || span.event_line());
                    self.trace_spans.push(span);
                }
            }
            // When this flag entered the live violation window: the start
            // of the streak that may become an incident below.
            let window_entry = st.detector.first_flag_at();
            if verdict != Verdict::Anomalous {
                continue;
            }
            // Per-victim deduplication: a chronically anomalous task is
            // reported once per cooldown, not once per sample.
            if let Some(&last) = self.last_incident.get(&s.task) {
                if s.timestamp - last < self.config.incident_cooldown_s * 1_000_000 {
                    continue;
                }
            }
            // Rate-limit analyses (§4.2: at most one per second).
            if s.timestamp - self.last_analysis < self.config.analysis_interval_s * 1_000_000 {
                continue;
            }
            self.last_analysis = s.timestamp;
            if let Some(entry) = window_entry {
                // Sim-time µs from violation-window entry to incident.
                self.metrics
                    .detection_latency_us
                    .record((s.timestamp - entry) as f64);
            }
            if let Some(cmd) = self.analyze(s, &spec, window_us, sigma, window_entry) {
                commands.push(cmd);
            }
        }
        commands
    }

    /// Runs the antagonist analysis for an anomalous victim; returns a cap
    /// command if policy allows one.
    fn analyze(
        &mut self,
        victim: &CpiSample,
        spec: &CpiSpec,
        window_us: i64,
        sigma: f64,
        window_entry: Option<i64>,
    ) -> Option<AgentCommand> {
        self.metrics.correlation_runs.inc();
        let cthreshold = spec.outlier_threshold(sigma);
        let victim_state = self.tasks.get(&victim.task)?;
        let window_flags = victim_state.detector.flag_count();
        let victim_cpi = victim_state
            .cpi
            .window(victim.timestamp - window_us, victim.timestamp + 1);

        // Score every co-resident task's usage against the victim's CPI.
        let inputs: Vec<SuspectInput<'_>> = self
            .tasks
            .iter()
            .filter(|(&h, _)| h != victim.task)
            .map(|(&h, st)| SuspectInput {
                task: h,
                jobname: &st.jobname,
                class: st.class,
                usage: &st.usage,
            })
            .collect();
        // Alignment slack of half a sampling period.
        let tolerance = self.config.sampling_period_s * 1_000_000 / 2;
        let kind = self.config.identifier;
        self.metrics.identifier_runs.inc();
        let ranked = match kind.panda_params() {
            None => rank_suspects(&victim_cpi, &inputs, cthreshold, tolerance),
            Some(params) => {
                let (ranked, stats) = self.evidence.rank(
                    &params,
                    &victim.jobname,
                    &victim_cpi,
                    &inputs,
                    cthreshold,
                    tolerance,
                    victim.timestamp,
                );
                self.metrics
                    .panda_windows_filtered
                    .add(stats.windows_filtered);
                self.metrics.panda_evidence_evictions.add(stats.evictions);
                ranked
            }
        };
        let threshold = kind.decision_threshold(&self.config);
        let mut top: Vec<Suspect> = ranked.iter().take(10).cloned().collect();
        // Always report the best throttle-eligible suspect, even when ten
        // latency-sensitive neighbours outrank it (the Case-4 shape: it is
        // the only one amelioration could act on).
        if !top.iter().any(|s| s.class.throttle_eligible()) {
            if let Some(e) = ranked.iter().find(|s| s.class.throttle_eligible()) {
                top.push(e.clone());
            }
        }

        let eligible_victim = victim.class.protected;
        let target =
            select_target(&ranked, threshold).filter(|t| !self.active_caps.contains_key(&t.task));

        let action = match (&target, eligible_victim, self.config.auto_throttle) {
            (Some(t), true, true) => match cap_for(t.class, &self.config) {
                Some(cap) => {
                    let until = victim.timestamp + cap.duration_us;
                    self.active_caps.insert(t.task, until);
                    IncidentAction::HardCap {
                        target: t.task,
                        target_job: t.jobname.clone(),
                        cpu_rate: cap.cpu_rate,
                        until,
                    }
                }
                None => IncidentAction::None {
                    reason: "selected suspect not throttle-eligible".into(),
                },
            },
            (None, _, _) => IncidentAction::None {
                // Keep the paper backend's historical wording — it is
                // baked into golden-trace fixtures.
                reason: if kind.panda_params().is_none() {
                    format!("no eligible suspect with correlation ≥ {threshold}")
                } else {
                    format!("no eligible suspect with confidence ≥ {threshold}")
                },
            },
            (_, false, _) => IncidentAction::None {
                reason: "victim job not eligible for protection".into(),
            },
            (_, _, false) => IncidentAction::None {
                reason: "auto-throttle disabled".into(),
            },
        };

        let trace_id = TraceId::derive(victim.task.0, victim.timestamp);
        let command = match &action {
            IncidentAction::HardCap {
                target,
                target_job,
                cpu_rate,
                until,
            } => Some(AgentCommand::ApplyHardCap {
                target: *target,
                target_job: target_job.clone(),
                cpu_rate: *cpu_rate,
                until: *until,
                trace: trace_id,
            }),
            IncidentAction::None { .. } => None,
        };

        match &action {
            IncidentAction::HardCap { .. } => self.metrics.incidents_hard_cap.inc(),
            IncidentAction::None { .. } => self.metrics.incidents_none.inc(),
        }
        self.metrics.telemetry.event("incident", || {
            let kind = match &action {
                IncidentAction::HardCap { target_job, .. } => format!("hard_cap {target_job}"),
                IncidentAction::None { reason } => format!("none ({reason})"),
            };
            format!(
                "victim={} job={} cpi={:.3} threshold={:.3} action={kind}",
                victim.task.0, victim.jobname, victim.cpi, cthreshold
            )
        });
        self.last_incident.insert(victim.task, victim.timestamp);

        // Record the detection-side span chain (sample window → violation
        // → identification → decision); the executor appends amelioration
        // and recovery closes it on the victim's next in-spec sample.
        let at = victim.timestamp;
        let window_start = window_entry.unwrap_or(at);
        self.push_span(TraceSpan {
            trace: trace_id,
            stage: TraceStage::SampleWindow,
            start_us: window_start,
            end_us: at,
            detail: format!(
                "victim={} job={} flags={window_flags} in window",
                victim.task.0, victim.jobname
            ),
        });
        self.push_span(TraceSpan {
            trace: trace_id,
            stage: TraceStage::Violation,
            start_us: at,
            end_us: at,
            detail: format!(
                "cpi={:.3} threshold={:.3} sigma={sigma:.1}",
                victim.cpi, cthreshold
            ),
        });
        self.push_span(TraceSpan {
            trace: trace_id,
            stage: TraceStage::Identification,
            start_us: at,
            end_us: at,
            detail: match top.first() {
                Some(s) => format!(
                    "backend={} suspects={} top={}@{:.3}",
                    kind.name(),
                    top.len(),
                    s.jobname,
                    s.confidence
                ),
                None => format!("backend={} suspects=0", kind.name()),
            },
        });
        self.push_span(TraceSpan {
            trace: trace_id,
            stage: TraceStage::Decision,
            start_us: at,
            end_us: at,
            detail: match &action {
                IncidentAction::HardCap {
                    target_job,
                    cpu_rate,
                    ..
                } => format!("hard_cap target={target_job} rate={cpu_rate}"),
                IncidentAction::None { reason } => format!("none reason={reason}"),
            },
        });
        self.open_traces.insert(victim.task, trace_id);

        self.incidents.push(Incident {
            at: victim.timestamp,
            victim: victim.task,
            victim_job: victim.jobname.clone(),
            victim_cpi: victim.cpi,
            cthreshold,
            suspects: top,
            action,
            identifier: kind,
            trace_id,
        });
        command
    }

    /// Appends a span to the pending buffer and mirrors it into the
    /// telemetry event ring.
    fn push_span(&mut self, span: TraceSpan) {
        self.metrics.telemetry.event("trace", || span.event_line());
        self.trace_spans.push(span);
    }

    /// Computes the §4.2 correlation between a specific victim and suspect
    /// over the trailing window — the operator-facing "why did you pick
    /// this one" query. `None` when either task is unknown or the aligned
    /// window carries no usable signal (empty, constant CPI, non-finite
    /// samples, zero usage).
    pub fn correlation_between(
        &self,
        victim: TaskHandle,
        suspect: TaskHandle,
        cthreshold: f64,
    ) -> Option<f64> {
        let v = self.tasks.get(&victim)?;
        let s = self.tasks.get(&suspect)?;
        let tolerance = self.config.sampling_period_s * 1_000_000 / 2;
        let pairs = v.cpi.align(&s.usage, tolerance);
        antagonist_correlation(&pairs, cthreshold)
    }

    /// How many (victim job, suspect job) evidence pairs the PANDA
    /// identifier currently tracks (0 under the paper backend). Exposed
    /// for state-bound monitoring and the chaos suite.
    pub fn evidence_pairs(&self) -> usize {
        self.evidence.pairs_tracked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(job: &str, mean: f64, stddev: f64) -> CpiSpec {
        CpiSpec {
            jobname: job.into(),
            platforminfo: "westmere".into(),
            num_samples: 100_000,
            cpu_usage_mean: 1.0,
            cpi_mean: mean,
            cpi_stddev: stddev,
        }
    }

    fn sample(
        task: u64,
        job: &str,
        minute: i64,
        cpi: f64,
        usage: f64,
        class: TaskClass,
    ) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: job.into(),
            platforminfo: "westmere".into(),
            timestamp: minute * 60_000_000,
            cpu_usage: usage,
            cpi,
            l3_mpki: 1.0,
            class,
        }
    }

    /// Builds the canonical scenario: a protected victim whose CPI tracks
    /// a batch antagonist's CPU usage.
    fn run_scenario(agent: &mut Agent, minutes: i64) -> Vec<AgentCommand> {
        let mut cmds = Vec::new();
        for m in 0..minutes {
            let antagonist_on = m % 2 == 1;
            let batch = vec![
                sample(
                    1,
                    "victim",
                    m,
                    if antagonist_on { 3.0 } else { 1.0 },
                    1.0,
                    TaskClass::latency_sensitive(),
                ),
                sample(
                    2,
                    "hog",
                    m,
                    1.8,
                    if antagonist_on { 6.0 } else { 0.0 },
                    TaskClass::batch(),
                ),
                sample(3, "quiet", m, 1.0, 0.5, TaskClass::batch()),
            ];
            cmds.extend(agent.ingest(&batch));
        }
        cmds
    }

    #[test]
    fn detects_and_caps_the_antagonist() {
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec("victim", 1.0, 0.1));
        let cmds = run_scenario(&mut agent, 12);
        assert!(!cmds.is_empty(), "expected a cap command");
        match &cmds[0] {
            AgentCommand::ApplyHardCap {
                target,
                target_job,
                cpu_rate,
                ..
            } => {
                assert_eq!(*target, TaskHandle(2));
                assert_eq!(target_job, "hog");
                assert_eq!(*cpu_rate, 0.1);
            }
        }
        let inc = agent.incidents().last().unwrap();
        assert!(inc.acted());
        assert_eq!(inc.top_suspect().unwrap().task, TaskHandle(2));
        assert!(inc.top_suspect().unwrap().correlation >= 0.35);
    }

    #[test]
    fn no_spec_no_detection() {
        let mut agent = Agent::new(Cpi2Config::default());
        let cmds = run_scenario(&mut agent, 12);
        assert!(cmds.is_empty());
        assert!(agent.incidents().is_empty());
    }

    #[test]
    fn unprotected_victim_reports_but_does_not_cap() {
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec("victim", 1.0, 0.1));
        let mut cmds = Vec::new();
        for m in 0..12 {
            let on = m % 2 == 1;
            cmds.extend(agent.ingest(&[
                sample(
                    1,
                    "victim",
                    m,
                    if on { 3.0 } else { 1.0 },
                    1.0,
                    TaskClass::batch(),
                ),
                sample(
                    2,
                    "hog",
                    m,
                    1.8,
                    if on { 6.0 } else { 0.0 },
                    TaskClass::batch(),
                ),
            ]));
        }
        assert!(cmds.is_empty());
        assert!(!agent.incidents().is_empty());
        assert!(!agent.incidents()[0].acted());
    }

    #[test]
    fn auto_throttle_off_reports_only() {
        let cfg = Cpi2Config {
            auto_throttle: false,
            ..Cpi2Config::default()
        };
        let mut agent = Agent::new(cfg);
        agent.install_spec(spec("victim", 1.0, 0.1));
        let cmds = run_scenario(&mut agent, 12);
        assert!(cmds.is_empty());
        assert!(agent.incidents().iter().any(|i| !i.acted()));
    }

    #[test]
    fn does_not_recap_active_target() {
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec("victim", 1.0, 0.1));
        let cmds = run_scenario(&mut agent, 8);
        let first_caps = cmds.len();
        assert!(first_caps >= 1);
        // Continue within the 5-minute cap window: no duplicate commands
        // for the same target.
        let more = run_scenario(&mut agent, 2);
        let until = match &cmds[0] {
            AgentCommand::ApplyHardCap { until, .. } => *until,
        };
        for c in &more {
            let AgentCommand::ApplyHardCap { until: u2, .. } = c;
            assert!(*u2 > until, "re-cap must be a later incident");
        }
    }

    #[test]
    fn uncorrelated_bystander_not_blamed() {
        // Case 3 shape: victim CPI fluctuates on its own; the co-resident
        // batch task's usage is constant — correlation stays low, no cap.
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec("victim", 1.0, 0.1));
        let mut cmds = Vec::new();
        for m in 0..12 {
            let self_inflicted = m % 2 == 1;
            cmds.extend(agent.ingest(&[
                sample(
                    1,
                    "victim",
                    m,
                    if self_inflicted { 3.0 } else { 1.0 },
                    1.0,
                    TaskClass::latency_sensitive(),
                ),
                sample(2, "steady", m, 1.8, 2.0, TaskClass::batch()),
            ]));
        }
        // A constant-usage suspect has usage mass on both high- and
        // low-CPI minutes; its §4.2 score lands well below 0.35.
        assert!(cmds.is_empty(), "steady bystander must not be capped");
        for inc in agent.incidents() {
            assert!(!inc.acted());
        }
    }

    #[test]
    fn low_usage_victim_ignored() {
        // Case 3 proper: high CPI only when usage is near zero.
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec("victim", 1.0, 0.1));
        for m in 0..12 {
            let idle = m % 2 == 1;
            agent.ingest(&[sample(
                1,
                "victim",
                m,
                if idle { 9.0 } else { 1.0 },
                if idle { 0.1 } else { 1.0 },
                TaskClass::latency_sensitive(),
            )]);
        }
        assert!(agent.incidents().is_empty());
    }

    #[test]
    fn correlation_between_exposed() {
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec("victim", 1.0, 0.1));
        run_scenario(&mut agent, 12);
        let c = agent
            .correlation_between(TaskHandle(1), TaskHandle(2), 1.2)
            .unwrap();
        assert!(c > 0.35, "c={c}");
        let c_quiet = agent
            .correlation_between(TaskHandle(1), TaskHandle(3), 1.2)
            .unwrap();
        assert!(c_quiet < c);
    }

    #[test]
    fn stale_spec_falls_back_to_conservative_sigma() {
        // TTL 1 h, spec published at t = 0, samples at t > 2 h.
        // CPI 1.25 violates 2σ (threshold 1.2) but not the stale 3σ
        // threshold (1.3): a drifted workload must not page.
        let cfg = Cpi2Config {
            spec_ttl_hours: 1,
            ..Cpi2Config::default()
        };
        let mut stale_agent = Agent::new(cfg.clone());
        stale_agent.install_spec_at(spec("victim", 1.0, 0.1), 0);
        let mut fresh_agent = Agent::new(cfg);
        fresh_agent.install_spec(spec("victim", 1.0, 0.1)); // never stale
        for m in 130..140 {
            for agent in [&mut stale_agent, &mut fresh_agent] {
                agent.ingest(&[sample(
                    1,
                    "victim",
                    m,
                    1.25,
                    1.0,
                    TaskClass::latency_sensitive(),
                )]);
            }
        }
        assert!(
            stale_agent.incidents().is_empty(),
            "stale spec must detect conservatively"
        );
        assert!(
            !fresh_agent.incidents().is_empty(),
            "the same samples violate the fresh 2σ threshold"
        );
    }

    #[test]
    fn stale_spec_still_catches_egregious_interference() {
        let tel = cpi2_telemetry::Telemetry::enabled();
        let cfg = Cpi2Config {
            spec_ttl_hours: 1,
            ..Cpi2Config::default()
        };
        let mut agent = Agent::new(cfg);
        agent.set_telemetry(&tel);
        agent.install_spec_at(spec("victim", 1.0, 0.1), 0);
        // CPI 3.0 clears even the 3σ stale threshold by a mile.
        let mut cmds = Vec::new();
        for m in 130..142 {
            let on = m % 2 == 1;
            cmds.extend(agent.ingest(&[
                sample(
                    1,
                    "victim",
                    m,
                    if on { 3.0 } else { 1.0 },
                    1.0,
                    TaskClass::latency_sensitive(),
                ),
                sample(
                    2,
                    "hog",
                    m,
                    1.8,
                    if on { 6.0 } else { 0.0 },
                    TaskClass::batch(),
                ),
            ]));
        }
        assert!(!cmds.is_empty(), "degraded mode must still cap");
        // Every detection decision on the victim's job was degraded.
        let text = tel.prometheus_text().unwrap();
        assert!(
            text.contains("cpi_agent_degraded_decisions_total"),
            "{text}"
        );
    }

    #[test]
    fn ttl_zero_disables_aging() {
        let cfg = Cpi2Config {
            spec_ttl_hours: 0,
            ..Cpi2Config::default()
        };
        let mut agent = Agent::new(cfg);
        agent.install_spec_at(spec("victim", 1.0, 0.1), 0);
        // Years later, the spec still detects at the normal 2σ threshold.
        for m in 1_000_000..1_000_010 {
            agent.ingest(&[sample(
                1,
                "victim",
                m,
                1.25,
                1.0,
                TaskClass::latency_sensitive(),
            )]);
        }
        assert!(!agent.incidents().is_empty());
    }

    #[test]
    fn reinstalling_an_old_spec_keeps_its_staleness_clock() {
        // The regression the publish-time design prevents: an agent
        // restart re-syncs the same old spec; its age must be measured
        // from pipeline publish, not from the re-install.
        let cfg = Cpi2Config {
            spec_ttl_hours: 1,
            ..Cpi2Config::default()
        };
        let mut agent = Agent::new(cfg);
        agent.install_spec_at(spec("victim", 1.0, 0.1), 0);
        assert_eq!(
            agent.spec_published_at(&JobKey::new("victim", "westmere")),
            Some(0)
        );
        // "Restart": a fresh agent re-syncs the same publish timestamp.
        let mut agent2 = Agent::new(Cpi2Config {
            spec_ttl_hours: 1,
            ..Cpi2Config::default()
        });
        agent2.install_spec_at(spec("victim", 1.0, 0.1), 0);
        for m in 130..140 {
            agent2.ingest(&[sample(
                1,
                "victim",
                m,
                1.25,
                1.0,
                TaskClass::latency_sensitive(),
            )]);
        }
        assert!(agent2.incidents().is_empty(), "age survives the restart");
        let _ = agent;
    }

    #[test]
    fn take_incidents_drains() {
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec("victim", 1.0, 0.1));
        run_scenario(&mut agent, 12);
        let n = agent.incidents().len();
        assert!(n > 0);
        let taken = agent.take_incidents();
        assert_eq!(taken.len(), n);
        assert!(agent.incidents().is_empty());
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::sample::TaskClass;

    fn spec() -> CpiSpec {
        CpiSpec {
            jobname: "victim".into(),
            platforminfo: "westmere".into(),
            num_samples: 100_000,
            cpu_usage_mean: 1.0,
            cpi_mean: 1.0,
            cpi_stddev: 0.1,
        }
    }

    fn sample(
        task: u64,
        job: &str,
        minute: i64,
        cpi: f64,
        usage: f64,
        class: TaskClass,
    ) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: job.into(),
            platforminfo: "westmere".into(),
            timestamp: minute * 60_000_000,
            cpu_usage: usage,
            cpi,
            l3_mpki: 1.0,
            class,
        }
    }

    /// One minute of the canonical victim/antagonist pattern.
    fn minute(agent: &mut Agent, m: i64) -> Vec<AgentCommand> {
        let on = m % 2 == 1;
        agent.ingest(&[
            sample(
                1,
                "victim",
                m,
                if on { 3.0 } else { 1.0 },
                1.0,
                TaskClass::latency_sensitive(),
            ),
            sample(
                2,
                "hog",
                m,
                1.8,
                if on { 6.0 } else { 0.0 },
                TaskClass::batch(),
            ),
        ])
    }

    #[test]
    fn restart_preserves_violation_window_and_history() {
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec());
        // Run up to just before the anomaly would fire.
        let mut fired = Vec::new();
        let mut m = 0;
        while fired.is_empty() && m < 4 {
            fired = minute(&mut agent, m);
            m += 1;
        }
        // Back up one pattern: rebuild and stop two minutes earlier.
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec());
        for i in 0..4 {
            assert!(minute(&mut agent, i).is_empty(), "too early at {i}");
        }

        // Daemon restart mid-window.
        let blob = agent.checkpoint().unwrap();
        let mut restored = Agent::restore(&blob).unwrap();

        // The restored agent continues exactly where the old one was:
        // it caps within the next few minutes, with full 10-minute history
        // behind the correlation.
        let mut commands = Vec::new();
        for i in 4..12 {
            commands.extend(minute(&mut restored, i));
        }
        assert!(!commands.is_empty(), "restored agent must still detect");
        let inc = restored.incidents().last().unwrap();
        assert_eq!(inc.top_suspect().unwrap().jobname, "hog");
        assert!(inc.top_suspect().unwrap().correlation >= 0.35);

        // A fresh agent given only the post-restart minutes would know
        // less history; the checkpoint is what preserved the spec too.
        assert!(restored.spec(&JobKey::new("victim", "westmere")).is_some());
    }

    #[test]
    fn checkpoint_roundtrip_preserves_caps() {
        let mut agent = Agent::new(Cpi2Config::default());
        agent.install_spec(spec());
        // The cap fires at minute 5 and expires at minute 10; checkpoint
        // at minute 8 while it is live.
        for m in 0..8 {
            minute(&mut agent, m);
        }
        let caps_before = agent.active_caps.clone();
        assert!(!caps_before.is_empty(), "scenario should have capped");
        let restored = Agent::restore(&agent.checkpoint().unwrap()).unwrap();
        assert_eq!(restored.active_caps, caps_before);
        assert_eq!(restored.incidents().len(), agent.incidents().len());
    }
}
