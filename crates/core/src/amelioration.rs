//! Dealing with antagonists (§5): hard-capping policy and the
//! feedback-driven adaptive throttle the paper lists as future work (§9).

use crate::config::Cpi2Config;
use crate::sample::TaskClass;
use serde::{Deserialize, Serialize};

/// A concrete capping decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapDecision {
    /// Cap rate, CPU-sec/sec.
    pub cpu_rate: f64,
    /// Cap duration, µs.
    pub duration_us: i64,
}

/// The §5 policy: "we limit the antagonist to 0.01 CPU-sec/sec for
/// low-importance ('best effort') batch jobs and 0.1 CPU-sec/sec for other
/// job types", for 5 minutes at a time; latency-sensitive antagonists are
/// never capped automatically.
pub fn cap_for(antagonist: TaskClass, config: &Cpi2Config) -> Option<CapDecision> {
    if !antagonist.throttle_eligible() {
        return None;
    }
    let cpu_rate = if antagonist.best_effort {
        config.cap_best_effort
    } else {
        config.cap_batch
    };
    Some(CapDecision {
        cpu_rate,
        duration_us: config.cap_duration_s * 1_000_000,
    })
}

/// Feedback-driven adaptive throttling (§9 future work).
///
/// "We hope to introduce a feedback-driven policy that dynamically adjusts
/// the amount of throttling to keep the victim CPI degradation just below
/// an acceptable threshold." This controller starts from the static cap
/// and, after each capping round, tightens the cap if the victim is still
/// degraded or relaxes it if the victim has recovered with margin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveThrottle {
    /// Acceptable victim degradation (victim CPI ÷ spec mean), e.g. 1.2.
    pub target_degradation: f64,
    /// Multiplicative step per round.
    pub step: f64,
    /// Lower bound on the cap rate.
    pub min_rate: f64,
    /// Upper bound on the cap rate (beyond which capping is pointless).
    pub max_rate: f64,
    rate: f64,
}

impl AdaptiveThrottle {
    /// Creates a controller starting from `initial_rate`.
    ///
    /// # Panics
    ///
    /// Panics if bounds are inconsistent or non-positive.
    pub fn new(initial_rate: f64, target_degradation: f64) -> Self {
        assert!(initial_rate > 0.0, "initial rate must be positive");
        assert!(target_degradation >= 1.0, "target degradation must be ≥ 1");
        AdaptiveThrottle {
            target_degradation,
            step: 2.0,
            min_rate: 0.01,
            max_rate: 1.0,
            rate: initial_rate,
        }
    }

    /// Current cap rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Updates the cap given the victim's observed degradation
    /// (victim CPI ÷ spec mean) during the last capping round, and returns
    /// the rate for the next round.
    pub fn update(&mut self, observed_degradation: f64) -> f64 {
        if observed_degradation > self.target_degradation {
            // Victim still hurting: throttle harder.
            self.rate = (self.rate / self.step).max(self.min_rate);
        } else if observed_degradation < self.target_degradation * 0.8 {
            // Comfortable margin: give the antagonist some CPU back.
            self.rate = (self.rate * self.step).min(self.max_rate);
        }
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cap_rates() {
        let cfg = Cpi2Config::default();
        let batch = cap_for(TaskClass::batch(), &cfg).unwrap();
        assert_eq!(batch.cpu_rate, 0.1);
        assert_eq!(batch.duration_us, 300_000_000);
        let be = cap_for(TaskClass::best_effort(), &cfg).unwrap();
        assert_eq!(be.cpu_rate, 0.01);
    }

    #[test]
    fn latency_sensitive_never_capped() {
        let cfg = Cpi2Config::default();
        assert!(cap_for(TaskClass::latency_sensitive(), &cfg).is_none());
    }

    #[test]
    fn adaptive_tightens_when_degraded() {
        let mut t = AdaptiveThrottle::new(0.1, 1.2);
        let r1 = t.update(2.0);
        assert!(r1 < 0.1);
        let r2 = t.update(2.0);
        assert!(r2 <= r1);
        // Bounded below.
        for _ in 0..10 {
            t.update(2.0);
        }
        assert!((t.rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn adaptive_relaxes_when_recovered() {
        let mut t = AdaptiveThrottle::new(0.05, 1.2);
        let r = t.update(0.9);
        assert!(r > 0.05);
        for _ in 0..10 {
            t.update(0.9);
        }
        assert!((t.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_holds_in_band() {
        let mut t = AdaptiveThrottle::new(0.1, 1.2);
        let r = t.update(1.1); // Between 0.8×target and target: hold.
        assert_eq!(r, 0.1);
    }
}
