//! Suspect ranking and antagonist selection.
//!
//! Once a victim is anomalous, every co-resident task is a suspect. Each
//! suspect's CPU-usage series is time-aligned with the victim's CPI series
//! and scored with the §4.2 correlation; suspects are ranked by score and
//! the throttling target is the highest-scoring *eligible* (non-latency-
//! sensitive) suspect at or above the decision threshold — exactly the
//! Case 1 logic, where the batch video-processing job was chosen even
//! though four latency-sensitive tasks also scored highly.
//!
//! This module implements the paper-exact single-incident ranking. The
//! PANDA-style backend in [`crate::panda`] produces the same [`Suspect`]
//! records but ranks by a cross-incident confidence score instead.

use crate::correlation::antagonist_correlation;
use crate::sample::{TaskClass, TaskHandle};
use cpi2_stats::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// A scored suspect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suspect {
    /// The suspect task.
    pub task: TaskHandle,
    /// Its job's name.
    pub jobname: String,
    /// Its scheduling class.
    pub class: TaskClass,
    /// Antagonist correlation with the victim, in `[−1, 1]` (0 when the
    /// window score was undefined).
    pub correlation: f64,
    /// The score the active identifier ranked this suspect by. The
    /// paper-exact backend sets it to `correlation`; the PANDA-style
    /// backend sets its cross-incident confidence. Old incident logs
    /// (pre-confidence) deserialize to 0.
    #[serde(default)]
    pub confidence: f64,
}

/// A suspect's observable state handed to the ranker.
#[derive(Debug)]
pub struct SuspectInput<'a> {
    /// The suspect task.
    pub task: TaskHandle,
    /// Its job's name.
    pub jobname: &'a str,
    /// Its scheduling class.
    pub class: TaskClass,
    /// Its CPU-usage time series over the analysis window.
    pub usage: &'a TimeSeries,
}

/// Ranks suspects by antagonist correlation, descending.
///
/// `victim_cpi` and each suspect's usage are aligned with
/// `tolerance_us` timestamp slack. Suspects whose window score is
/// undefined (no aligned samples, flat victim CPI, no CPU used — see
/// [`antagonist_correlation`]) score 0.
pub fn rank_suspects(
    victim_cpi: &TimeSeries,
    suspects: &[SuspectInput<'_>],
    cthreshold: f64,
    tolerance_us: i64,
) -> Vec<Suspect> {
    let mut out: Vec<Suspect> = suspects
        .iter()
        .map(|s| {
            let pairs = victim_cpi.align(s.usage, tolerance_us);
            let correlation = antagonist_correlation(&pairs, cthreshold).unwrap_or(0.0);
            Suspect {
                task: s.task,
                jobname: s.jobname.to_string(),
                class: s.class,
                correlation,
                confidence: correlation,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.correlation
            .total_cmp(&a.correlation)
            .then(a.task.cmp(&b.task))
    });
    out
}

/// Chooses the throttling target: the highest-ranked suspect that is
/// throttle-eligible and whose identifier score ([`Suspect::confidence`])
/// is at or above `threshold`. For the paper-exact backend the score is
/// the raw §4.2 correlation, so this is exactly the paper's rule.
pub fn select_target(ranked: &[Suspect], threshold: f64) -> Option<&Suspect> {
    ranked
        .iter()
        .find(|s| s.class.throttle_eligible() && s.confidence >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(i64, f64)]) -> TimeSeries {
        TimeSeries::from_points(points.to_vec())
    }

    #[test]
    fn ranking_orders_by_correlation() {
        // Victim CPI spikes at minutes 1, 3 (threshold 2.0).
        let victim = series(&[(0, 1.0), (60, 5.0), (120, 1.0), (180, 5.0), (240, 1.0)]);
        // Guilty: active exactly at the spikes.
        let guilty = series(&[(0, 0.0), (60, 4.0), (120, 0.0), (180, 4.0), (240, 0.0)]);
        // Innocent: active in the quiet minutes.
        let innocent = series(&[(0, 4.0), (60, 0.0), (120, 4.0), (180, 0.0), (240, 4.0)]);
        let ranked = rank_suspects(
            &victim,
            &[
                SuspectInput {
                    task: TaskHandle(1),
                    jobname: "innocent",
                    class: TaskClass::batch(),
                    usage: &innocent,
                },
                SuspectInput {
                    task: TaskHandle(2),
                    jobname: "guilty",
                    class: TaskClass::batch(),
                    usage: &guilty,
                },
            ],
            2.0,
            1_000_000,
        );
        assert_eq!(ranked[0].task, TaskHandle(2));
        assert!(ranked[0].correlation > 0.35);
        // Paper backend: the ranking score is the correlation itself.
        assert_eq!(ranked[0].confidence, ranked[0].correlation);
        assert!(ranked[1].correlation < 0.0);
    }

    #[test]
    fn select_skips_latency_sensitive() {
        // The Case 1 scenario: LS tasks score high but only the batch task
        // is eligible.
        let ranked = vec![
            Suspect {
                task: TaskHandle(1),
                jobname: "content-digitizing".into(),
                class: TaskClass::latency_sensitive(),
                correlation: 0.44,
                confidence: 0.44,
            },
            Suspect {
                task: TaskHandle(2),
                jobname: "video-processing".into(),
                class: TaskClass::batch(),
                correlation: 0.46,
                confidence: 0.46,
            },
        ];
        // (already sorted descending in real use; order here: 0.44 then 0.46
        // would be wrong — sort first)
        let mut ranked = ranked;
        ranked.sort_by(|a, b| b.correlation.partial_cmp(&a.correlation).unwrap());
        let t = select_target(&ranked, 0.35).unwrap();
        assert_eq!(t.jobname, "video-processing");
    }

    #[test]
    fn select_none_below_threshold() {
        let ranked = vec![Suspect {
            task: TaskHandle(1),
            jobname: "b".into(),
            class: TaskClass::batch(),
            correlation: 0.2,
            confidence: 0.2,
        }];
        assert!(select_target(&ranked, 0.35).is_none());
    }

    #[test]
    fn no_aligned_samples_scores_zero() {
        let victim = series(&[(0, 5.0)]);
        let far = series(&[(1_000_000_000, 4.0)]);
        let ranked = rank_suspects(
            &victim,
            &[SuspectInput {
                task: TaskHandle(1),
                jobname: "x",
                class: TaskClass::batch(),
                usage: &far,
            }],
            2.0,
            1_000,
        );
        assert_eq!(ranked[0].correlation, 0.0);
    }

    #[test]
    fn ties_broken_by_task_id() {
        let victim = series(&[(0, 5.0), (60, 5.0)]);
        let usage = series(&[(0, 1.0), (60, 1.0)]);
        let ranked = rank_suspects(
            &victim,
            &[
                SuspectInput {
                    task: TaskHandle(9),
                    jobname: "a",
                    class: TaskClass::batch(),
                    usage: &usage,
                },
                SuspectInput {
                    task: TaskHandle(3),
                    jobname: "b",
                    class: TaskClass::batch(),
                    usage: &usage,
                },
            ],
            2.0,
            1_000,
        );
        assert_eq!(ranked[0].task, TaskHandle(3));
    }

    #[test]
    fn nan_poisoned_window_cannot_top_the_ranking() {
        // The regression the Option guard prevents: a corrupted sample
        // (NaN CPI) used to produce a NaN correlation, and `total_cmp`
        // sorts NaN above +∞ — so a garbage suspect would have outranked
        // the genuinely guilty one and been capped.
        let victim = series(&[(0, 1.0), (60, 5.0), (120, 1.0), (180, 5.0)]);
        let victim_nan = series(&[(0, f64::NAN), (60, 5.0), (120, 1.0), (180, 5.0)]);
        let guilty = series(&[(0, 0.0), (60, 4.0), (120, 0.0), (180, 4.0)]);
        let inputs = [SuspectInput {
            task: TaskHandle(7),
            jobname: "corrupt",
            class: TaskClass::batch(),
            usage: &guilty,
        }];
        // Against a poisoned victim window the score degrades to 0 …
        let ranked = rank_suspects(&victim_nan, &inputs, 2.0, 1_000);
        assert_eq!(ranked[0].correlation, 0.0);
        assert!(ranked[0].correlation.is_finite());
        assert!(select_target(&ranked, 0.35).is_none(), "NaN must not cap");
        // … while the clean window still convicts.
        let clean = rank_suspects(&victim, &inputs, 2.0, 1_000);
        assert!(clean[0].correlation > 0.35);
        // And a NaN cthreshold (corrupt spec) degrades the same way
        // instead of panicking.
        let bad_spec = rank_suspects(&victim, &inputs, f64::NAN, 1_000);
        assert_eq!(bad_spec[0].correlation, 0.0);
    }
}
