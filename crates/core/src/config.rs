//! CPI² configuration: the parameters of Table 2, plus the
//! antagonist-identifier backend selector (not in the paper; see
//! [`crate::panda`]).

use crate::panda::IdentifierKind;
use serde::{Deserialize, Serialize};

/// All tunable parameters of CPI², with the paper's defaults (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cpi2Config {
    /// Counting-window length in seconds ("Sampling duration: 10 seconds").
    pub sampling_duration_s: i64,
    /// Sampling cadence in seconds ("Sampling frequency: every 1 minute").
    pub sampling_period_s: i64,
    /// How often the predicted CPI spec is recalculated, in hours
    /// ("Predicted CPI recalculated: every 24 hours (goal: 1 hour)").
    pub spec_refresh_hours: i64,
    /// Minimum CPU usage for a sample to be considered, CPU-sec/sec
    /// ("Required CPU usage ≥ 0.25").
    pub min_cpu_usage: f64,
    /// Outlier threshold 1 in standard deviations ("2σ").
    pub outlier_sigma: f64,
    /// Outlier threshold 2: flag count ("3 violations in 5 minutes").
    pub violations_required: u32,
    /// Outlier threshold 2: window in seconds (the 5 minutes).
    pub violation_window_s: i64,
    /// Antagonist correlation threshold (0.35).
    pub correlation_threshold: f64,
    /// Correlation analysis window in seconds (§4.2: "typically ...
    /// 10-minute window").
    pub correlation_window_s: i64,
    /// Minimum time between correlation analyses, in seconds (§4.2: "at
    /// most one of these attempts is performed each second").
    pub analysis_interval_s: i64,
    /// Minimum time between incident reports for the *same victim task*,
    /// in seconds. A chronically degraded victim stays anomalous every
    /// minute; without deduplication it would page once per sample. The
    /// default matches one hard-cap duration plus one analysis window.
    pub incident_cooldown_s: i64,
    /// Hard-cap quota for ordinary batch jobs, CPU-sec/sec ("0.1").
    pub cap_batch: f64,
    /// Hard-cap quota for best-effort jobs, CPU-sec/sec (§5: "0.01 ...
    /// for low-importance ('best effort') batch jobs").
    pub cap_best_effort: f64,
    /// Hard-cap duration in seconds ("5 mins").
    pub cap_duration_s: i64,
    /// Minimum tasks in a job for CPI management (§3.1: "fewer than 5
    /// tasks" are skipped).
    pub min_tasks: u32,
    /// Minimum CPI samples per task for CPI management (§3.1: "fewer than
    /// 100 CPI samples per task" are skipped).
    pub min_samples_per_task: u64,
    /// Day-over-day age-weighting decay (§3.1: "about 0.9").
    pub age_decay: f64,
    /// Whether the agent may apply caps automatically (§5: CPI² hard-caps
    /// automatically when confident and the victim is eligible).
    pub auto_throttle: bool,
    /// Spec staleness TTL in hours. A cached spec whose publish timestamp
    /// is older than this falls back to conservative detection
    /// ([`Cpi2Config::stale_outlier_sigma`]). `0` disables aging. The
    /// default is twice the 24 h refresh period: one missed refresh is
    /// tolerated (the pipeline is lossy by design), two is degraded.
    pub spec_ttl_hours: i64,
    /// Outlier sigma used while a spec is stale: wider than
    /// [`Cpi2Config::outlier_sigma`] so a day-old mean only flags
    /// egregious interference (fewer false incidents from drifted
    /// workloads, per the conservative-fallback degraded mode). Clamped
    /// up to `outlier_sigma` at use sites if configured lower.
    pub stale_outlier_sigma: f64,
    /// Which antagonist-identification backend the agent runs (see
    /// [`crate::panda::IdentifierKind`]). Defaults to the paper-exact
    /// correlator; configs checkpointed before this field existed
    /// deserialize to the default.
    #[serde(default)]
    pub identifier: IdentifierKind,
}

impl Default for Cpi2Config {
    fn default() -> Self {
        Cpi2Config {
            sampling_duration_s: 10,
            sampling_period_s: 60,
            spec_refresh_hours: 24,
            min_cpu_usage: 0.25,
            outlier_sigma: 2.0,
            violations_required: 3,
            violation_window_s: 300,
            correlation_threshold: 0.35,
            correlation_window_s: 600,
            analysis_interval_s: 1,
            incident_cooldown_s: 600,
            cap_batch: 0.1,
            cap_best_effort: 0.01,
            cap_duration_s: 300,
            min_tasks: 5,
            min_samples_per_task: 100,
            age_decay: 0.9,
            auto_throttle: true,
            spec_ttl_hours: 48,
            stale_outlier_sigma: 3.0,
            identifier: IdentifierKind::Paper,
        }
    }
}

impl Cpi2Config {
    /// Renders the Table 2 "parameter / value" rows.
    pub fn table2_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Collection granularity".into(), "task".into()),
            (
                "Sampling duration".into(),
                format!("{} seconds", self.sampling_duration_s),
            ),
            (
                "Sampling frequency".into(),
                format!("every {} minute(s)", self.sampling_period_s / 60),
            ),
            ("Aggregation granularity".into(), "job x CPU type".into()),
            (
                "Predicted CPI recalculated".into(),
                format!("every {} hours", self.spec_refresh_hours),
            ),
            (
                "Required CPU usage".into(),
                format!(">= {} CPU-sec/sec", self.min_cpu_usage),
            ),
            (
                "Outlier threshold 1".into(),
                format!("{} sigma", self.outlier_sigma),
            ),
            (
                "Outlier threshold 2".into(),
                format!(
                    "{} violations in {} minutes",
                    self.violations_required,
                    self.violation_window_s / 60
                ),
            ),
            (
                "Antagonist correlation threshold".into(),
                format!("{}", self.correlation_threshold),
            ),
            (
                "Hard-capping quota".into(),
                format!(
                    "{} CPU-sec/sec ({} for best-effort)",
                    self.cap_batch, self.cap_best_effort
                ),
            ),
            (
                "Hard-capping duration".into(),
                format!("{} mins", self.cap_duration_s / 60),
            ),
        ]
    }

    /// Sanity-checks parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.outlier_sigma <= 0.0 {
            return Err("outlier_sigma must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.age_decay) {
            return Err("age_decay must be in [0,1]".into());
        }
        if !(-1.0..=1.0).contains(&self.correlation_threshold) {
            return Err("correlation_threshold must be in [-1,1]".into());
        }
        if self.cap_best_effort <= 0.0 || self.cap_batch <= 0.0 {
            return Err("cap rates must be positive".into());
        }
        if self.violations_required == 0 {
            return Err("violations_required must be ≥ 1".into());
        }
        if self.violation_window_s <= 0 || self.correlation_window_s <= 0 {
            return Err("windows must be positive".into());
        }
        if self.incident_cooldown_s < 0 {
            return Err("incident_cooldown_s must be non-negative".into());
        }
        if self.spec_ttl_hours < 0 {
            return Err("spec_ttl_hours must be non-negative".into());
        }
        if self.stale_outlier_sigma <= 0.0 {
            return Err("stale_outlier_sigma must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = Cpi2Config::default();
        // Not a Table 2 row: the identifier backend defaults paper-exact.
        assert_eq!(c.identifier, IdentifierKind::Paper);
        assert_eq!(c.sampling_duration_s, 10);
        assert_eq!(c.sampling_period_s, 60);
        assert_eq!(c.spec_refresh_hours, 24);
        assert_eq!(c.min_cpu_usage, 0.25);
        assert_eq!(c.outlier_sigma, 2.0);
        assert_eq!(c.violations_required, 3);
        assert_eq!(c.violation_window_s, 300);
        assert_eq!(c.correlation_threshold, 0.35);
        assert_eq!(c.cap_batch, 0.1);
        assert_eq!(c.cap_best_effort, 0.01);
        assert_eq!(c.cap_duration_s, 300);
        c.validate().unwrap();
    }

    #[test]
    fn table2_rows_complete() {
        let rows = Cpi2Config::default().table2_rows();
        assert_eq!(rows.len(), 11);
        assert!(rows
            .iter()
            .any(|(k, v)| k == "Hard-capping duration" && v == "5 mins"));
    }

    #[test]
    fn validate_catches_bad_values() {
        let c = Cpi2Config {
            outlier_sigma: 0.0,
            ..Cpi2Config::default()
        };
        assert!(c.validate().is_err());
        let c = Cpi2Config {
            age_decay: 1.5,
            ..Cpi2Config::default()
        };
        assert!(c.validate().is_err());
        let c = Cpi2Config {
            violations_required: 0,
            ..Cpi2Config::default()
        };
        assert!(c.validate().is_err());
        let c = Cpi2Config {
            spec_ttl_hours: -1,
            ..Cpi2Config::default()
        };
        assert!(c.validate().is_err());
        let c = Cpi2Config {
            stale_outlier_sigma: 0.0,
            ..Cpi2Config::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn degraded_mode_defaults() {
        let c = Cpi2Config::default();
        assert_eq!(c.spec_ttl_hours, 2 * c.spec_refresh_hours);
        assert!(c.stale_outlier_sigma > c.outlier_sigma);
    }
}
