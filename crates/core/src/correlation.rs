//! The antagonist-correlation score of §4.2 — the heart of CPI².
//!
//! A *passive* method: rather than throttling suspects one by one (which
//! would disrupt innocent tasks), CPI² correlates the victim's CPI samples
//! with each suspect's CPU usage over a window (typically 10 minutes).
//! Quoting the paper:
//!
//! > Let `{c1..cn}` be CPI samples for the victim V and `cthreshold` be
//! > the abnormal CPI threshold for V. Let `{u1..un}` be the CPU usage
//! > for a suspected antagonist A, normalized such that `Σ ui = 1`. Set
//! > `correlation(V,A) = 0` and then, for each time-aligned pair:
//! >
//! > ```text
//! > if ci > cthreshold:  correlation += ui * (1 − cthreshold/ci)
//! > if ci < cthreshold:  correlation += ui * (ci/cthreshold − 1)
//! > ```
//!
//! The result lies in `[−1, 1]`: positive when antagonist CPU spikes
//! coincide with high victim CPI, negative when they coincide with low
//! victim CPI.

/// Computes the §4.2 antagonist correlation from time-aligned
/// `(victim_cpi, suspect_cpu_usage)` pairs.
///
/// Returns `None` when the score is undefined — there is no evidence to
/// correlate, or the inputs would poison the arithmetic:
///
/// * `cthreshold` is non-finite or not positive (a spec with no usable
///   outlier threshold);
/// * the window is empty, or any sample in it is non-finite (NaN/∞ from a
///   corrupted shipment must not propagate into suspect rankings, where
///   `total_cmp` would sort a NaN score above every real one);
/// * the victim's CPI is constant across the window (zero variance: with
///   no victim signal to correlate against, every co-resident task would
///   score identically and the ranking would be noise);
/// * the suspect used no CPU at all (an idle task can't be blamed, and the
///   paper's `Σ ui = 1` normalization divides by zero).
///
/// # Examples
///
/// ```
/// use cpi2_core::correlation::antagonist_correlation;
/// // Victim CPI doubles exactly when the suspect burns CPU.
/// let pairs = [(1.0, 0.0), (4.0, 10.0), (1.0, 0.0), (4.0, 10.0)];
/// let c = antagonist_correlation(&pairs, 2.0).unwrap();
/// assert!(c > 0.4);
/// // A constant-CPI window carries no signal: undefined, not 0.
/// let flat = [(5.0, 1.0), (5.0, 2.0)];
/// assert_eq!(antagonist_correlation(&flat, 2.0), None);
/// ```
pub fn antagonist_correlation(pairs: &[(f64, f64)], cthreshold: f64) -> Option<f64> {
    if !cthreshold.is_finite() || cthreshold <= 0.0 {
        return None;
    }
    let (first, rest) = pairs.split_first()?;
    if pairs.iter().any(|&(c, u)| !c.is_finite() || !u.is_finite()) {
        return None;
    }
    // Zero-variance guard: a flat victim CPI window (including a
    // single-sample window) cannot discriminate between suspects.
    if rest.iter().all(|&(c, _)| c == first.0) {
        return None;
    }
    let total_usage: f64 = pairs.iter().map(|&(_, u)| u.max(0.0)).sum();
    if total_usage <= 0.0 {
        return None;
    }
    let mut correlation = 0.0;
    for &(ci, ui) in pairs {
        let ui = ui.max(0.0) / total_usage; // Normalize so Σ ui = 1.
        if ci > cthreshold {
            correlation += ui * (1.0 - cthreshold / ci);
        } else if ci < cthreshold {
            correlation += ui * (ci / cthreshold - 1.0);
        }
    }
    Some(correlation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_is_undefined() {
        assert_eq!(antagonist_correlation(&[], 2.0), None);
    }

    #[test]
    fn idle_suspect_is_undefined() {
        let pairs = [(5.0, 0.0), (1.0, 0.0)];
        assert_eq!(antagonist_correlation(&pairs, 2.0), None);
    }

    #[test]
    fn constant_cpi_window_is_undefined() {
        // Zero victim-CPI variance: every suspect would score alike, so
        // the score is declared undefined rather than misleading.
        let pairs = [(5.0, 1.0), (5.0, 3.0), (5.0, 0.5)];
        assert_eq!(antagonist_correlation(&pairs, 2.0), None);
        // A single sample is a degenerate constant window.
        assert_eq!(antagonist_correlation(&[(2.0, 5.0)], 2.0), None);
    }

    #[test]
    fn nan_and_infinite_samples_are_undefined() {
        // NaN anywhere must yield None, never a NaN score — `total_cmp`
        // sorts NaN above +∞, so a NaN score would top every ranking.
        assert_eq!(
            antagonist_correlation(&[(f64::NAN, 1.0), (1.0, 1.0)], 2.0),
            None
        );
        assert_eq!(
            antagonist_correlation(&[(6.0, f64::NAN), (1.0, 1.0)], 2.0),
            None
        );
        assert_eq!(
            antagonist_correlation(&[(f64::INFINITY, 1.0), (1.0, 1.0)], 2.0),
            None
        );
        assert_eq!(
            antagonist_correlation(&[(6.0, 1.0), (1.0, f64::NEG_INFINITY)], 2.0),
            None
        );
    }

    #[test]
    fn nonpositive_or_nan_threshold_is_undefined() {
        // Previously a panic; undefined thresholds now degrade to "no
        // score" so a corrupt spec can't take the agent down.
        assert_eq!(antagonist_correlation(&[(1.0, 1.0), (2.0, 1.0)], 0.0), None);
        assert_eq!(
            antagonist_correlation(&[(1.0, 1.0), (2.0, 1.0)], -2.0),
            None
        );
        assert_eq!(
            antagonist_correlation(&[(1.0, 1.0), (2.0, 1.0)], f64::NAN),
            None
        );
        assert_eq!(
            antagonist_correlation(&[(1.0, 1.0), (2.0, 1.0)], f64::INFINITY),
            None
        );
    }

    #[test]
    fn guilty_suspect_scores_high() {
        // Suspect CPU present only while victim CPI is far above threshold.
        let pairs: Vec<(f64, f64)> = (0..10)
            .map(|i| if i % 2 == 0 { (6.0, 3.0) } else { (1.0, 0.0) })
            .collect();
        let c = antagonist_correlation(&pairs, 2.0).unwrap();
        // All usage mass sits at ci=6 > cth=2: contribution 1 − 2/6 = 2/3.
        assert!((c - 2.0 / 3.0).abs() < 1e-12, "c={c}");
    }

    #[test]
    fn innocent_suspect_scores_negative() {
        // Suspect CPU present only while victim CPI is *low*.
        let pairs: Vec<(f64, f64)> = (0..10)
            .map(|i| if i % 2 == 0 { (6.0, 0.0) } else { (1.0, 3.0) })
            .collect();
        let c = antagonist_correlation(&pairs, 2.0).unwrap();
        // All mass at ci=1 < cth=2: contribution 1/2 − 1 = −1/2.
        assert!((c + 0.5).abs() < 1e-12, "c={c}");
    }

    #[test]
    fn constant_usage_mixed_cpi_nets_out() {
        // Usage uniform; CPI half high, half low, symmetric contributions
        // of +1/2·(1−2/6) and −1/2·(1−1/2)... not exactly zero, but small
        // relative to the guilty case.
        let pairs = [(6.0, 1.0), (1.0, 1.0)];
        let c = antagonist_correlation(&pairs, 2.0).unwrap();
        let expect = 0.5 * (1.0 - 2.0 / 6.0) + 0.5 * (1.0 / 2.0 - 1.0);
        assert!((c - expect).abs() < 1e-12);
        assert!(c.abs() < 0.35, "c={c} should be below the decision bar");
    }

    #[test]
    fn at_threshold_contributes_nothing() {
        // Mass at exactly cthreshold adds zero either way; the high/low
        // minutes still decide the sign.
        let pairs = [(2.0, 5.0), (6.0, 1.0), (1.0, 0.0)];
        let with_mass = antagonist_correlation(&pairs, 2.0).unwrap();
        let without = antagonist_correlation(&[(6.0, 1.0), (1.0, 0.0)], 2.0).unwrap();
        // The threshold-level mass dilutes the normalization but adds no
        // contribution of its own.
        assert!(with_mass > 0.0);
        assert!(with_mass < without);
    }

    #[test]
    fn bounded_in_unit_interval() {
        // Extreme cases stay within [−1, 1].
        let high = [(1e9, 1.0), (1.0, 0.0)];
        let low = [(1e-9, 1.0), (10.0, 0.0)];
        assert!(antagonist_correlation(&high, 2.0).unwrap() <= 1.0);
        assert!(antagonist_correlation(&low, 2.0).unwrap() >= -1.0);
    }

    #[test]
    fn negative_usage_treated_as_zero() {
        let pairs = [(6.0, -5.0), (6.0, 1.0), (1.0, 0.0)];
        let c = antagonist_correlation(&pairs, 2.0).unwrap();
        assert!((c - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
    }
}
