//! Incident records: what CPI² detected and what it did about it.
//!
//! Incidents are logged for offline forensics (§5: "we log and store data
//! about CPIs and suspected antagonists" for Dremel queries); the
//! `cpi2-pipeline` crate's query engine runs over these records.

use crate::antagonist::Suspect;
use crate::panda::IdentifierKind;
use crate::sample::TaskHandle;
use crate::trace::TraceId;
use serde::{Deserialize, Serialize};

/// The action CPI² took for an incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IncidentAction {
    /// No action: no suspect cleared the correlation bar (Case 3), or the
    /// victim is not eligible for protection, or auto-throttle is off.
    None {
        /// Why nothing was done.
        reason: String,
    },
    /// A hard cap was applied to the chosen antagonist.
    HardCap {
        /// The capped task.
        target: TaskHandle,
        /// Its job's name.
        target_job: String,
        /// Cap rate, CPU-sec/sec.
        cpu_rate: f64,
        /// Cap expiry, µs since epoch.
        until: i64,
    },
}

/// One detected performance-isolation incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Detection time, µs since epoch.
    pub at: i64,
    /// The victim task.
    pub victim: TaskHandle,
    /// The victim's job name.
    pub victim_job: String,
    /// The victim's CPI at detection.
    pub victim_cpi: f64,
    /// The victim's outlier threshold (`cthreshold` in §4.2).
    pub cthreshold: f64,
    /// Ranked suspects (highest identifier score first), as in Figs.
    /// 8a/11a.
    pub suspects: Vec<Suspect>,
    /// What was done.
    pub action: IncidentAction,
    /// Which identification backend produced the ranking (older logs
    /// deserialize to the paper-exact default).
    #[serde(default)]
    pub identifier: IdentifierKind,
    /// End-to-end trace this incident belongs to (see [`crate::trace`]);
    /// pre-tracing logs deserialize to the reserved "untraced" zero ID.
    #[serde(default)]
    pub trace_id: TraceId,
}

impl Incident {
    /// The top suspect, if any were scored.
    pub fn top_suspect(&self) -> Option<&Suspect> {
        self.suspects.first()
    }

    /// Whether a hard cap was applied.
    pub fn acted(&self) -> bool {
        matches!(self.action, IncidentAction::HardCap { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::TaskClass;

    #[test]
    fn accessors() {
        let inc = Incident {
            at: 0,
            victim: TaskHandle(1),
            victim_job: "svc".into(),
            victim_cpi: 5.0,
            cthreshold: 2.0,
            suspects: vec![Suspect {
                task: TaskHandle(2),
                jobname: "video".into(),
                class: TaskClass::batch(),
                correlation: 0.46,
                confidence: 0.46,
            }],
            action: IncidentAction::HardCap {
                target: TaskHandle(2),
                target_job: "video".into(),
                cpu_rate: 0.1,
                until: 300_000_000,
            },
            identifier: IdentifierKind::Paper,
            trace_id: TraceId::derive(1, 0),
        };
        assert!(inc.acted());
        assert_eq!(inc.top_suspect().unwrap().jobname, "video");
        // Round-trips through serde (the pipeline log format).
        let json = serde_json::to_string(&inc).unwrap();
        let back: Incident = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inc);
    }

    #[test]
    fn none_action() {
        let inc = Incident {
            at: 0,
            victim: TaskHandle(1),
            victim_job: "svc".into(),
            victim_cpi: 5.0,
            cthreshold: 2.0,
            suspects: vec![],
            action: IncidentAction::None {
                reason: "no suspect above threshold".into(),
            },
            identifier: IdentifierKind::default(),
            trace_id: TraceId::default(),
        };
        assert!(!inc.acted());
        assert!(inc.top_suspect().is_none());
    }
}
