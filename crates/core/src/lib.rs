//! CPI²: CPU performance isolation for shared compute clusters.
//!
//! This crate is the paper's primary contribution (Zhang et al., EuroSys
//! 2013), reimplemented from scratch:
//!
//! 1. **Learn normal behaviour** — per-job × platform CPI specs (mean, σ)
//!    built from the cluster-wide sample stream with day-over-day age
//!    weighting and the §3.1 eligibility rules ([`specbuilder`], [`spec`]).
//! 2. **Detect interference within minutes** — 2σ outlier flagging with a
//!    CPU-usage floor and a 3-violations-in-5-minutes anomaly bar
//!    ([`outlier`]).
//! 3. **Identify the likely antagonist** — the passive cross-correlation
//!    of victim CPI against suspect CPU usage ([`correlation`],
//!    [`antagonist`]).
//! 4. **Ameliorate** — hard-cap the chosen antagonist (0.1 CPU-sec/sec for
//!    batch, 0.01 for best-effort, 5 minutes at a time), preferring
//!    latency-sensitive victims over batch antagonists ([`amelioration`]).
//!
//! The pieces are wired together by the per-machine [`agent::Agent`],
//! which mirrors the management agent the paper deploys on every machine.
//! All parameters live in [`config::Cpi2Config`] with Table 2 defaults.
//!
//! The crate is substrate-independent: it consumes [`sample::CpiSample`]
//! records (the exact §3.1 record layout) and emits commands/incidents; it
//! neither knows nor cares whether samples come from the bundled cluster
//! simulator or a real perf_event collector.

#![warn(missing_docs)]

pub mod agent;
pub mod amelioration;
pub mod antagonist;
pub mod config;
pub mod correlation;
pub mod incident;
pub mod outlier;
pub mod panda;
pub mod sample;
pub mod sharded;
pub mod spec;
pub mod specbuilder;
pub mod trace;

pub use agent::{Agent, AgentCommand};
pub use amelioration::{cap_for, AdaptiveThrottle, CapDecision};
pub use antagonist::{rank_suspects, select_target, Suspect, SuspectInput};
pub use config::Cpi2Config;
pub use correlation::antagonist_correlation;
pub use incident::{Incident, IncidentAction};
pub use outlier::{OutlierDetector, Verdict};
pub use panda::{EvidenceBook, IdentifierKind, PandaParams};
pub use sample::{CpiSample, JobKey, TaskClass, TaskHandle};
pub use sharded::{ShardedSpecBuilder, DEFAULT_SPEC_SHARDS};
pub use spec::CpiSpec;
pub use specbuilder::SpecBuilder;
pub use trace::{TraceId, TraceLog, TraceSpan, TraceStage, DEFAULT_TRACE_CAPACITY};
