//! Performance-anomaly detection (§4.1).
//!
//! A CPI measurement is flagged as an *outlier* when it exceeds the 2σ
//! point of the job's predicted CPI distribution, unless the task used
//! less than 0.25 CPU-sec/sec (the filter that suppresses the Case-3
//! bimodal-usage false alarms). A task is *anomalous* only when it is
//! flagged at least 3 times in a 5-minute window.

use crate::config::Cpi2Config;
use crate::sample::CpiSample;
use crate::spec::CpiSpec;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Verdict for one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Sample is consistent with the spec.
    Normal,
    /// Sample was skipped (too little CPU usage to be meaningful).
    SkippedLowUsage,
    /// Sample exceeded the outlier threshold, but the violation count has
    /// not reached the anomaly bar yet.
    Flagged,
    /// The task is suffering anomalous behaviour: the violation count
    /// within the window reached the configured bar.
    Anomalous,
}

/// Sliding-window outlier state for a single task.
///
/// # Examples
///
/// ```
/// use cpi2_core::{Cpi2Config, CpiSample, CpiSpec, OutlierDetector, TaskClass, TaskHandle, Verdict};
///
/// let spec = CpiSpec {
///     jobname: "svc".into(), platforminfo: "p".into(), num_samples: 10_000,
///     cpu_usage_mean: 1.0, cpi_mean: 1.8, cpi_stddev: 0.16,
/// };
/// let config = Cpi2Config::default();
/// let mut detector = OutlierDetector::new();
/// let sample = |minute: i64, cpi: f64| CpiSample {
///     task: TaskHandle(1), jobname: "svc".into(), platforminfo: "p".into(),
///     timestamp: minute * 60_000_000, cpu_usage: 1.0, cpi, l3_mpki: 0.0,
///     class: TaskClass::latency_sensitive(),
/// };
/// assert_eq!(detector.observe(&sample(0, 1.8), &spec, &config), Verdict::Normal);
/// assert_eq!(detector.observe(&sample(1, 3.0), &spec, &config), Verdict::Flagged);
/// assert_eq!(detector.observe(&sample(2, 3.0), &spec, &config), Verdict::Flagged);
/// assert_eq!(detector.observe(&sample(3, 3.0), &spec, &config), Verdict::Anomalous);
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct OutlierDetector {
    /// Timestamps (µs) of recent flagged samples.
    flags: VecDeque<i64>,
}

impl OutlierDetector {
    /// Creates a fresh detector.
    pub fn new() -> Self {
        OutlierDetector::default()
    }

    /// Processes one sample against the job's spec.
    pub fn observe(&mut self, sample: &CpiSample, spec: &CpiSpec, config: &Cpi2Config) -> Verdict {
        self.observe_with_sigma(sample, spec, config, config.outlier_sigma)
    }

    /// Like [`OutlierDetector::observe`] but with an explicit outlier
    /// sigma — the degraded-mode hook: an agent holding a stale spec
    /// widens the threshold (conservative detection) without touching the
    /// rest of the window machinery.
    pub fn observe_with_sigma(
        &mut self,
        sample: &CpiSample,
        spec: &CpiSpec,
        config: &Cpi2Config,
        sigma: f64,
    ) -> Verdict {
        // Evict flags that left the violation window.
        let window_us = config.violation_window_s * 1_000_000;
        while let Some(&t) = self.flags.front() {
            if t <= sample.timestamp - window_us {
                self.flags.pop_front();
            } else {
                break;
            }
        }
        // §4.1: ignore measurements from tasks using < 0.25 CPU-sec/sec.
        if sample.cpu_usage < config.min_cpu_usage {
            return Verdict::SkippedLowUsage;
        }
        let threshold = spec.outlier_threshold(sigma);
        if sample.cpi <= threshold {
            return Verdict::Normal;
        }
        self.flags.push_back(sample.timestamp);
        if self.flags.len() as u32 >= config.violations_required {
            Verdict::Anomalous
        } else {
            Verdict::Flagged
        }
    }

    /// Number of live flags in the current window.
    pub fn flag_count(&self) -> usize {
        self.flags.len()
    }

    /// Timestamp (µs) of the oldest flag still inside the violation
    /// window, i.e. when the task *entered* its current violation streak.
    ///
    /// Telemetry uses this to measure detection latency: the sim-time gap
    /// between the first live violation and the incident that it
    /// eventually triggers.
    pub fn first_flag_at(&self) -> Option<i64> {
        self.flags.front().copied()
    }

    /// Clears all state (e.g. after an incident is resolved).
    pub fn reset(&mut self) {
        self.flags.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{TaskClass, TaskHandle};

    fn spec() -> CpiSpec {
        CpiSpec {
            jobname: "j".into(),
            platforminfo: "p".into(),
            num_samples: 10_000,
            cpu_usage_mean: 1.0,
            cpi_mean: 1.8,
            cpi_stddev: 0.16,
        }
    }

    fn sample(ts_min: i64, cpi: f64, usage: f64) -> CpiSample {
        CpiSample {
            task: TaskHandle(1),
            jobname: "j".into(),
            platforminfo: "p".into(),
            timestamp: ts_min * 60_000_000,
            cpu_usage: usage,
            cpi,
            l3_mpki: 0.0,
            class: TaskClass::latency_sensitive(),
        }
    }

    #[test]
    fn normal_sample_passes() {
        let mut d = OutlierDetector::new();
        let v = d.observe(&sample(0, 1.8, 1.0), &spec(), &Cpi2Config::default());
        assert_eq!(v, Verdict::Normal);
        assert_eq!(d.flag_count(), 0);
    }

    #[test]
    fn exactly_at_threshold_is_normal() {
        let mut d = OutlierDetector::new();
        // Threshold is 2.12; "larger than" is required.
        let v = d.observe(&sample(0, 2.12, 1.0), &spec(), &Cpi2Config::default());
        assert_eq!(v, Verdict::Normal);
    }

    #[test]
    fn three_violations_in_five_minutes_is_anomalous() {
        let mut d = OutlierDetector::new();
        let cfg = Cpi2Config::default();
        assert_eq!(
            d.observe(&sample(0, 2.5, 1.0), &spec(), &cfg),
            Verdict::Flagged
        );
        assert_eq!(
            d.observe(&sample(1, 2.5, 1.0), &spec(), &cfg),
            Verdict::Flagged
        );
        assert_eq!(
            d.observe(&sample(2, 2.5, 1.0), &spec(), &cfg),
            Verdict::Anomalous
        );
    }

    #[test]
    fn old_flags_age_out() {
        let mut d = OutlierDetector::new();
        let cfg = Cpi2Config::default();
        d.observe(&sample(0, 2.5, 1.0), &spec(), &cfg);
        d.observe(&sample(1, 2.5, 1.0), &spec(), &cfg);
        // 6 minutes later: the first two flags left the 5-minute window.
        let v = d.observe(&sample(7, 2.5, 1.0), &spec(), &cfg);
        assert_eq!(v, Verdict::Flagged);
        assert_eq!(d.flag_count(), 1);
    }

    #[test]
    fn low_usage_skipped_even_with_huge_cpi() {
        // The Case-3 false-alarm filter: CPI 10 at 0.1 CPU-sec/sec.
        let mut d = OutlierDetector::new();
        let v = d.observe(&sample(0, 10.0, 0.1), &spec(), &Cpi2Config::default());
        assert_eq!(v, Verdict::SkippedLowUsage);
        assert_eq!(d.flag_count(), 0);
    }

    #[test]
    fn interleaved_normals_dont_reset_flags() {
        let mut d = OutlierDetector::new();
        let cfg = Cpi2Config::default();
        d.observe(&sample(0, 2.5, 1.0), &spec(), &cfg);
        d.observe(&sample(1, 1.8, 1.0), &spec(), &cfg);
        d.observe(&sample(2, 2.5, 1.0), &spec(), &cfg);
        let v = d.observe(&sample(3, 2.5, 1.0), &spec(), &cfg);
        assert_eq!(v, Verdict::Anomalous);
    }

    #[test]
    fn exactly_three_violations_at_the_window_edge() {
        // Flags at t=0s, 60s; third violation lands exactly at the
        // 5-minute mark. Eviction uses `t <= now - window`, so the t=0
        // flag is evicted at t=300s — only two flags remain live and the
        // verdict stays Flagged, not Anomalous.
        let mut d = OutlierDetector::new();
        let cfg = Cpi2Config::default();
        assert_eq!(cfg.violation_window_s, 300, "test assumes 5-min window");
        assert_eq!(cfg.violations_required, 3, "test assumes 3-violation bar");
        d.observe(&sample(0, 2.5, 1.0), &spec(), &cfg);
        d.observe(&sample(1, 2.5, 1.0), &spec(), &cfg);
        let v = d.observe(&sample(5, 2.5, 1.0), &spec(), &cfg);
        assert_eq!(v, Verdict::Flagged);
        assert_eq!(d.flag_count(), 2);
        // One microsecond inside the window the verdict flips: flags at
        // 1 min and 2 min are both strictly younger than now - 300 s.
        let mut d = OutlierDetector::new();
        d.observe(&sample(1, 2.5, 1.0), &spec(), &cfg);
        d.observe(&sample(2, 2.5, 1.0), &spec(), &cfg);
        let mut s = sample(6, 2.5, 1.0);
        s.timestamp -= 1; // 359.999999 s: the 60 s flag survives (barely)
        assert_eq!(d.observe(&s, &spec(), &cfg), Verdict::Anomalous);
    }

    #[test]
    fn window_eviction_is_oldest_first() {
        let mut d = OutlierDetector::new();
        let cfg = Cpi2Config::default();
        d.observe(&sample(0, 2.5, 1.0), &spec(), &cfg);
        d.observe(&sample(2, 2.5, 1.0), &spec(), &cfg);
        assert_eq!(d.first_flag_at(), Some(0));
        // t=6min evicts t=0 (6 min old) but keeps t=2min (4 min old):
        // the front of the window advances monotonically.
        d.observe(&sample(6, 2.5, 1.0), &spec(), &cfg);
        assert_eq!(d.first_flag_at(), Some(2 * 60_000_000));
        assert_eq!(d.flag_count(), 2);
        // A later eviction never resurrects older entries.
        d.observe(&sample(12, 2.5, 1.0), &spec(), &cfg);
        assert_eq!(d.first_flag_at(), Some(12 * 60_000_000));
        assert_eq!(d.flag_count(), 1);
    }

    #[test]
    fn first_flag_tracks_streak_entry() {
        let mut d = OutlierDetector::new();
        let cfg = Cpi2Config::default();
        assert_eq!(d.first_flag_at(), None);
        d.observe(&sample(3, 2.5, 1.0), &spec(), &cfg);
        assert_eq!(d.first_flag_at(), Some(3 * 60_000_000));
        // Normal samples don't move the streak entry point.
        d.observe(&sample(4, 1.8, 1.0), &spec(), &cfg);
        assert_eq!(d.first_flag_at(), Some(3 * 60_000_000));
        d.reset();
        assert_eq!(d.first_flag_at(), None);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = OutlierDetector::new();
        let cfg = Cpi2Config::default();
        d.observe(&sample(0, 2.5, 1.0), &spec(), &cfg);
        d.reset();
        assert_eq!(d.flag_count(), 0);
    }

    #[test]
    fn wider_sigma_raises_the_bar() {
        // CPI 2.5 violates 2σ (threshold 2.12) but not 3σ (2.28 + margin:
        // threshold 1.8 + 3·0.16 = 2.28 — still violated; use 5σ = 2.6).
        let mut d = OutlierDetector::new();
        let cfg = Cpi2Config::default();
        let s = sample(0, 2.5, 1.0);
        assert_eq!(
            d.observe_with_sigma(&s, &spec(), &cfg, 5.0),
            Verdict::Normal
        );
        assert_eq!(d.flag_count(), 0);
        // The same sample under the normal sigma is flagged.
        assert_eq!(
            d.observe_with_sigma(&s, &spec(), &cfg, 2.0),
            Verdict::Flagged
        );
    }

    #[test]
    fn agent_restart_resets_window_cleanly() {
        // Two pre-restart violations, then the agent restarts (a fresh
        // detector, per the fault model: the daemon loses all in-memory
        // state). The first post-restart violation must come back as
        // Flagged — not Anomalous — because the 3-in-5-min rule re-warms
        // from zero.
        let cfg = Cpi2Config::default();
        let mut d = OutlierDetector::new();
        assert_eq!(
            d.observe(&sample(0, 2.5, 1.0), &spec(), &cfg),
            Verdict::Flagged
        );
        assert_eq!(
            d.observe(&sample(1, 2.5, 1.0), &spec(), &cfg),
            Verdict::Flagged
        );
        assert_eq!(d.flag_count(), 2);

        // Simulated restart: state is not carried over.
        let mut d = OutlierDetector::new();
        assert_eq!(d.flag_count(), 0);
        assert_eq!(d.first_flag_at(), None);
        assert_eq!(
            d.observe(&sample(2, 2.5, 1.0), &spec(), &cfg),
            Verdict::Flagged
        );
        assert_eq!(
            d.observe(&sample(3, 2.5, 1.0), &spec(), &cfg),
            Verdict::Flagged
        );
        // Only at the third *post-restart* violation does the anomaly
        // fire: no incident can be blamed on pre-restart violations.
        assert_eq!(
            d.observe(&sample(4, 2.5, 1.0), &spec(), &cfg),
            Verdict::Anomalous
        );
        assert_eq!(d.first_flag_at(), Some(2 * 60_000_000));
    }

    #[test]
    fn restart_mid_streak_delays_detection_not_corrupts_it() {
        // A continuously anomalous task across a restart: detection is
        // delayed by the re-warmup (bounded by violations_required
        // samples), never corrupted into a premature or missed incident.
        let cfg = Cpi2Config::default();
        let mut d = OutlierDetector::new();
        d.observe(&sample(0, 2.5, 1.0), &spec(), &cfg);
        d.observe(&sample(1, 2.5, 1.0), &spec(), &cfg);
        let mut d = OutlierDetector::new(); // restart at t≈1.5 min
        let mut verdicts = Vec::new();
        for m in 2..6 {
            verdicts.push(d.observe(&sample(m, 2.5, 1.0), &spec(), &cfg));
        }
        assert_eq!(
            verdicts,
            vec![
                Verdict::Flagged,
                Verdict::Flagged,
                Verdict::Anomalous,
                Verdict::Anomalous
            ]
        );
    }
}
