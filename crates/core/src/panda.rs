//! PANDA-style noise-resilient antagonist identification.
//!
//! The paper's §4.2 correlator scores each suspect from a *single*
//! incident window, which is noisy: thin windows (a suspect that just
//! landed), flat victim signal, and lossy sample pipelines all produce
//! scores that swing around the decision threshold. Its production
//! successor (PAPERS.md: "PANDA: Noise-Resilient Antagonist Identification
//! in Production Datacenters") hardens identification three ways, all
//! reproduced here:
//!
//! 1. **Cross-incident aggregation** — correlation evidence is accumulated
//!    per *(victim job, suspect job)* pair across repeated incidents, so a
//!    verdict rests on a body of observations rather than one window
//!    ([`EvidenceBook`]).
//! 2. **Noise filtering** — a window only contributes evidence when the
//!    victim and suspect series overlap in at least
//!    [`PandaParams::min_overlap`] aligned samples, and (with
//!    [`PandaParams::variance_weighting`]) each window is weighted by how
//!    much victim-CPI signal it actually carried, down-weighting windows
//!    where the victim barely deviated from its threshold.
//! 3. **Confidence scoring** — suspects are ranked by a score that shrinks
//!    toward zero when evidence is scarce (a Bayesian-style support prior)
//!    or inconsistent (variance across incidents), instead of by the raw
//!    last-window correlation.
//!
//! # Determinism
//!
//! All state lives in `BTreeMap`s keyed by [`PairKey`]; iteration,
//! eviction and tie-breaking are pure functions of the stored state and
//! the sim-time `now` passed in by the caller. No clocks, no hashing, no
//! randomness: two agents fed identical sample streams hold bit-identical
//! evidence books, which keeps the workspace determinism suite green at
//! any parallelism.
//!
//! # Backend selection
//!
//! [`IdentifierKind`] is threaded through [`crate::Cpi2Config`]; the agent
//! consults [`IdentifierKind::panda_params`] and either runs the
//! paper-exact [`crate::antagonist::rank_suspects`] or
//! [`EvidenceBook::rank`]. The ablation variants exist for the accuracy
//! leaderboard (`cpi2-bench`'s `accuracy_leaderboard`): each switches off
//! exactly one of the three mechanisms above.

use crate::antagonist::{Suspect, SuspectInput};
use crate::correlation::antagonist_correlation;
use cpi2_stats::timeseries::TimeSeries;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which antagonist-identification backend the agent runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IdentifierKind {
    /// The paper-exact §4.2 single-incident correlator (the default:
    /// golden traces and the determinism suite were recorded against it).
    #[default]
    Paper,
    /// Full PANDA-style backend: aggregation + filtering + confidence.
    Panda,
    /// Ablation: evidence window of one incident (no cross-incident
    /// memory); filtering and confidence unchanged.
    PandaNoAggregation,
    /// Ablation: no minimum-overlap filter and no variance weighting;
    /// aggregation and confidence unchanged.
    PandaNoFiltering,
    /// Ablation: rank by the weighted-mean correlation alone (no support
    /// shrinkage, no consistency discount); aggregation and filtering
    /// unchanged.
    PandaNoConfidence,
}

impl IdentifierKind {
    /// Every backend, in leaderboard order.
    pub const ALL: [IdentifierKind; 5] = [
        IdentifierKind::Paper,
        IdentifierKind::Panda,
        IdentifierKind::PandaNoAggregation,
        IdentifierKind::PandaNoFiltering,
        IdentifierKind::PandaNoConfidence,
    ];

    /// Stable machine-readable name (CLI flags, telemetry labels,
    /// `LEADERBOARD.json` keys).
    pub fn name(self) -> &'static str {
        match self {
            IdentifierKind::Paper => "paper",
            IdentifierKind::Panda => "panda",
            IdentifierKind::PandaNoAggregation => "panda-no-aggregation",
            IdentifierKind::PandaNoFiltering => "panda-no-filtering",
            IdentifierKind::PandaNoConfidence => "panda-no-confidence",
        }
    }

    /// Parses a [`IdentifierKind::name`] back into a kind.
    pub fn named(name: &str) -> Option<IdentifierKind> {
        IdentifierKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The PANDA parameters for this backend, or `None` for the paper
    /// correlator.
    pub fn panda_params(self) -> Option<PandaParams> {
        let base = PandaParams::default();
        match self {
            IdentifierKind::Paper => None,
            IdentifierKind::Panda => Some(base),
            IdentifierKind::PandaNoAggregation => Some(PandaParams {
                aggregation_window: 1,
                ..base
            }),
            IdentifierKind::PandaNoFiltering => Some(PandaParams {
                min_overlap: 0,
                variance_weighting: false,
                ..base
            }),
            IdentifierKind::PandaNoConfidence => Some(PandaParams {
                use_confidence: false,
                // Without support shrinkage the score is a weighted mean
                // correlation in [−1, 1]; the paper's own operating point
                // is the comparable bar.
                confidence_threshold: 0.35,
                ..base
            }),
        }
    }

    /// The decision bar applied to [`Suspect::confidence`] when selecting
    /// a throttling target: the paper's correlation threshold for the
    /// paper backend, the backend's confidence threshold otherwise.
    pub fn decision_threshold(self, config: &crate::Cpi2Config) -> f64 {
        match self.panda_params() {
            None => config.correlation_threshold,
            Some(p) => p.confidence_threshold,
        }
    }
}

/// Tuning knobs of the PANDA-style backend.
///
/// The ablation [`IdentifierKind`]s are expressed entirely through these
/// fields (see [`IdentifierKind::panda_params`]), so the scoring code has
/// a single path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PandaParams {
    /// How many incidents of evidence per (victim job, suspect job) pair
    /// feed one verdict (and the per-pair storage cap). `1` reduces to
    /// single-incident scoring.
    pub aggregation_window: usize,
    /// Minimum aligned (victim CPI, suspect usage) sample pairs for a
    /// window to contribute evidence. Thinner windows are filtered.
    pub min_overlap: usize,
    /// Weight each window's evidence by the victim-CPI signal it carried
    /// (RMS relative deviation from `cthreshold`, capped at 1) instead of
    /// uniformly.
    pub variance_weighting: bool,
    /// Apply the support prior and consistency discount on top of the
    /// weighted mean correlation.
    pub use_confidence: bool,
    /// Pseudo-weight of the "no evidence yet" prior: with total evidence
    /// weight `W`, the support factor is `W / (W + prior)`.
    pub confidence_prior: f64,
    /// Strength of the consistency discount `1 / (1 + k·Var)` applied for
    /// cross-incident disagreement.
    pub consistency_strength: f64,
    /// Decision bar on the confidence score (the analogue of the paper's
    /// 0.35 correlation threshold; lower, because support shrinkage keeps
    /// honest scores below the raw correlation).
    pub confidence_threshold: f64,
    /// Upper bound on tracked (victim job, suspect job) pairs; the
    /// least-recently-updated pair is evicted first (ties by key order).
    pub max_pairs: usize,
}

impl Default for PandaParams {
    fn default() -> Self {
        PandaParams {
            aggregation_window: 8,
            min_overlap: 3,
            variance_weighting: true,
            use_confidence: true,
            confidence_prior: 1.0,
            consistency_strength: 4.0,
            // Support shrinkage halves a lone strong window's score, and
            // agent restarts keep resetting the book in degraded fleets;
            // the bar sits where one clear window (≈ 0.45 correlation,
            // high signal) clears it but a weak or inconsistent body of
            // evidence does not.
            confidence_threshold: 0.12,
            max_pairs: 256,
        }
    }
}

/// One (victim job, suspect job) evidence stream. Ordered by victim job,
/// then suspect job (the derive's field order).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairKey {
    /// The anomalous job the evidence is about.
    pub victim_job: String,
    /// The suspected antagonist job.
    pub suspect_job: String,
}

/// One incident's worth of evidence for a pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvidenceRecord {
    /// Evidence weight in `(0, 1]` — the window's signal measure under
    /// variance weighting, 1 otherwise.
    pub weight: f64,
    /// The §4.2 correlation observed in that window.
    pub correlation: f64,
}

/// Evidence for one pair: bounded history plus recency for eviction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct PairEvidence {
    /// Oldest-first, trimmed to the aggregation window.
    records: Vec<EvidenceRecord>,
    /// Sim time (µs) of the newest record, for LRU eviction.
    last_update: i64,
}

/// Serializes the evidence map as an array of `[key, value]` pairs (JSON
/// map keys must be strings; ordered pairs keep checkpoints byte-stable).
mod pairmap {
    use super::{PairEvidence, PairKey};
    use serde::{Deserialize, Error, Serialize, Value};
    use std::collections::BTreeMap;

    pub fn to_value(map: &BTreeMap<PairKey, PairEvidence>) -> Value {
        Value::Array(
            map.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }

    pub fn from_value(v: &Value) -> Result<BTreeMap<PairKey, PairEvidence>, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array of pairs"))?;
        items
            .iter()
            .map(|item| match item.as_array().map(Vec::as_slice) {
                Some([k, v]) => Ok((PairKey::from_value(k)?, PairEvidence::from_value(v)?)),
                _ => Err(Error::custom("expected [key, value] pair")),
            })
            .collect()
    }
}

/// What one [`EvidenceBook::rank`] pass did, for telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankStats {
    /// Windows whose evidence was filtered out (overlap below the minimum
    /// or no usable signal).
    pub windows_filtered: u64,
    /// Evidence pairs evicted to honor [`PandaParams::max_pairs`].
    pub evictions: u64,
}

/// Cross-incident evidence, keyed by (victim job, suspect job).
///
/// Part of the agent's checkpointable state; like the rest of it, the book
/// does not survive an agent restart that discards the checkpoint — a
/// fresh agent re-accumulates evidence from its next incidents.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvidenceBook {
    #[serde(with = "pairmap")]
    pairs: BTreeMap<PairKey, PairEvidence>,
}

impl EvidenceBook {
    /// A book with no evidence.
    pub fn new() -> EvidenceBook {
        EvidenceBook::default()
    }

    /// Number of (victim job, suspect job) pairs currently tracked —
    /// bounded by [`PandaParams::max_pairs`].
    pub fn pairs_tracked(&self) -> usize {
        self.pairs.len()
    }

    /// Total stored evidence records across all pairs.
    pub fn records_tracked(&self) -> usize {
        self.pairs.values().map(|p| p.records.len()).sum()
    }

    /// Scores and ranks `suspects` against an anomalous `victim_cpi`
    /// window, then commits this window's evidence to the book.
    ///
    /// Each suspect task is scored over the pair's historical evidence
    /// (up to `aggregation_window − 1` prior incidents) plus *its own*
    /// current window; afterwards, at most one record per suspect job —
    /// the strongest task's — is committed, so a wide job does not flood
    /// the book with near-duplicate evidence from one incident.
    ///
    /// With `aggregation_window = 1` and filtering disabled this ranks
    /// identically to the paper correlator (the history contributes
    /// nothing and the confidence factors are constant across suspects) —
    /// pinned by a property test.
    #[allow(clippy::too_many_arguments)] // mirrors rank_suspects + book context
    pub fn rank(
        &mut self,
        params: &PandaParams,
        victim_job: &str,
        victim_cpi: &TimeSeries,
        suspects: &[SuspectInput<'_>],
        cthreshold: f64,
        tolerance_us: i64,
        now: i64,
    ) -> (Vec<Suspect>, RankStats) {
        let mut stats = RankStats::default();
        let window = params.aggregation_window.max(1);
        let mut ranked: Vec<Suspect> = Vec::with_capacity(suspects.len());
        // Strongest current-window record per suspect job, committed after
        // scoring so this incident can't feed back into its own ranking.
        let mut commits: BTreeMap<&str, EvidenceRecord> = BTreeMap::new();

        for s in suspects {
            let pairs = victim_cpi.align(s.usage, tolerance_us);
            let correlation = antagonist_correlation(&pairs, cthreshold);
            let current = match correlation {
                Some(c) if pairs.len() >= params.min_overlap => {
                    let weight = if params.variance_weighting {
                        window_signal(&pairs, cthreshold)
                    } else {
                        1.0
                    };
                    if weight > 0.0 {
                        Some(EvidenceRecord {
                            weight,
                            correlation: c,
                        })
                    } else {
                        stats.windows_filtered += 1;
                        None
                    }
                }
                Some(_) => {
                    stats.windows_filtered += 1;
                    None
                }
                // An undefined window (no overlap at all, flat victim CPI,
                // idle suspect) carries no evidence either way; it is not
                // counted as "filtered noise".
                None => None,
            };

            let key = PairKey {
                victim_job: victim_job.to_string(),
                suspect_job: s.jobname.to_string(),
            };
            // Historical evidence: the newest window−1 records, so the
            // score never mixes more than `aggregation_window` incidents.
            let history = self.pairs.get(&key).map(|p| p.records.as_slice());
            let mut evidence: Vec<EvidenceRecord> = history
                .unwrap_or(&[])
                .iter()
                .copied()
                .skip(history.map_or(0, |h| h.len()).saturating_sub(window - 1))
                .collect();
            evidence.extend(current);
            let confidence = confidence_score(&evidence, params);

            if let Some(rec) = current {
                let stronger = match commits.get(s.jobname) {
                    Some(best) => rec.correlation > best.correlation,
                    None => true,
                };
                if stronger {
                    commits.insert(s.jobname, rec);
                }
            }
            ranked.push(Suspect {
                task: s.task,
                jobname: s.jobname.to_string(),
                class: s.class,
                correlation: correlation.unwrap_or(0.0),
                confidence,
            });
        }

        ranked.sort_by(|a, b| {
            b.confidence
                .total_cmp(&a.confidence)
                .then(b.correlation.total_cmp(&a.correlation))
                .then(a.task.cmp(&b.task))
        });

        for (suspect_job, rec) in commits {
            let key = PairKey {
                victim_job: victim_job.to_string(),
                suspect_job: suspect_job.to_string(),
            };
            let pair = self.pairs.entry(key).or_default();
            pair.records.push(rec);
            let excess = pair.records.len().saturating_sub(window);
            if excess > 0 {
                pair.records.drain(..excess);
            }
            pair.last_update = now;
        }
        stats.evictions = self.evict_to(params.max_pairs.max(1));
        (ranked, stats)
    }

    /// Evicts least-recently-updated pairs (ties by key order) until at
    /// most `max_pairs` remain; returns how many were dropped.
    fn evict_to(&mut self, max_pairs: usize) -> u64 {
        let mut evicted = 0;
        while self.pairs.len() > max_pairs {
            let victim = self
                .pairs
                .iter()
                .min_by(|(ka, va), (kb, vb)| va.last_update.cmp(&vb.last_update).then(ka.cmp(kb)))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.pairs.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

/// How much victim-CPI signal a window carried: the RMS relative deviation
/// of victim CPI from `cthreshold`, capped at 1. A window where the victim
/// hovered at its threshold is weak evidence regardless of the suspect's
/// usage pattern.
fn window_signal(pairs: &[(f64, f64)], cthreshold: f64) -> f64 {
    if pairs.is_empty() || cthreshold <= 0.0 {
        return 0.0;
    }
    let ss: f64 = pairs
        .iter()
        .map(|&(c, _)| {
            let d = c / cthreshold - 1.0;
            d * d
        })
        .sum();
    (ss / pairs.len() as f64).sqrt().min(1.0)
}

/// The confidence score over a body of evidence:
///
/// ```text
/// W     = Σ wᵢ                       (total evidence weight)
/// mean  = Σ wᵢ·corrᵢ / W             (weighted mean correlation)
/// conf  = mean · W/(W + prior)       (support: shrink scarce evidence)
///              · 1/(1 + k·Var)       (consistency: discount disagreement)
/// ```
///
/// Sign-preserving and bounded by `|mean| ≤ 1`; zero when there is no
/// evidence. With `use_confidence` off it is the weighted mean alone.
fn confidence_score(records: &[EvidenceRecord], params: &PandaParams) -> f64 {
    let total: f64 = records.iter().map(|r| r.weight).sum();
    if total <= 0.0 || !total.is_finite() {
        return 0.0;
    }
    let mean = records
        .iter()
        .map(|r| r.weight * r.correlation)
        .sum::<f64>()
        / total;
    if !mean.is_finite() {
        return 0.0;
    }
    if !params.use_confidence {
        return mean;
    }
    let support = total / (total + params.confidence_prior.max(0.0));
    let var = records
        .iter()
        .map(|r| r.weight * (r.correlation - mean) * (r.correlation - mean))
        .sum::<f64>()
        / total;
    let consistency = 1.0 / (1.0 + params.consistency_strength.max(0.0) * var);
    mean * support * consistency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{TaskClass, TaskHandle};

    fn series(points: &[(i64, f64)]) -> TimeSeries {
        TimeSeries::from_points(points.to_vec())
    }

    /// Victim CPI spiking at odd minutes; a guilty suspect active exactly
    /// then, an innocent one active in the quiet minutes.
    fn scenario() -> (TimeSeries, TimeSeries, TimeSeries) {
        let minutes: Vec<i64> = (0..10).collect();
        let victim = series(
            &minutes
                .iter()
                .map(|&m| (m * 60, if m % 2 == 1 { 5.0 } else { 1.0 }))
                .collect::<Vec<_>>(),
        );
        let guilty = series(
            &minutes
                .iter()
                .map(|&m| (m * 60, if m % 2 == 1 { 4.0 } else { 0.0 }))
                .collect::<Vec<_>>(),
        );
        let innocent = series(
            &minutes
                .iter()
                .map(|&m| (m * 60, if m % 2 == 1 { 0.0 } else { 4.0 }))
                .collect::<Vec<_>>(),
        );
        (victim, guilty, innocent)
    }

    fn inputs<'a>(guilty: &'a TimeSeries, innocent: &'a TimeSeries) -> Vec<SuspectInput<'a>> {
        vec![
            SuspectInput {
                task: TaskHandle(1),
                jobname: "innocent",
                class: TaskClass::batch(),
                usage: innocent,
            },
            SuspectInput {
                task: TaskHandle(2),
                jobname: "guilty",
                class: TaskClass::batch(),
                usage: guilty,
            },
        ]
    }

    #[test]
    fn kind_names_round_trip() {
        for k in IdentifierKind::ALL {
            assert_eq!(IdentifierKind::named(k.name()), Some(k));
        }
        assert_eq!(IdentifierKind::named("nonsense"), None);
        assert_eq!(IdentifierKind::default(), IdentifierKind::Paper);
        assert!(IdentifierKind::Paper.panda_params().is_none());
        assert!(IdentifierKind::Panda.panda_params().is_some());
    }

    #[test]
    fn guilty_outranks_innocent_and_confidence_grows() {
        let (victim, guilty, innocent) = scenario();
        let params = IdentifierKind::Panda.panda_params().unwrap();
        let mut book = EvidenceBook::new();
        let mut last = 0.0;
        for incident in 0..4 {
            let (ranked, _) = book.rank(
                &params,
                "victim",
                &victim,
                &inputs(&guilty, &innocent),
                2.0,
                1_000,
                incident * 600_000_000,
            );
            assert_eq!(ranked[0].jobname, "guilty", "incident {incident}");
            assert!(ranked[0].confidence > 0.0);
            assert!(ranked[1].confidence < ranked[0].confidence);
            assert!(
                ranked[0].confidence >= last,
                "confidence must grow with consistent evidence: {} then {}",
                last,
                ranked[0].confidence
            );
            last = ranked[0].confidence;
        }
        // Aggregated consistent evidence clears the decision bar.
        assert!(last >= params.confidence_threshold, "final conf {last}");
        assert_eq!(book.pairs_tracked(), 2);
    }

    #[test]
    fn thin_windows_are_filtered_but_history_still_ranks() {
        let (victim, guilty, innocent) = scenario();
        let params = IdentifierKind::Panda.panda_params().unwrap();
        let mut book = EvidenceBook::new();
        // Build evidence from clean incidents first.
        for i in 0..3 {
            book.rank(
                &params,
                "victim",
                &victim,
                &inputs(&guilty, &innocent),
                2.0,
                1_000,
                i * 600_000_000,
            );
        }
        // Now a thin window: only 2 aligned samples (below min_overlap 4).
        let thin_victim = series(&[(0, 5.0), (60, 1.0)]);
        let thin_guilty = series(&[(0, 4.0), (60, 0.0)]);
        let thin_innocent = series(&[(0, 0.0), (60, 4.0)]);
        let (ranked, stats) = book.rank(
            &params,
            "victim",
            &thin_victim,
            &inputs(&thin_guilty, &thin_innocent),
            2.0,
            1_000,
            4 * 600_000_000,
        );
        assert!(stats.windows_filtered >= 2, "thin windows must filter");
        // History alone still convicts the right job.
        assert_eq!(ranked[0].jobname, "guilty");
        assert!(ranked[0].confidence > 0.0);
    }

    #[test]
    fn inconsistent_evidence_is_discounted() {
        let params = PandaParams::default();
        let consistent: Vec<EvidenceRecord> = (0..4)
            .map(|_| EvidenceRecord {
                weight: 1.0,
                correlation: 0.5,
            })
            .collect();
        let flaky: Vec<EvidenceRecord> = (0..4)
            .map(|i| EvidenceRecord {
                weight: 1.0,
                correlation: if i % 2 == 0 { 1.0 } else { 0.0 },
            })
            .collect();
        // Same weighted mean, very different consistency.
        let a = confidence_score(&consistent, &params);
        let b = confidence_score(&flaky, &params);
        assert!(a > b, "consistent {a} must beat flaky {b}");
        // Sign-preserving on negative evidence.
        let negative = [EvidenceRecord {
            weight: 1.0,
            correlation: -0.5,
        }];
        assert!(confidence_score(&negative, &params) < 0.0);
        assert_eq!(confidence_score(&[], &params), 0.0);
    }

    #[test]
    fn aggregation_window_bounds_stored_records() {
        let (victim, guilty, innocent) = scenario();
        let params = PandaParams {
            aggregation_window: 3,
            ..PandaParams::default()
        };
        let mut book = EvidenceBook::new();
        for i in 0..10 {
            book.rank(
                &params,
                "victim",
                &victim,
                &inputs(&guilty, &innocent),
                2.0,
                1_000,
                i * 600_000_000,
            );
        }
        assert_eq!(book.pairs_tracked(), 2);
        assert!(
            book.records_tracked() <= 2 * 3,
            "records {} exceed window cap",
            book.records_tracked()
        );
    }

    #[test]
    fn lru_eviction_bounds_pairs() {
        let (victim, guilty, _) = scenario();
        let params = PandaParams {
            max_pairs: 4,
            ..PandaParams::default()
        };
        let mut book = EvidenceBook::new();
        let mut total_evicted = 0;
        for i in 0..10i64 {
            // A different victim job each incident: 10 distinct pairs.
            let vj = format!("victim-{i}");
            let (_, stats) = book.rank(
                &params,
                &vj,
                &victim,
                &[SuspectInput {
                    task: TaskHandle(2),
                    jobname: "guilty",
                    class: TaskClass::batch(),
                    usage: &guilty,
                }],
                2.0,
                1_000,
                i * 600_000_000,
            );
            total_evicted += stats.evictions;
            assert!(book.pairs_tracked() <= 4);
        }
        assert_eq!(total_evicted, 6, "10 pairs through a 4-pair book");
        // The survivors are the most recently updated victims.
        assert_eq!(book.pairs_tracked(), 4);
    }

    #[test]
    fn checkpoint_round_trip() {
        let (victim, guilty, innocent) = scenario();
        let params = PandaParams::default();
        let mut book = EvidenceBook::new();
        for i in 0..3 {
            book.rank(
                &params,
                "victim",
                &victim,
                &inputs(&guilty, &innocent),
                2.0,
                1_000,
                i * 600_000_000,
            );
        }
        let blob = serde_json::to_string(&book).unwrap();
        let back: EvidenceBook = serde_json::from_str(&blob).unwrap();
        assert_eq!(back, book);
    }

    #[test]
    fn same_job_tasks_commit_one_record_per_incident() {
        let (victim, guilty, _) = scenario();
        // Two tasks of the same job, one clearly stronger.
        let weak = series(&[(0, 0.5), (60, 0.5), (120, 0.5), (180, 0.5)]);
        let params = PandaParams::default();
        let mut book = EvidenceBook::new();
        book.rank(
            &params,
            "victim",
            &victim,
            &[
                SuspectInput {
                    task: TaskHandle(1),
                    jobname: "swarm",
                    class: TaskClass::batch(),
                    usage: &guilty,
                },
                SuspectInput {
                    task: TaskHandle(2),
                    jobname: "swarm",
                    class: TaskClass::batch(),
                    usage: &weak,
                },
            ],
            2.0,
            1_000,
            0,
        );
        assert_eq!(book.pairs_tracked(), 1);
        assert_eq!(book.records_tracked(), 1, "one record per job-incident");
    }
}
