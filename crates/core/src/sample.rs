//! CPI sample records and task metadata.
//!
//! [`CpiSample`] mirrors the per-task record of §3.1:
//!
//! ```text
//! string jobname;
//! string platforminfo; // e.g., CPU type
//! int64 timestamp;     // microsec since epoch
//! float cpu_usage;     // CPU-sec/sec
//! float cpi;
//! ```

use serde::{Deserialize, Serialize};

/// Opaque per-machine task handle (unique while the task is resident).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskHandle(pub u64);

impl std::fmt::Display for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{:x}", self.0)
    }
}

/// Aggregation key: job × hardware platform (§3.1: "CPI² does separate CPI
/// calculations for each platform a job runs on").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobKey {
    /// Job name.
    pub job: String,
    /// Platform (CPU type) string.
    pub platform: String,
}

impl JobKey {
    /// Builds a key.
    pub fn new(job: impl Into<String>, platform: impl Into<String>) -> Self {
        JobKey {
            job: job.into(),
            platform: platform.into(),
        }
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.job, self.platform)
    }
}

/// Scheduling metadata the agent needs about a co-resident task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskClass {
    /// True for latency-sensitive serving tasks.
    pub latency_sensitive: bool,
    /// True for low-importance ("best effort") batch tasks.
    pub best_effort: bool,
    /// True if the task's job is eligible for CPI² protection (§5:
    /// latency-sensitive, or explicitly marked eligible).
    pub protected: bool,
}

impl Default for TaskClass {
    /// Defaults to an ordinary (unprotected, cappable) batch task.
    fn default() -> Self {
        TaskClass::batch()
    }
}

impl TaskClass {
    /// A protected latency-sensitive task.
    pub fn latency_sensitive() -> Self {
        TaskClass {
            latency_sensitive: true,
            best_effort: false,
            protected: true,
        }
    }

    /// An ordinary batch task.
    pub fn batch() -> Self {
        TaskClass {
            latency_sensitive: false,
            best_effort: false,
            protected: false,
        }
    }

    /// A best-effort batch task.
    pub fn best_effort() -> Self {
        TaskClass {
            latency_sensitive: false,
            best_effort: true,
            protected: false,
        }
    }

    /// Whether CPI² may hard-cap this task (§5: batch only).
    pub fn throttle_eligible(&self) -> bool {
        !self.latency_sensitive
    }
}

/// One CPI sample for one task — the §3.1 record plus the handle and
/// class metadata the local agent needs, and the L3 miss rate used by
/// the Fig. 15(c) analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpiSample {
    /// Per-machine task handle.
    pub task: TaskHandle,
    /// Job name.
    pub jobname: String,
    /// Platform (CPU type).
    pub platforminfo: String,
    /// Microseconds since epoch (end of the counting window).
    pub timestamp: i64,
    /// CPU usage over the window, CPU-sec/sec.
    pub cpu_usage: f64,
    /// Cycles per instruction over the window.
    pub cpi: f64,
    /// L3 misses per kilo-instruction (auxiliary, may be zero if the
    /// collector does not gather it).
    pub l3_mpki: f64,
    /// Scheduling class of the task.
    pub class: TaskClass,
}

impl CpiSample {
    /// The job × platform aggregation key of this sample.
    pub fn key(&self) -> JobKey {
        JobKey::new(self.jobname.clone(), self.platforminfo.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let s = CpiSample {
            task: TaskHandle(7),
            jobname: "websearch".into(),
            platforminfo: "westmere".into(),
            timestamp: 1_000_000,
            cpu_usage: 1.5,
            cpi: 1.8,
            l3_mpki: 2.0,
            class: TaskClass::latency_sensitive(),
        };
        let k = s.key();
        assert_eq!(k, JobKey::new("websearch", "westmere"));
        assert_eq!(k.to_string(), "websearch@westmere");
    }

    #[test]
    fn class_eligibility() {
        assert!(!TaskClass::latency_sensitive().throttle_eligible());
        assert!(TaskClass::batch().throttle_eligible());
        assert!(TaskClass::best_effort().throttle_eligible());
        assert!(TaskClass::latency_sensitive().protected);
        assert!(!TaskClass::batch().protected);
    }

    #[test]
    fn handle_display() {
        assert_eq!(TaskHandle(255).to_string(), "tff");
    }
}
