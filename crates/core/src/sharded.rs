//! Sharded spec building for parallel sample ingest.
//!
//! The aggregation service of Fig. 6 receives the cluster-wide sample
//! stream; one [`SpecBuilder`] behind a single lock becomes the choke
//! point once many collector threads feed it. [`ShardedSpecBuilder`]
//! partitions the builder by a stable hash of the (job, platform) key, so
//! concurrent ingest threads contend only when they carry samples for the
//! same shard. Because every key lives wholly inside one shard, merging
//! the per-shard spec sets reproduces exactly what one unsharded builder
//! would emit for the same sample stream (property-tested in the
//! workspace test suite).

use crate::config::Cpi2Config;
use crate::sample::{CpiSample, JobKey};
use crate::spec::CpiSpec;
use crate::specbuilder::SpecBuilder;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default shard count for the aggregation service.
pub const DEFAULT_SPEC_SHARDS: usize = 8;

/// FNV-1a over the key fields; stable across processes and platforms so
/// shard routing (and therefore any routing-dependent telemetry) is
/// reproducible run to run.
fn shard_of(job: &str, platform: &str, shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in job
        .bytes()
        .chain(std::iter::once(0xff))
        .chain(platform.bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards as u64) as usize
}

/// One partition of a [`ShardedSpecBuilder`].
#[derive(Debug)]
struct Shard {
    builder: Mutex<SpecBuilder>,
    /// Set (under the builder lock) whenever the shard ingests a sample;
    /// cleared by [`ShardedSpecBuilder::roll_period`] when the shard is
    /// rebuilt. A clean shard's roll is skipped: rolling an empty current
    /// period never touches [`SpecBuilder`] history, so its output is
    /// exactly the cached previous output.
    dirty: AtomicBool,
    /// The shard's spec set as of its last roll.
    rolled: Mutex<Vec<CpiSpec>>,
}

/// A [`SpecBuilder`] partitioned into independently locked shards keyed
/// by (job, platform), with dirty-shard tracking so idle shards are not
/// rebuilt at refresh time.
///
/// Shared-reference methods take per-shard locks, so the builder can be
/// ingested into from many threads at once. [`roll_period`] and
/// [`specs`](ShardedSpecBuilder::specs) merge the shard outputs back into
/// the same sorted spec set a single [`SpecBuilder`] would produce.
///
/// [`roll_period`]: ShardedSpecBuilder::roll_period
///
/// # Examples
///
/// ```
/// use cpi2_core::{Cpi2Config, CpiSample, ShardedSpecBuilder, TaskClass, TaskHandle};
///
/// let mut config = Cpi2Config::default();
/// config.min_samples_per_task = 10;
/// let builder = ShardedSpecBuilder::new(config, 4);
/// for task in 0..5u64 {
///     for minute in 0..20 {
///         builder.add_sample(&CpiSample {
///             task: TaskHandle(task),
///             jobname: "websearch".into(),
///             platforminfo: "westmere".into(),
///             timestamp: minute * 60_000_000,
///             cpu_usage: 1.0,
///             cpi: 1.8,
///             l3_mpki: 0.0,
///             class: TaskClass::latency_sensitive(),
///         });
///     }
/// }
/// let specs = builder.roll_period();
/// assert_eq!(specs.len(), 1);
/// assert!((specs[0].cpi_mean - 1.8).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct ShardedSpecBuilder {
    shards: Vec<Shard>,
    /// Wall-clock µs each shard spends producing its spec set in
    /// [`roll_period`](Self::roll_period) / [`specs`](Self::specs);
    /// disabled by default.
    shard_build_us: cpi2_telemetry::Histo,
    /// Shards whose rebuild was skipped because nothing was ingested since
    /// their last roll (also exported as `cpi_spec_shards_skipped_total`).
    skipped: AtomicU64,
    skipped_counter: cpi2_telemetry::Counter,
}

impl ShardedSpecBuilder {
    /// Creates a builder with `shards` independently locked partitions
    /// (clamped to at least one).
    pub fn new(config: Cpi2Config, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedSpecBuilder {
            shards: (0..n)
                .map(|_| Shard {
                    builder: Mutex::new(SpecBuilder::new(config.clone())),
                    // A fresh shard rolls to an empty spec set, which is
                    // exactly the initial cache — so it starts clean.
                    dirty: AtomicBool::new(false),
                    rolled: Mutex::new(Vec::new()),
                })
                .collect(),
            shard_build_us: cpi2_telemetry::Histo::default(),
            skipped: AtomicU64::new(0),
            skipped_counter: cpi2_telemetry::Counter::default(),
        }
    }

    /// Attaches telemetry: records per-shard spec-build duration under
    /// `cpi_spec_build_shard_duration_us` and skipped shard rebuilds under
    /// `cpi_spec_shards_skipped_total`.
    pub fn set_telemetry(&mut self, telemetry: &cpi2_telemetry::Telemetry) {
        self.shard_build_us = telemetry.histogram("cpi_spec_build_shard_duration_us", &[]);
        self.skipped_counter = telemetry.counter("cpi_spec_shards_skipped_total", &[]);
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard rebuilds skipped so far because the shard ingested nothing
    /// since its last roll.
    pub fn shards_skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Routes one sample to its shard and adds it to the current period.
    pub fn add_sample(&self, sample: &CpiSample) {
        let idx = shard_of(&sample.jobname, &sample.platforminfo, self.shards.len());
        // idx is h % shards.len(); `get` makes in-bounds locally evident.
        let Some(shard) = self.shards.get(idx) else {
            return;
        };
        let mut b = shard.builder.lock();
        b.add_sample(sample);
        // Under the lock, so a concurrent roll either sees the flag or
        // has not yet consumed the sample.
        shard.dirty.store(true, Ordering::Release);
    }

    /// Adds a batch, taking each shard's lock at most once.
    ///
    /// Samples are pre-bucketed by shard, which preserves the relative
    /// order of samples sharing a key — so the resulting state matches
    /// feeding the batch to [`add_sample`](Self::add_sample) one by one.
    pub fn ingest_batch(&self, samples: &[CpiSample]) {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<&CpiSample>> = vec![Vec::new(); n];
        for s in samples {
            // shard_of returns h % n, so the bucket always exists.
            if let Some(bucket) = buckets.get_mut(shard_of(&s.jobname, &s.platforminfo, n)) {
                bucket.push(s);
            }
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut b = shard.builder.lock();
            for s in bucket {
                b.add_sample(s);
            }
            shard.dirty.store(true, Ordering::Release);
        }
    }

    /// Number of samples accumulated in the current period for a key.
    pub fn period_samples(&self, key: &JobKey) -> u64 {
        let idx = shard_of(&key.job, &key.platform, self.shards.len());
        // idx is h % shards.len(); an out-of-range shard means no samples.
        self.shards
            .get(idx)
            .map_or(0, |s| s.builder.lock().period_samples(key))
    }

    /// Folds the current period into history on every *dirty* shard and
    /// returns the merged, refreshed spec set (sorted by job then
    /// platform, like [`SpecBuilder::roll_period`]).
    ///
    /// Shards that ingested nothing since their last roll are not rebuilt;
    /// their cached previous output is reused. This is exact, not an
    /// approximation: [`SpecBuilder::roll_period`] folds only the keys in
    /// the current period, so rolling an empty period leaves history (and
    /// therefore the spec set) untouched.
    pub fn roll_period(&self) -> Vec<CpiSpec> {
        let mut out: Vec<CpiSpec> = Vec::new();
        for shard in &self.shards {
            let timer = self.shard_build_us.timer();
            if shard.dirty.swap(false, Ordering::AcqRel) {
                let rolled = shard.builder.lock().roll_period();
                out.extend(rolled.iter().cloned());
                *shard.rolled.lock() = rolled;
            } else {
                self.skipped.fetch_add(1, Ordering::Relaxed);
                self.skipped_counter.inc();
                out.extend(shard.rolled.lock().iter().cloned());
            }
            timer.stop();
        }
        Self::sort_specs(&mut out);
        out
    }

    /// Current merged spec set from history (only eligible keys).
    pub fn specs(&self) -> Vec<CpiSpec> {
        let mut out: Vec<CpiSpec> = Vec::new();
        for shard in &self.shards {
            let timer = self.shard_build_us.timer();
            out.extend(shard.builder.lock().specs());
            timer.stop();
        }
        Self::sort_specs(&mut out);
        out
    }

    /// Keys are disjoint across shards, so a plain re-sort reproduces
    /// the unsharded builder's ordering exactly.
    fn sort_specs(out: &mut [CpiSpec]) {
        out.sort_by(|a, b| {
            (a.jobname.as_str(), a.platforminfo.as_str())
                .cmp(&(b.jobname.as_str(), b.platforminfo.as_str()))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{TaskClass, TaskHandle};

    fn sample(job: &str, platform: &str, task: u64, cpi: f64) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: job.into(),
            platforminfo: platform.into(),
            timestamp: 0,
            cpu_usage: 1.0,
            cpi,
            l3_mpki: 1.0,
            class: TaskClass::batch(),
        }
    }

    fn config() -> Cpi2Config {
        Cpi2Config {
            min_samples_per_task: 10,
            ..Cpi2Config::default()
        }
    }

    #[test]
    fn matches_unsharded_builder() {
        let sharded = ShardedSpecBuilder::new(config(), 4);
        let mut plain = SpecBuilder::new(config());
        let jobs = ["websearch", "maps", "batchjob", "video"];
        for (j, job) in jobs.iter().enumerate() {
            for t in 0..6u64 {
                for i in 0..15 {
                    let s = sample(
                        job,
                        "westmere",
                        t,
                        1.0 + j as f64 * 0.25 + 0.01 * (i % 3) as f64,
                    );
                    sharded.add_sample(&s);
                    plain.add_sample(&s);
                }
            }
        }
        assert_eq!(sharded.roll_period(), plain.roll_period());
        assert_eq!(sharded.specs(), plain.specs());
    }

    #[test]
    fn batch_ingest_matches_single_sample_path() {
        let a = ShardedSpecBuilder::new(config(), 3);
        let b = ShardedSpecBuilder::new(config(), 3);
        let batch: Vec<CpiSample> = (0..6u64)
            .flat_map(|t| (0..12).map(move |i| sample("j", "p", t, 1.5 + 0.01 * (i % 5) as f64)))
            .collect();
        a.ingest_batch(&batch);
        for s in &batch {
            b.add_sample(s);
        }
        assert_eq!(a.roll_period(), b.roll_period());
    }

    #[test]
    fn routing_is_stable() {
        let n = 7;
        let first = shard_of("job-a", "westmere", n);
        for _ in 0..100 {
            assert_eq!(shard_of("job-a", "westmere", n), first);
        }
        // The separator byte keeps ("ab", "c") and ("a", "bc") apart.
        assert_ne!(
            shard_of("ab", "c", usize::MAX),
            shard_of("a", "bc", usize::MAX)
        );
    }

    #[test]
    fn concurrent_ingest() {
        use std::sync::Arc;
        let b = Arc::new(ShardedSpecBuilder::new(config(), 4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        b.add_sample(&sample("shared", "p", t, 1.0 + 0.001 * (i % 10) as f64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.period_samples(&JobKey::new("shared", "p")), 400);
    }

    #[test]
    fn clean_shards_skip_rebuild_with_identical_output() {
        let sharded = ShardedSpecBuilder::new(config(), 4);
        let mut plain = SpecBuilder::new(config());
        for job in ["websearch", "maps", "batchjob", "video"] {
            for t in 0..6u64 {
                for i in 0..15 {
                    let s = sample(job, "westmere", t, 1.2 + 0.01 * (i % 3) as f64);
                    sharded.add_sample(&s);
                    plain.add_sample(&s);
                }
            }
        }
        assert_eq!(sharded.roll_period(), plain.roll_period());
        // A refresh with no new samples skips every shard yet still
        // reproduces the unsharded builder exactly.
        let before = sharded.shards_skipped();
        assert_eq!(sharded.roll_period(), plain.roll_period());
        assert_eq!(sharded.shards_skipped() - before, 4);
    }

    #[test]
    fn ingest_redirties_only_touched_shards() {
        let sharded = ShardedSpecBuilder::new(config(), 4);
        let mut plain = SpecBuilder::new(config());
        for job in ["websearch", "maps", "batchjob", "video"] {
            for t in 0..6u64 {
                for i in 0..15 {
                    let s = sample(job, "westmere", t, 1.2 + 0.01 * (i % 3) as f64);
                    sharded.add_sample(&s);
                    plain.add_sample(&s);
                }
            }
        }
        sharded.roll_period();
        plain.roll_period();
        // New samples for one key dirty exactly one shard; the other
        // three are served from cache, and the merged output still
        // matches the unsharded builder (whose untouched keys keep their
        // previous-period eligibility).
        for t in 0..6u64 {
            for i in 0..15 {
                let s = sample("websearch", "westmere", t, 1.5 + 0.01 * (i % 3) as f64);
                sharded.add_sample(&s);
                plain.add_sample(&s);
            }
        }
        let before = sharded.shards_skipped();
        assert_eq!(sharded.roll_period(), plain.roll_period());
        assert_eq!(sharded.shards_skipped() - before, 3);
        // Batch ingest dirties shards the same way.
        let batch: Vec<CpiSample> = (0..6u64)
            .flat_map(|t| {
                (0..15).map(move |i| sample("maps", "westmere", t, 1.1 + 0.01 * (i % 3) as f64))
            })
            .collect();
        sharded.ingest_batch(&batch);
        for s in &batch {
            plain.add_sample(s);
        }
        let before = sharded.shards_skipped();
        assert_eq!(sharded.roll_period(), plain.roll_period());
        assert_eq!(sharded.shards_skipped() - before, 3);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let b = ShardedSpecBuilder::new(config(), 0);
        assert_eq!(b.num_shards(), 1);
        b.add_sample(&sample("j", "p", 0, 1.0));
        assert_eq!(b.period_samples(&JobKey::new("j", "p")), 1);
    }
}
