//! Sharded spec building for parallel sample ingest.
//!
//! The aggregation service of Fig. 6 receives the cluster-wide sample
//! stream; one [`SpecBuilder`] behind a single lock becomes the choke
//! point once many collector threads feed it. [`ShardedSpecBuilder`]
//! partitions the builder by a stable hash of the (job, platform) key, so
//! concurrent ingest threads contend only when they carry samples for the
//! same shard. Because every key lives wholly inside one shard, merging
//! the per-shard spec sets reproduces exactly what one unsharded builder
//! would emit for the same sample stream (property-tested in the
//! workspace test suite).

use crate::config::Cpi2Config;
use crate::sample::{CpiSample, JobKey};
use crate::spec::CpiSpec;
use crate::specbuilder::SpecBuilder;
use parking_lot::Mutex;

/// Default shard count for the aggregation service.
pub const DEFAULT_SPEC_SHARDS: usize = 8;

/// FNV-1a over the key fields; stable across processes and platforms so
/// shard routing (and therefore any routing-dependent telemetry) is
/// reproducible run to run.
fn shard_of(job: &str, platform: &str, shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in job
        .bytes()
        .chain(std::iter::once(0xff))
        .chain(platform.bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % shards as u64) as usize
}

/// A [`SpecBuilder`] partitioned into independently locked shards keyed
/// by (job, platform).
///
/// Shared-reference methods take per-shard locks, so the builder can be
/// ingested into from many threads at once. [`roll_period`] and
/// [`specs`](ShardedSpecBuilder::specs) merge the shard outputs back into
/// the same sorted spec set a single [`SpecBuilder`] would produce.
///
/// [`roll_period`]: ShardedSpecBuilder::roll_period
///
/// # Examples
///
/// ```
/// use cpi2_core::{Cpi2Config, CpiSample, ShardedSpecBuilder, TaskClass, TaskHandle};
///
/// let mut config = Cpi2Config::default();
/// config.min_samples_per_task = 10;
/// let builder = ShardedSpecBuilder::new(config, 4);
/// for task in 0..5u64 {
///     for minute in 0..20 {
///         builder.add_sample(&CpiSample {
///             task: TaskHandle(task),
///             jobname: "websearch".into(),
///             platforminfo: "westmere".into(),
///             timestamp: minute * 60_000_000,
///             cpu_usage: 1.0,
///             cpi: 1.8,
///             l3_mpki: 0.0,
///             class: TaskClass::latency_sensitive(),
///         });
///     }
/// }
/// let specs = builder.roll_period();
/// assert_eq!(specs.len(), 1);
/// assert!((specs[0].cpi_mean - 1.8).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct ShardedSpecBuilder {
    shards: Vec<Mutex<SpecBuilder>>,
    /// Wall-clock µs each shard spends producing its spec set in
    /// [`merge`](Self::merge); disabled by default.
    shard_build_us: cpi2_telemetry::Histo,
}

impl ShardedSpecBuilder {
    /// Creates a builder with `shards` independently locked partitions
    /// (clamped to at least one).
    pub fn new(config: Cpi2Config, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedSpecBuilder {
            shards: (0..n)
                .map(|_| Mutex::new(SpecBuilder::new(config.clone())))
                .collect(),
            shard_build_us: cpi2_telemetry::Histo::default(),
        }
    }

    /// Attaches telemetry: records per-shard spec-build duration under
    /// `cpi_spec_build_shard_duration_us`.
    pub fn set_telemetry(&mut self, telemetry: &cpi2_telemetry::Telemetry) {
        self.shard_build_us = telemetry.histogram("cpi_spec_build_shard_duration_us", &[]);
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Routes one sample to its shard and adds it to the current period.
    pub fn add_sample(&self, sample: &CpiSample) {
        let idx = shard_of(&sample.jobname, &sample.platforminfo, self.shards.len());
        // lint: allow(slice-index) — idx is h % shards.len(), always in bounds.
        self.shards[idx].lock().add_sample(sample);
    }

    /// Adds a batch, taking each shard's lock at most once.
    ///
    /// Samples are pre-bucketed by shard, which preserves the relative
    /// order of samples sharing a key — so the resulting state matches
    /// feeding the batch to [`add_sample`](Self::add_sample) one by one.
    pub fn ingest_batch(&self, samples: &[CpiSample]) {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<&CpiSample>> = vec![Vec::new(); n];
        for s in samples {
            // lint: allow(slice-index) — shard_of returns h % n, always in bounds.
            buckets[shard_of(&s.jobname, &s.platforminfo, n)].push(s);
        }
        for (shard, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            let mut b = shard.lock();
            for s in bucket {
                b.add_sample(s);
            }
        }
    }

    /// Number of samples accumulated in the current period for a key.
    pub fn period_samples(&self, key: &JobKey) -> u64 {
        let idx = shard_of(&key.job, &key.platform, self.shards.len());
        // lint: allow(slice-index) — idx is h % shards.len(), always in bounds.
        self.shards[idx].lock().period_samples(key)
    }

    /// Folds the current period into history on every shard and returns
    /// the merged, refreshed spec set (sorted by job then platform, like
    /// [`SpecBuilder::roll_period`]).
    pub fn roll_period(&self) -> Vec<CpiSpec> {
        self.merge(|b| b.roll_period())
    }

    /// Current merged spec set from history (only eligible keys).
    pub fn specs(&self) -> Vec<CpiSpec> {
        self.merge(|b| b.specs())
    }

    fn merge(&self, mut per_shard: impl FnMut(&mut SpecBuilder) -> Vec<CpiSpec>) -> Vec<CpiSpec> {
        let mut out: Vec<CpiSpec> = Vec::new();
        for shard in &self.shards {
            let timer = self.shard_build_us.timer();
            out.extend(per_shard(&mut shard.lock()));
            timer.stop();
        }
        // Keys are disjoint across shards, so a plain re-sort reproduces
        // the unsharded builder's ordering exactly.
        out.sort_by(|a, b| {
            (a.jobname.as_str(), a.platforminfo.as_str())
                .cmp(&(b.jobname.as_str(), b.platforminfo.as_str()))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{TaskClass, TaskHandle};

    fn sample(job: &str, platform: &str, task: u64, cpi: f64) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: job.into(),
            platforminfo: platform.into(),
            timestamp: 0,
            cpu_usage: 1.0,
            cpi,
            l3_mpki: 1.0,
            class: TaskClass::batch(),
        }
    }

    fn config() -> Cpi2Config {
        Cpi2Config {
            min_samples_per_task: 10,
            ..Cpi2Config::default()
        }
    }

    #[test]
    fn matches_unsharded_builder() {
        let sharded = ShardedSpecBuilder::new(config(), 4);
        let mut plain = SpecBuilder::new(config());
        let jobs = ["websearch", "maps", "batchjob", "video"];
        for (j, job) in jobs.iter().enumerate() {
            for t in 0..6u64 {
                for i in 0..15 {
                    let s = sample(
                        job,
                        "westmere",
                        t,
                        1.0 + j as f64 * 0.25 + 0.01 * (i % 3) as f64,
                    );
                    sharded.add_sample(&s);
                    plain.add_sample(&s);
                }
            }
        }
        assert_eq!(sharded.roll_period(), plain.roll_period());
        assert_eq!(sharded.specs(), plain.specs());
    }

    #[test]
    fn batch_ingest_matches_single_sample_path() {
        let a = ShardedSpecBuilder::new(config(), 3);
        let b = ShardedSpecBuilder::new(config(), 3);
        let batch: Vec<CpiSample> = (0..6u64)
            .flat_map(|t| (0..12).map(move |i| sample("j", "p", t, 1.5 + 0.01 * (i % 5) as f64)))
            .collect();
        a.ingest_batch(&batch);
        for s in &batch {
            b.add_sample(s);
        }
        assert_eq!(a.roll_period(), b.roll_period());
    }

    #[test]
    fn routing_is_stable() {
        let n = 7;
        let first = shard_of("job-a", "westmere", n);
        for _ in 0..100 {
            assert_eq!(shard_of("job-a", "westmere", n), first);
        }
        // The separator byte keeps ("ab", "c") and ("a", "bc") apart.
        assert_ne!(
            shard_of("ab", "c", usize::MAX),
            shard_of("a", "bc", usize::MAX)
        );
    }

    #[test]
    fn concurrent_ingest() {
        use std::sync::Arc;
        let b = Arc::new(ShardedSpecBuilder::new(config(), 4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        b.add_sample(&sample("shared", "p", t, 1.0 + 0.001 * (i % 10) as f64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.period_samples(&JobKey::new("shared", "p")), 400);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let b = ShardedSpecBuilder::new(config(), 0);
        assert_eq!(b.num_shards(), 1);
        b.add_sample(&sample("j", "p", 0, 1.0));
        assert_eq!(b.period_samples(&JobKey::new("j", "p")), 1);
    }
}
