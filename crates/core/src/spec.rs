//! CPI specs: the learned model of a job's normal behaviour.
//!
//! §3.1: "The data aggregation component of CPI² calculates the mean and
//! standard deviation of CPI for each job, which is called its *CPI spec*
//! ... the CPI spec also acts as a predicted CPI for the normal behavior
//! of a job."

use crate::sample::JobKey;
use serde::{Deserialize, Serialize};

/// The per-job × platform aggregate of §3.1:
///
/// ```text
/// string jobname;
/// string platforminfo;
/// int64 num_samples;
/// float cpu_usage_mean;
/// float cpi_mean;
/// float cpi_stddev;
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpiSpec {
    /// Job name.
    pub jobname: String,
    /// Platform (CPU type).
    pub platforminfo: String,
    /// Number of samples behind this spec.
    pub num_samples: i64,
    /// Mean CPU usage, CPU-sec/sec.
    pub cpu_usage_mean: f64,
    /// Mean CPI.
    pub cpi_mean: f64,
    /// CPI standard deviation.
    pub cpi_stddev: f64,
}

impl CpiSpec {
    /// The job × platform key this spec predicts for.
    pub fn key(&self) -> JobKey {
        JobKey::new(self.jobname.clone(), self.platforminfo.clone())
    }

    /// The outlier threshold at `sigma` standard deviations above the mean
    /// (§4.1 flags samples "larger than the 2σ point").
    pub fn outlier_threshold(&self, sigma: f64) -> f64 {
        self.cpi_mean + sigma * self.cpi_stddev
    }

    /// How many standard deviations above the mean a CPI value sits
    /// (the x-axis of Fig. 16b). Zero stddev maps to `+∞` for any
    /// above-mean value.
    pub fn sigmas_above(&self, cpi: f64) -> f64 {
        if self.cpi_stddev > 0.0 {
            (cpi - self.cpi_mean) / self.cpi_stddev
        } else if cpi > self.cpi_mean {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// Whether the spec is statistically usable (positive spread, data
    /// behind it).
    pub fn robust(&self) -> bool {
        self.num_samples > 0
            && self.cpi_mean.is_finite()
            && self.cpi_mean > 0.0
            && self.cpi_stddev.is_finite()
            && self.cpi_stddev >= 0.0
    }
}

impl std::fmt::Display for CpiSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}@{}: CPI {:.2} ± {:.2} ({} samples)",
            self.jobname, self.platforminfo, self.cpi_mean, self.cpi_stddev, self.num_samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CpiSpec {
        CpiSpec {
            jobname: "websearch".into(),
            platforminfo: "westmere".into(),
            num_samples: 450_000,
            cpu_usage_mean: 2.0,
            cpi_mean: 1.8,
            cpi_stddev: 0.16,
        }
    }

    #[test]
    fn outlier_threshold_2sigma() {
        // Fig. 7's job: µ=1.8, σ=0.16 ⇒ 2σ point at 2.12.
        assert!((spec().outlier_threshold(2.0) - 2.12).abs() < 1e-12);
    }

    #[test]
    fn sigmas_above() {
        let s = spec();
        assert!((s.sigmas_above(2.12) - 2.0).abs() < 1e-12);
        assert!((s.sigmas_above(1.8)).abs() < 1e-12);
        assert!(s.sigmas_above(1.0) < 0.0);
    }

    #[test]
    fn sigmas_above_zero_stddev() {
        let mut s = spec();
        s.cpi_stddev = 0.0;
        assert_eq!(s.sigmas_above(2.0), f64::INFINITY);
        assert_eq!(s.sigmas_above(1.8), 0.0);
    }

    #[test]
    fn robustness() {
        assert!(spec().robust());
        let mut s = spec();
        s.num_samples = 0;
        assert!(!s.robust());
        let mut s = spec();
        s.cpi_mean = f64::NAN;
        assert!(!s.robust());
    }

    #[test]
    fn display_compact() {
        let text = spec().to_string();
        assert!(text.contains("websearch@westmere"));
        assert!(text.contains("1.80"));
    }
}
