//! Building CPI specs from sample streams, with age-weighted history.
//!
//! §3.1: specs are the per-job × platform mean/σ of CPI, recalculated
//! every 24 hours, with the previous day's contribution discounted by
//! about 0.9, and withheld for jobs with fewer than 5 tasks or fewer than
//! 100 samples per task.

use crate::config::Cpi2Config;
use crate::sample::{CpiSample, JobKey, TaskHandle};
use crate::spec::CpiSpec;
use cpi2_stats::ewma::AgeWeighted;
use cpi2_stats::summary::RunningStats;
use std::collections::{BTreeMap, HashSet};

/// Accumulates one aggregation period ("day") of samples for one key.
#[derive(Debug, Default)]
struct PeriodAccum {
    cpi: RunningStats,
    cpu: RunningStats,
    tasks: HashSet<TaskHandle>,
}

/// Long-lived per-key state across periods.
#[derive(Debug, Default)]
struct KeyHistory {
    cpi: AgeWeighted,
    cpu: AgeWeighted,
    total_samples: i64,
    /// Whether the most recent period met the §3.1 eligibility bar.
    eligible: bool,
}

/// Builds and refreshes CPI specs from the cluster-wide sample stream.
///
/// Feed samples with [`add_sample`](SpecBuilder::add_sample); at each spec
/// refresh boundary call [`roll_period`](SpecBuilder::roll_period) to fold
/// the period into age-weighted history and obtain the refreshed specs.
///
/// # Examples
///
/// ```
/// use cpi2_core::{Cpi2Config, CpiSample, SpecBuilder, TaskClass, TaskHandle};
///
/// let mut config = Cpi2Config::default();
/// config.min_samples_per_task = 10;
/// let mut builder = SpecBuilder::new(config);
/// for task in 0..5u64 {
///     for minute in 0..20 {
///         builder.add_sample(&CpiSample {
///             task: TaskHandle(task),
///             jobname: "websearch".into(),
///             platforminfo: "westmere".into(),
///             timestamp: minute * 60_000_000,
///             cpu_usage: 1.0,
///             cpi: 1.8,
///             l3_mpki: 0.0,
///             class: TaskClass::latency_sensitive(),
///         });
///     }
/// }
/// let specs = builder.roll_period();
/// assert_eq!(specs.len(), 1);
/// assert!((specs[0].cpi_mean - 1.8).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct SpecBuilder {
    config: Cpi2Config,
    // BTreeMap: period rollover and spec extraction iterate these maps,
    // and spec ordering must be stable across processes and hash seeds.
    current: BTreeMap<JobKey, PeriodAccum>,
    history: BTreeMap<JobKey, KeyHistory>,
}

impl SpecBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: Cpi2Config) -> Self {
        SpecBuilder {
            config,
            current: BTreeMap::new(),
            history: BTreeMap::new(),
        }
    }

    /// Adds one sample to the current period.
    ///
    /// Samples below the minimum CPU usage are still *aggregated* (the
    /// usage filter of §4.1 applies to outlier detection, not spec
    /// building), but non-finite CPI values are dropped.
    pub fn add_sample(&mut self, sample: &CpiSample) {
        if !sample.cpi.is_finite() || sample.cpi <= 0.0 {
            return;
        }
        let acc = self.current.entry(sample.key()).or_default();
        acc.cpi.push(sample.cpi);
        acc.cpu.push(sample.cpu_usage);
        acc.tasks.insert(sample.task);
    }

    /// Number of samples accumulated in the current period for a key.
    pub fn period_samples(&self, key: &JobKey) -> u64 {
        self.current.get(key).map_or(0, |a| a.cpi.count())
    }

    /// Folds the current period into history (with the configured age
    /// decay) and returns the refreshed spec set.
    ///
    /// Eligibility (§3.1): a spec is only emitted for keys with at least
    /// `min_tasks` distinct tasks this period and at least
    /// `min_samples_per_task × min_tasks` samples overall.
    pub fn roll_period(&mut self) -> Vec<CpiSpec> {
        for (key, acc) in std::mem::take(&mut self.current) {
            let h = self.history.entry(key).or_default();
            if acc.cpi.count() > 0 {
                h.cpi.fold_day(
                    acc.cpi.mean(),
                    acc.cpi.stddev(),
                    acc.cpi.count() as f64,
                    self.config.age_decay,
                );
                h.cpu.fold_day(
                    acc.cpu.mean(),
                    acc.cpu.stddev(),
                    acc.cpu.count() as f64,
                    self.config.age_decay,
                );
                h.total_samples += acc.cpi.count() as i64;
            }
            // Eligibility is judged per period on task count.
            h.eligible = acc.tasks.len() as u32 >= self.config.min_tasks
                && acc.cpi.count()
                    >= self.config.min_samples_per_task * self.config.min_tasks as u64;
        }
        self.specs()
    }

    /// Current spec set from history (only eligible keys).
    pub fn specs(&self) -> Vec<CpiSpec> {
        let mut out: Vec<CpiSpec> = self
            .history
            .iter()
            .filter(|(_, h)| h.eligible && !h.cpi.is_empty())
            .map(|(k, h)| CpiSpec {
                jobname: k.job.clone(),
                platforminfo: k.platform.clone(),
                num_samples: h.total_samples,
                cpu_usage_mean: h.cpu.mean(),
                cpi_mean: h.cpi.mean(),
                cpi_stddev: h.cpi.stddev(),
            })
            .collect();
        out.sort_by(|a, b| {
            (a.jobname.clone(), a.platforminfo.clone())
                .cmp(&(b.jobname.clone(), b.platforminfo.clone()))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::TaskClass;

    fn sample(job: &str, task: u64, cpi: f64) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: job.into(),
            platforminfo: "westmere".into(),
            timestamp: 0,
            cpu_usage: 1.0,
            cpi,
            l3_mpki: 1.0,
            class: TaskClass::latency_sensitive(),
        }
    }

    fn feed(b: &mut SpecBuilder, job: &str, tasks: u64, per_task: u64, cpi: f64) {
        for t in 0..tasks {
            for i in 0..per_task {
                b.add_sample(&sample(job, t, cpi + 0.001 * (i % 7) as f64));
            }
        }
    }

    #[test]
    fn spec_from_one_period() {
        let mut b = SpecBuilder::new(Cpi2Config::default());
        feed(&mut b, "websearch", 10, 100, 1.8);
        let specs = b.roll_period();
        assert_eq!(specs.len(), 1);
        let s = &specs[0];
        assert_eq!(s.jobname, "websearch");
        assert!((s.cpi_mean - 1.803).abs() < 0.01, "mean={}", s.cpi_mean);
        assert_eq!(s.num_samples, 1000);
        assert!(s.robust());
    }

    #[test]
    fn too_few_tasks_not_eligible() {
        let mut b = SpecBuilder::new(Cpi2Config::default());
        feed(&mut b, "tiny", 4, 500, 1.0); // 4 tasks < 5 minimum.
        assert!(b.roll_period().is_empty());
    }

    #[test]
    fn too_few_samples_not_eligible() {
        let mut b = SpecBuilder::new(Cpi2Config::default());
        feed(&mut b, "sparse", 10, 10, 1.0); // 100 samples < 500 needed.
        assert!(b.roll_period().is_empty());
    }

    #[test]
    fn age_weighting_shifts_toward_recent() {
        let cfg = Cpi2Config {
            min_samples_per_task: 10,
            ..Cpi2Config::default()
        };
        let mut b = SpecBuilder::new(cfg);
        for _ in 0..5 {
            feed(&mut b, "j", 5, 20, 1.0);
            b.roll_period();
        }
        for _ in 0..5 {
            feed(&mut b, "j", 5, 20, 2.0);
            b.roll_period();
        }
        let specs = b.specs();
        assert!(specs[0].cpi_mean > 1.55, "mean={}", specs[0].cpi_mean);
    }

    #[test]
    fn separate_specs_per_platform() {
        let cfg = Cpi2Config {
            min_samples_per_task: 10,
            ..Cpi2Config::default()
        };
        let mut b = SpecBuilder::new(cfg);
        for t in 0..5u64 {
            for _ in 0..20 {
                b.add_sample(&sample("j", t, 1.0));
                let mut s2 = sample("j", t + 100, 2.0);
                s2.platforminfo = "sandybridge".into();
                b.add_sample(&s2);
            }
        }
        let specs = b.roll_period();
        assert_eq!(specs.len(), 2);
        let platforms: Vec<_> = specs.iter().map(|s| s.platforminfo.as_str()).collect();
        assert!(platforms.contains(&"westmere"));
        assert!(platforms.contains(&"sandybridge"));
    }

    #[test]
    fn non_finite_cpi_dropped() {
        let mut b = SpecBuilder::new(Cpi2Config::default());
        b.add_sample(&sample("j", 0, f64::NAN));
        b.add_sample(&sample("j", 0, -1.0));
        assert_eq!(b.period_samples(&JobKey::new("j", "westmere")), 0);
    }
}
