//! End-to-end incident tracing: every incident carries a trace ID whose
//! span chain records the full causal path from the first suspicious
//! sample to recovery.
//!
//! The paper's pipeline logs incidents for offline forensics (§5); a
//! resident deployment additionally needs to answer "*why* did CPI² cap
//! that task, and did the victim actually recover?" while the system is
//! running. Each incident therefore gets a deterministic [`TraceId`] and
//! a chain of [`TraceSpan`]s:
//!
//! ```text
//! sample-window → violation → identification → decision
//!                                        └→ amelioration → recovery
//! ```
//!
//! The agent records the detection-side spans as it works
//! ([`crate::Agent::take_trace_spans`]); the deployment harness appends
//! the amelioration span when it actually executes a cap, and the agent
//! closes the chain with a recovery span at the victim's first
//! non-anomalous sample after the incident. Spans carry sim-time
//! microseconds only, so the chain is bit-identical across parallelism
//! levels and with or without an attached control plane.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Deterministic identifier tying an incident to its span chain.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derives the trace ID for an incident: FNV-1a over the victim
    /// handle and detection timestamp. Stable across runs, parallelism
    /// levels, and checkpoint/restore; zero is reserved for "untraced"
    /// (pre-tracing logs deserialize to it).
    pub fn derive(victim: u64, at_us: i64) -> TraceId {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in victim
            .to_le_bytes()
            .iter()
            .chain(at_us.to_le_bytes().iter())
        {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
        // Reserve 0 for "no trace".
        TraceId(h.max(1))
    }

    /// Parses the canonical 16-hex-digit rendering.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }

    /// Whether this is the reserved "untraced" ID.
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The stage of the incident lifecycle a span covers, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TraceStage {
    /// The victim's sliding sample window accumulating 2σ flags.
    SampleWindow,
    /// The §4.1 anomaly bar was reached (violations within the window).
    Violation,
    /// Correlation / PANDA evidence scoring over co-resident suspects.
    Identification,
    /// The amelioration policy decision (cap target, or why not).
    Decision,
    /// A hard cap actually executed against the antagonist's cgroup.
    Amelioration,
    /// The victim's first non-anomalous sample after the incident.
    Recovery,
}

impl TraceStage {
    /// Stable lowercase name (used in telemetry events and the HTTP API).
    pub fn name(&self) -> &'static str {
        match self {
            TraceStage::SampleWindow => "sample_window",
            TraceStage::Violation => "violation",
            TraceStage::Identification => "identification",
            TraceStage::Decision => "decision",
            TraceStage::Amelioration => "amelioration",
            TraceStage::Recovery => "recovery",
        }
    }

    /// Position in the causal chain (spans sort by this).
    pub fn seq(&self) -> u8 {
        match self {
            TraceStage::SampleWindow => 0,
            TraceStage::Violation => 1,
            TraceStage::Identification => 2,
            TraceStage::Decision => 3,
            TraceStage::Amelioration => 4,
            TraceStage::Recovery => 5,
        }
    }
}

impl fmt::Display for TraceStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One span of an incident's trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// Lifecycle stage.
    pub stage: TraceStage,
    /// Span start, sim-time µs.
    pub start_us: i64,
    /// Span end, sim-time µs (== `start_us` for instantaneous stages).
    pub end_us: i64,
    /// Human-readable stage detail (victim, scores, action, …).
    pub detail: String,
}

impl TraceSpan {
    /// One-line rendering used for telemetry trace events.
    pub fn event_line(&self) -> String {
        format!(
            "{} stage={} start={} end={} {}",
            self.trace, self.stage, self.start_us, self.end_us, self.detail
        )
    }
}

/// Bounded, deterministic store of span chains keyed by trace ID.
///
/// Insertion order drives eviction (oldest trace dropped once `cap`
/// distinct traces are held), so the retained set is identical for
/// identical span streams regardless of wall-clock timing.
#[derive(Debug, Clone)]
pub struct TraceLog {
    spans: BTreeMap<TraceId, Vec<TraceSpan>>,
    order: VecDeque<TraceId>,
    cap: usize,
    evicted: u64,
}

/// Default maximum number of distinct traces a [`TraceLog`] retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// A log retaining at most `cap` distinct traces.
    pub fn with_capacity(cap: usize) -> TraceLog {
        TraceLog {
            spans: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
            evicted: 0,
        }
    }

    /// Appends a span to its trace's chain, evicting the oldest trace
    /// when the capacity is exceeded. Spans keep arrival order within a
    /// trace (arrival order is causal order for the agent's stream).
    pub fn record(&mut self, span: TraceSpan) {
        let id = span.trace;
        if !self.spans.contains_key(&id) {
            if self.order.len() >= self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.spans.remove(&old);
                    self.evicted += 1;
                }
            }
            self.order.push_back(id);
        }
        self.spans.entry(id).or_default().push(span);
    }

    /// The span chain for a trace, in causal order.
    pub fn get(&self, id: TraceId) -> Option<&[TraceSpan]> {
        self.spans.get(&id).map(Vec::as_slice)
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Traces evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained trace IDs, oldest first.
    pub fn ids(&self) -> impl Iterator<Item = TraceId> + '_ {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: TraceId, stage: TraceStage, at: i64) -> TraceSpan {
        TraceSpan {
            trace,
            stage,
            start_us: at,
            end_us: at,
            detail: String::new(),
        }
    }

    #[test]
    fn ids_are_deterministic_and_nonzero() {
        let a = TraceId::derive(7, 1_000_000);
        let b = TraceId::derive(7, 1_000_000);
        let c = TraceId::derive(8, 1_000_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_none());
    }

    #[test]
    fn display_parse_round_trip() {
        let id = TraceId::derive(42, 99);
        let s = id.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(TraceId::parse(&s), Some(id));
        assert_eq!(TraceId::parse("zz"), None);
        assert_eq!(TraceId::parse("00000000000000000"), None);
    }

    #[test]
    fn log_records_in_causal_order_and_evicts_oldest() {
        let mut log = TraceLog::with_capacity(2);
        let t1 = TraceId(1);
        let t2 = TraceId(2);
        let t3 = TraceId(3);
        log.record(span(t1, TraceStage::SampleWindow, 0));
        log.record(span(t1, TraceStage::Violation, 1));
        log.record(span(t2, TraceStage::SampleWindow, 2));
        log.record(span(t3, TraceStage::SampleWindow, 3));
        assert_eq!(log.len(), 2);
        assert_eq!(log.evicted(), 1);
        assert!(log.get(t1).is_none(), "oldest trace evicted");
        assert_eq!(log.get(t3).unwrap().len(), 1);
        let ids: Vec<TraceId> = log.ids().collect();
        assert_eq!(ids, vec![t2, t3]);
    }

    #[test]
    fn stage_seq_matches_causal_order() {
        let stages = [
            TraceStage::SampleWindow,
            TraceStage::Violation,
            TraceStage::Identification,
            TraceStage::Decision,
            TraceStage::Amelioration,
            TraceStage::Recovery,
        ];
        for w in stages.windows(2) {
            assert!(w[0].seq() < w[1].seq());
        }
        assert_eq!(TraceStage::Amelioration.name(), "amelioration");
    }

    #[test]
    fn span_serde_round_trip() {
        let s = span(TraceId::derive(1, 2), TraceStage::Decision, 5);
        let json = serde_json::to_string(&s).unwrap();
        let back: TraceSpan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
