//! Property-based tests for the CPI² core algorithms.

use cpi2_core::correlation::antagonist_correlation;
use cpi2_core::{
    rank_suspects, Cpi2Config, CpiSample, CpiSpec, EvidenceBook, OutlierDetector, PandaParams,
    SpecBuilder, SuspectInput, TaskClass, TaskHandle, Verdict,
};
use cpi2_stats::timeseries::TimeSeries;
use proptest::prelude::*;

fn pairs_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.01..20.0f64, 0.0..10.0f64), 0..40)
}

/// One generated minute of (victim CPI, suspect-a, suspect-b, suspect-c usage).
type UsageRow = (f64, f64, f64, f64);

fn sample(task: u64, minute: i64, cpi: f64, usage: f64) -> CpiSample {
    CpiSample {
        task: TaskHandle(task),
        jobname: "j".into(),
        platforminfo: "p".into(),
        timestamp: minute * 60_000_000,
        cpu_usage: usage,
        cpi,
        l3_mpki: 0.0,
        class: TaskClass::latency_sensitive(),
    }
}

fn spec(mean: f64, stddev: f64) -> CpiSpec {
    CpiSpec {
        jobname: "j".into(),
        platforminfo: "p".into(),
        num_samples: 10_000,
        cpu_usage_mean: 1.0,
        cpi_mean: mean,
        cpi_stddev: stddev,
    }
}

proptest! {
    #[test]
    fn correlation_bounded(pairs in pairs_strategy(), cth in 0.1..10.0f64) {
        // Defined scores stay in [-1, 1]; undefined windows (empty,
        // constant CPI, zero usage) yield None rather than a junk score.
        if let Some(c) = antagonist_correlation(&pairs, cth) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c), "c={c}");
        }
    }

    #[test]
    fn correlation_usage_scale_invariant(pairs in pairs_strategy(), k in 0.1..100.0f64, cth in 0.5..5.0f64) {
        // The §4.2 normalization makes the score invariant to scaling the
        // suspect's absolute CPU usage — including whether the window is
        // scorable at all.
        let scaled: Vec<(f64, f64)> = pairs.iter().map(|&(c, u)| (c, u * k)).collect();
        let a = antagonist_correlation(&pairs, cth);
        let b = antagonist_correlation(&scaled, cth);
        match (a, b) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}"),
            (None, None) => {}
            _ => prop_assert!(false, "scorability changed under scaling: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn correlation_sign_matches_concentration(cth in 1.0..3.0f64, hi in 3.1..20.0f64, lo in 0.05..0.9f64) {
        // All suspect usage during above-threshold CPI ⇒ positive score;
        // all during below-threshold ⇒ negative.
        let hi_cpi = cth * hi / 3.0 + cth; // strictly above cth
        let lo_cpi = cth * lo;             // strictly below cth
        let guilty = [(hi_cpi, 1.0), (lo_cpi, 0.0)];
        let innocent = [(hi_cpi, 0.0), (lo_cpi, 1.0)];
        prop_assert!(antagonist_correlation(&guilty, cth).unwrap() > 0.0);
        prop_assert!(antagonist_correlation(&innocent, cth).unwrap() < 0.0);
    }

    #[test]
    fn panda_window_one_unfiltered_ranks_like_paper(
        rows in prop::collection::vec(
            (0.01..10.0f64, 0.0..4.0f64, 0.0..4.0f64, 0.0..4.0f64),
            2..24,
        ),
        cth in 0.5..5.0f64,
        incidents in 1..4usize,
    ) {
        // ISSUE satellite: PANDA with an aggregation window of one
        // incident and filtering disabled must rank identically to the
        // paper correlator — the history contributes nothing and the
        // confidence transform (mean · W/(W+prior), Var = 0) is monotone
        // in the raw correlation.
        let params = PandaParams {
            aggregation_window: 1,
            min_overlap: 0,
            variance_weighting: false,
            ..PandaParams::default()
        };
        let ts = |f: &dyn Fn(&UsageRow) -> f64| {
            TimeSeries::from_points(
                rows.iter()
                    .enumerate()
                    .map(|(m, r)| (m as i64 * 60_000_000, f(r)))
                    .collect(),
            )
        };
        let victim = ts(&|r| r.0);
        let (u1, u2, u3) = (ts(&|r| r.1), ts(&|r| r.2), ts(&|r| r.3));
        let suspects = vec![
            SuspectInput { task: TaskHandle(1), jobname: "job-a", class: TaskClass::batch(), usage: &u1 },
            SuspectInput { task: TaskHandle(2), jobname: "job-b", class: TaskClass::best_effort(), usage: &u2 },
            SuspectInput { task: TaskHandle(3), jobname: "job-c", class: TaskClass::batch(), usage: &u3 },
        ];
        let paper = rank_suspects(&victim, &suspects, cth, 1_000);
        let mut book = EvidenceBook::new();
        for i in 0..incidents {
            // Repeats must not change the verdict either: with window = 1
            // the committed evidence can never feed back into a ranking.
            let (panda, _) = book.rank(
                &params, "victim", &victim, &suspects, cth, 1_000, i as i64,
            );
            let paper_order: Vec<TaskHandle> = paper.iter().map(|s| s.task).collect();
            let panda_order: Vec<TaskHandle> = panda.iter().map(|s| s.task).collect();
            prop_assert_eq!(&paper_order, &panda_order, "incident {}", i);
            for (p, q) in paper.iter().zip(panda.iter()) {
                prop_assert!((p.correlation - q.correlation).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn detector_never_fires_below_threshold(
        mean in 0.5..3.0f64,
        stddev in 0.01..0.5f64,
        cpis in prop::collection::vec(0.0..1.0f64, 1..50),
    ) {
        // Samples at or below mean + 2σ (scaled into that range) never flag.
        let config = Cpi2Config::default();
        let sp = spec(mean, stddev);
        let threshold = sp.outlier_threshold(config.outlier_sigma);
        let mut d = OutlierDetector::new();
        for (i, &frac) in cpis.iter().enumerate() {
            let v = d.observe(&sample(1, i as i64, frac * threshold, 1.0), &sp, &config);
            prop_assert!(matches!(v, Verdict::Normal | Verdict::SkippedLowUsage));
        }
        prop_assert_eq!(d.flag_count(), 0);
    }

    #[test]
    fn detector_requires_three_violations(
        mean in 0.5..3.0f64,
        stddev in 0.01..0.5f64,
        gap in 1i64..2,
    ) {
        let config = Cpi2Config::default();
        let sp = spec(mean, stddev);
        let outlier_cpi = sp.outlier_threshold(config.outlier_sigma) * 1.5;
        let mut d = OutlierDetector::new();
        let v1 = d.observe(&sample(1, 0, outlier_cpi, 1.0), &sp, &config);
        let v2 = d.observe(&sample(1, gap, outlier_cpi, 1.0), &sp, &config);
        let v3 = d.observe(&sample(1, 2 * gap, outlier_cpi, 1.0), &sp, &config);
        prop_assert_eq!(v1, Verdict::Flagged);
        prop_assert_eq!(v2, Verdict::Flagged);
        prop_assert_eq!(v3, Verdict::Anomalous);
    }

    #[test]
    fn detector_low_usage_always_skipped(cpi in 0.0..100.0f64, usage in 0.0..0.249f64) {
        let config = Cpi2Config::default();
        let sp = spec(1.0, 0.1);
        let mut d = OutlierDetector::new();
        let v = d.observe(&sample(1, 0, cpi, usage), &sp, &config);
        prop_assert_eq!(v, Verdict::SkippedLowUsage);
    }

    #[test]
    fn spec_builder_mean_within_sample_range(
        cpis in prop::collection::vec(0.1..10.0f64, 50..200),
    ) {
        let config = Cpi2Config {
            min_tasks: 1,
            min_samples_per_task: 1,
            ..Cpi2Config::default()
        };
        let mut b = SpecBuilder::new(config);
        let lo = cpis.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = cpis.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for (i, &c) in cpis.iter().enumerate() {
            let mut s = sample((i % 10) as u64, i as i64, c, 1.0);
            s.cpu_usage = 1.0;
            b.add_sample(&s);
        }
        let specs = b.roll_period();
        prop_assert_eq!(specs.len(), 1);
        let s = &specs[0];
        prop_assert!(s.cpi_mean >= lo - 1e-9 && s.cpi_mean <= hi + 1e-9);
        prop_assert!(s.cpi_stddev >= 0.0);
        prop_assert!(s.cpi_stddev <= (hi - lo) + 1e-9);
        prop_assert_eq!(s.num_samples, cpis.len() as i64);
    }

    #[test]
    fn spec_sigmas_inverse_of_threshold(mean in 0.1..5.0f64, stddev in 0.001..1.0f64, k in -3.0..6.0f64) {
        let s = spec(mean, stddev);
        let cpi = mean + k * stddev;
        prop_assert!((s.sigmas_above(cpi) - k).abs() < 1e-6);
        prop_assert!((s.outlier_threshold(k) - cpi).abs() < 1e-9);
    }
}

fn stream_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, f64)>> {
    // (job idx, platform idx, task idx, cpi) — small alphabets so keys
    // collide across shards and tasks repeat within a key.
    prop::collection::vec((0..5u8, 0..3u8, 0..8u8, 0.05..8.0f64), 0..300)
}

proptest! {
    #[test]
    fn sharded_builder_matches_unsharded(
        stream in stream_strategy(),
        shards in 1..7usize,
        periods in 1..4usize,
    ) {
        // The tentpole invariant: partitioning the builder by key hash
        // must not change any published spec, across multiple refresh
        // periods (history folding included).
        let config = Cpi2Config {
            min_tasks: 2,
            min_samples_per_task: 3,
            ..Cpi2Config::default()
        };
        let mut plain = SpecBuilder::new(config.clone());
        let sharded = cpi2_core::ShardedSpecBuilder::new(config, shards);
        let chunk = stream.len() / periods + 1;
        for (p, window) in stream.chunks(chunk.max(1)).enumerate() {
            for (i, &(j, pl, t, cpi)) in window.iter().enumerate() {
                let mut s = sample(t as u64, (p * chunk + i) as i64, cpi, 1.0);
                s.jobname = format!("job{j}");
                s.platforminfo = format!("plat{pl}");
                plain.add_sample(&s);
                sharded.add_sample(&s);
            }
            prop_assert_eq!(plain.roll_period(), sharded.roll_period());
        }
        prop_assert_eq!(plain.specs(), sharded.specs());
    }

    #[test]
    fn sharded_batch_ingest_matches_loop(
        stream in stream_strategy(),
        shards in 1..7usize,
    ) {
        let config = Cpi2Config {
            min_tasks: 2,
            min_samples_per_task: 3,
            ..Cpi2Config::default()
        };
        let batch: Vec<CpiSample> = stream
            .iter()
            .enumerate()
            .map(|(i, &(j, pl, t, cpi))| {
                let mut s = sample(t as u64, i as i64, cpi, 1.0);
                s.jobname = format!("job{j}");
                s.platforminfo = format!("plat{pl}");
                s
            })
            .collect();
        let one_by_one = cpi2_core::ShardedSpecBuilder::new(config.clone(), shards);
        let batched = cpi2_core::ShardedSpecBuilder::new(config, shards);
        for s in &batch {
            one_by_one.add_sample(s);
        }
        batched.ingest_batch(&batch);
        prop_assert_eq!(one_by_one.roll_period(), batched.roll_period());
    }
}
