//! Baseline files: audited legacy findings that gate nothing.
//!
//! A baseline entry is one line, `rule @ path: message`, with every
//! `:<digits>` sequence in the message normalized to `:_` — so call
//! chains embedded in transitive-pass messages don't churn the baseline
//! when unrelated edits shift line numbers. Lines starting with `#` and
//! blank lines are comments.
//!
//! [`diff`] splits findings into (new, matched); unmatched baseline
//! entries are *stale* and reported so the file shrinks as debt is paid
//! down. Matching is per-entry with multiplicity: two identical
//! findings need two identical baseline lines.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One finding's baseline key: line numbers normalized away.
pub fn key(f: &Finding) -> String {
    format!("{} @ {}: {}", f.rule.name(), f.path, normalize(&f.message))
}

/// Replaces every `:<digits>` with `:_` so embedded `file:line` chains
/// compare stably across unrelated line drift.
fn normalize(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    let mut chars = msg.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == ':' && chars.peek().is_some_and(|n| n.is_ascii_digit()) {
            while chars.peek().is_some_and(|n| n.is_ascii_digit()) {
                chars.next();
            }
            out.push('_');
        }
    }
    out
}

/// Parses a baseline file's text into entry → multiplicity.
pub fn parse(text: &str) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *out.entry(line.to_string()).or_insert(0) += 1;
    }
    out
}

/// Splits `findings` against a baseline: returns (new findings that
/// must gate, stale baseline entries with no matching finding).
pub fn diff(
    findings: &[Finding],
    baseline: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    let mut budget = baseline.clone();
    let mut fresh = Vec::new();
    for f in findings {
        let k = key(f);
        match budget.get_mut(&k) {
            Some(n) if *n > 0 => *n -= 1,
            _ => fresh.push(f.clone()),
        }
    }
    let mut stale: Vec<String> = Vec::new();
    for (k, n) in budget {
        for _ in 0..n {
            stale.push(k.clone());
        }
    }
    (fresh, stale)
}

/// Renders findings as baseline file text (sorted, with a header).
pub fn render(findings: &[Finding]) -> String {
    let mut lines: Vec<String> = findings.iter().map(key).collect();
    lines.sort();
    let mut out = String::from(
        "# cpi2-lint baseline: audited legacy findings that do not gate.\n\
         # One entry per finding, `rule @ path: message` with `:<line>`\n\
         # numbers normalized to `:_`. Regenerate with\n\
         # `cargo run -p cpi2-lint -- --workspace --write-baseline <file>`.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(path: &str, line: usize, msg: &str) -> Finding {
        Finding {
            path: path.into(),
            line,
            rule: Rule::PanicReach,
            message: msg.into(),
        }
    }

    #[test]
    fn keys_normalize_line_numbers() {
        let a = finding("a.rs", 10, "`.unwrap()` reachable: a.rs:10 → b.rs:88");
        let b = finding("a.rs", 99, "`.unwrap()` reachable: a.rs:12 → b.rs:90");
        assert_eq!(key(&a), key(&b));
        assert!(key(&a).contains("a.rs:_ → b.rs:_"));
    }

    #[test]
    fn diff_matches_with_multiplicity_and_reports_stale() {
        let f1 = finding("a.rs", 1, "x");
        let f2 = finding("a.rs", 2, "x"); // same key as f1
        let text = render(std::slice::from_ref(&f1)); // one entry
        let base = parse(&text);
        let (fresh, stale) = diff(&[f1.clone(), f2], &base);
        assert_eq!(fresh.len(), 1, "second identical finding gates");
        assert!(stale.is_empty());
        let (fresh, stale) = diff(&[], &base);
        assert!(fresh.is_empty());
        assert_eq!(stale.len(), 1, "unmatched entry is stale");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let base = parse("# header\n\nrule @ a.rs: msg\n");
        assert_eq!(base.len(), 1);
    }
}
