//! Workspace-wide call graph over the parsed files, with conservative
//! name-based resolution.
//!
//! Resolution rules (in order, first non-empty candidate set wins):
//!
//! - `self.name(…)` inside `impl T` → fns named `name` in any
//!   `impl T` block, else any impl fn named `name` (trait objects and
//!   cross-type dispatch make narrower resolution unsound);
//! - `recv.name(…)` → every impl fn named `name` in the workspace
//!   (conservative fan-out: without types we cannot narrow);
//! - `Q::name(…)` where `Q` names a workspace impl type (or `Self`) →
//!   fns named `name` in `impl Q`; a capitalized `Q` with no workspace
//!   impl is external (`Vec::new`) and resolves to nothing; a
//!   lowercase `Q` is a module path segment and resolves like a free
//!   call;
//! - `name(…)` → free fns named `name`.
//!
//! Candidates are further filtered by shape: a dotted call can only
//! land on a fn whose first parameter is `self`, and when the call's
//! argument count is reliably known (no closures / comparisons /
//! turbofish among the arguments) it must match the candidate's
//! parameter count (UFCS `Type::method(recv, …)` counts the receiver).
//! This keeps `sum_bits.load(Ordering::Relaxed)` from resolving to a
//! two-argument `FileLog::load`.
//!
//! `#[cfg(test)]` fns are excluded from the candidate index, so live
//! code never resolves into test helpers. Unresolvable calls (std,
//! vendored deps) produce no edge — the passes are whole-*workspace*,
//! not whole-universe.

use crate::model::FileModel;
use crate::parser::{CallKind, ParsedFile};
use crate::rules::{RawSite, RuleSet};
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed source file: everything the whole-program passes need.
pub struct AnalyzedFile {
    /// Workspace-relative path.
    pub path: String,
    /// The per-file rule policy (also carries sanctioning info).
    pub rules: RuleSet,
    /// Token-level model.
    pub model: FileModel,
    /// Item/fn/call structure.
    pub parsed: ParsedFile,
    /// All raw detector sites (sanctioned sites already dropped).
    pub sites: Vec<RawSite>,
}

/// Global fn id: (file index, local fn index).
pub type FnId = (usize, usize);

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Callee.
    pub to: FnId,
    /// 1-based line of the call site (in the caller's file).
    pub call_line: usize,
}

/// A call's argument count matches a candidate's parameter count; an
/// uncountable argument list (`args: None` — closures, comparisons,
/// turbofish at top level) matches anything.
fn arity_ok(args: Option<usize>, want: usize) -> bool {
    match args {
        Some(a) => a == want,
        None => true,
    }
}

/// The workspace call graph.
pub struct CallGraph {
    /// Outgoing edges per fn, sorted and deduplicated (first call site
    /// per callee wins).
    pub edges: BTreeMap<FnId, Vec<Edge>>,
}

impl CallGraph {
    /// Builds the graph over `files`.
    pub fn build(files: &[AnalyzedFile]) -> CallGraph {
        // Candidate indexes over non-test fns.
        let mut impl_fns: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut any_method: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut free_fns: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (li, f) in file.parsed.fns.iter().enumerate() {
                if f.is_test || f.body.is_none() {
                    continue;
                }
                let id = (fi, li);
                match &f.impl_type {
                    Some(ty) => {
                        impl_fns
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        any_method.entry(f.name.clone()).or_default().push(id);
                    }
                    None => free_fns.entry(f.name.clone()).or_default().push(id),
                }
            }
        }
        let impl_types: BTreeSet<&String> = impl_fns.keys().map(|(t, _)| t).collect();

        let mut edges: BTreeMap<FnId, Vec<Edge>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for call in &file.parsed.calls {
                let caller = (fi, call.caller);
                let caller_impl = file.parsed.fns[call.caller].impl_type.as_deref();
                let candidates: &[FnId] = match call.kind {
                    CallKind::SelfMethod => caller_impl
                        .and_then(|ty| impl_fns.get(&(ty.to_string(), call.name.clone())))
                        .or_else(|| any_method.get(&call.name))
                        .map_or(&[], Vec::as_slice),
                    CallKind::Method => any_method.get(&call.name).map_or(&[], Vec::as_slice),
                    CallKind::Qualified => {
                        let q = call.qualifier.as_deref().unwrap_or("");
                        let ty = if q == "Self" {
                            caller_impl.unwrap_or(q)
                        } else {
                            q
                        };
                        if let Some(c) = impl_fns.get(&(ty.to_string(), call.name.clone())) {
                            c.as_slice()
                        } else if ty.starts_with(|c: char| c.is_lowercase() || c == '_')
                            && !impl_types.contains(&ty.to_string())
                        {
                            // Module path segment: resolves like a free
                            // call.
                            free_fns.get(&call.name).map_or(&[], Vec::as_slice)
                        } else {
                            // External type (`Vec::new`, `Instant::now`).
                            &[]
                        }
                    }
                    CallKind::Free => free_fns.get(&call.name).map_or(&[], Vec::as_slice),
                };
                for &to in candidates {
                    let callee = &files[to.0].parsed.fns[to.1];
                    let shape_ok = match call.kind {
                        // A dotted call requires a `self` receiver.
                        CallKind::Method | CallKind::SelfMethod => {
                            callee.has_self && arity_ok(call.args, callee.params)
                        }
                        // UFCS passes the receiver positionally.
                        CallKind::Qualified => {
                            let want = if callee.has_self {
                                callee.params + 1
                            } else {
                                callee.params
                            };
                            arity_ok(call.args, want)
                        }
                        CallKind::Free => !callee.has_self && arity_ok(call.args, callee.params),
                    };
                    if !shape_ok {
                        continue;
                    }
                    edges.entry(caller).or_default().push(Edge {
                        to,
                        call_line: call.line,
                    });
                }
            }
        }
        for outs in edges.values_mut() {
            outs.sort();
            outs.dedup_by_key(|e| e.to);
        }
        CallGraph { edges }
    }

    /// Deterministic BFS from `entries`; returns, for every reachable
    /// fn, the predecessor step `(caller, call line)` that first reached
    /// it (entries map to `None`).
    pub fn reach(&self, entries: &[FnId]) -> BTreeMap<FnId, Option<(FnId, usize)>> {
        let mut parent: BTreeMap<FnId, Option<(FnId, usize)>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        let mut sorted = entries.to_vec();
        sorted.sort();
        sorted.dedup();
        for e in sorted {
            parent.insert(e, None);
            queue.push_back(e);
        }
        while let Some(f) = queue.pop_front() {
            if let Some(outs) = self.edges.get(&f) {
                for e in outs {
                    if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e.to) {
                        v.insert(Some((f, e.call_line)));
                        queue.push_back(e.to);
                    }
                }
            }
        }
        parent
    }

    /// The call-site chain from the entry that first reached `target`:
    /// `[(file, line), …]` of each call site, entry-side first. Empty if
    /// `target` is itself an entry.
    pub fn path_to(
        &self,
        parent: &BTreeMap<FnId, Option<(FnId, usize)>>,
        target: FnId,
    ) -> Vec<(usize, usize)> {
        let mut chain = Vec::new();
        let mut cur = target;
        while let Some(Some((pred, line))) = parent.get(&cur) {
            chain.push((pred.0, *line));
            cur = *pred;
        }
        chain.reverse();
        chain
    }
}

/// Formats a call chain plus the final site as
/// `a.rs:212 → b.rs:88` (workspace-relative paths).
pub fn format_chain(
    files: &[AnalyzedFile],
    chain: &[(usize, usize)],
    site_file: usize,
    site_line: usize,
) -> String {
    let mut parts: Vec<String> = chain
        .iter()
        .map(|&(f, l)| format!("{}:{}", files[f].path, l))
        .collect();
    parts.push(format!("{}:{}", files[site_file].path, site_line));
    parts.join(" → ")
}

/// Human name of a fn: `Type::name` or `name`, with its definition site.
pub fn fn_label(files: &[AnalyzedFile], id: FnId) -> String {
    let f = &files[id.0].parsed.fns[id.1];
    let name = match &f.impl_type {
        Some(ty) => format!("{ty}::{}", f.name),
        None => f.name.clone(),
    };
    format!("`{name}` ({}:{})", files[id.0].path, f.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::rules::collect_sites;

    fn analyze(path: &str, src: &str) -> AnalyzedFile {
        let rules = RuleSet::default();
        let model = FileModel::build(src);
        let parsed = parse(&model);
        let sites = collect_sites(&model, &rules);
        AnalyzedFile {
            path: path.to_string(),
            rules,
            model,
            parsed,
            sites,
        }
    }

    fn fn_id(files: &[AnalyzedFile], name: &str) -> FnId {
        for (fi, f) in files.iter().enumerate() {
            for (li, d) in f.parsed.fns.iter().enumerate() {
                if d.name == name {
                    return (fi, li);
                }
            }
        }
        panic!("no fn named {name}");
    }

    #[test]
    fn cross_file_resolution_and_paths() {
        let a = analyze(
            "a.rs",
            "impl Agent {\n fn ingest(&self) {\n  helper();\n }\n}",
        );
        let b = analyze("b.rs", "pub fn helper() {\n leaf();\n}\npub fn leaf() {}");
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let ingest = fn_id(&files, "ingest");
        let leaf = fn_id(&files, "leaf");
        let parent = g.reach(&[ingest]);
        assert!(parent.contains_key(&leaf), "leaf reachable through helper");
        let chain = g.path_to(&parent, leaf);
        assert_eq!(
            format_chain(&files, &chain, leaf.0, 3),
            "a.rs:3 → b.rs:2 → b.rs:3"
        );
    }

    #[test]
    fn self_method_prefers_own_impl() {
        let src = "impl A { fn run(&self) { self.step(); } fn step(&self) {} }\n\
                   impl B { fn step(&self) { loop {} } }";
        let files = vec![analyze("x.rs", src)];
        let g = CallGraph::build(&files);
        let run = fn_id(&files, "run");
        let outs = g.edges.get(&run).expect("run has edges");
        assert_eq!(outs.len(), 1, "self.step() resolves to A::step only");
        assert_eq!(
            files[0].parsed.fns[outs[0].to.1].impl_type.as_deref(),
            Some("A")
        );
    }

    #[test]
    fn external_qualified_calls_resolve_to_nothing() {
        let files = vec![analyze("x.rs", "fn f() { let v = Vec::new(); }")];
        let g = CallGraph::build(&files);
        assert!(g.edges.is_empty(), "Vec::new is external");
    }

    #[test]
    fn module_qualified_calls_resolve_to_free_fns() {
        let a = analyze("a.rs", "fn f() { interference::compute(x); }");
        let b = analyze("b.rs", "pub fn compute(x: u32) {}");
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let f = fn_id(&files, "f");
        assert_eq!(g.edges.get(&f).map_or(0, Vec::len), 1);
    }

    #[test]
    fn method_calls_do_not_resolve_to_self_less_fns() {
        // `sum_bits.load(Ordering::Relaxed)` must not resolve to a
        // two-argument associated fn named `load` (no self, wrong arity).
        let a = analyze("a.rs", "impl Cell { fn sum(&self) { self.bits.load(x); } }");
        let b = analyze(
            "b.rs",
            "impl Log { pub fn load(dir: u32, base: u32) -> u32 { dir + base } }",
        );
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let sum = fn_id(&files, "sum");
        assert!(!g.edges.contains_key(&sum), "AtomicU64::load is external");
    }

    #[test]
    fn arity_mismatch_prunes_method_candidates() {
        let a = analyze(
            "a.rs",
            "impl Cluster { fn step(&mut self) { self.m.tick(a, b, c); } }",
        );
        let b = analyze(
            "b.rs",
            "impl Harness { pub fn tick(&mut self) { let x = 1; } }",
        );
        let c = analyze(
            "c.rs",
            "impl Machine { pub fn tick(&mut self, now: u64, dt: u64, exits: &mut Vec<u32>) {} }",
        );
        let files = vec![a, b, c];
        let g = CallGraph::build(&files);
        let step = fn_id(&files, "step");
        let outs = g.edges.get(&step).expect("tick resolves");
        assert_eq!(outs.len(), 1, "only the 3-argument tick matches");
        assert_eq!(outs[0].to.0, 2);
    }

    #[test]
    fn closure_arguments_fall_back_to_name_matching() {
        let a = analyze("a.rs", "fn f(v: &V) { v.apply(|x, y| x + y); }");
        let b = analyze("b.rs", "impl V { pub fn apply(&self, g: G) -> u32 { 0 } }");
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        let f = fn_id(&files, "f");
        assert_eq!(
            g.edges.get(&f).map_or(0, Vec::len),
            1,
            "closure commas must not defeat resolution"
        );
    }

    #[test]
    fn test_fns_are_not_candidates() {
        let a = analyze("a.rs", "fn f() { helper(); }");
        let b = analyze(
            "b.rs",
            "#[cfg(test)]\nmod t { pub fn helper() { panic!(); } }",
        );
        let files = vec![a, b];
        let g = CallGraph::build(&files);
        assert!(g.edges.is_empty());
    }
}
