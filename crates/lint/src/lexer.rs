//! A hand-rolled Rust lexer: just enough tokenization for invariant
//! linting.
//!
//! The workspace vendors no `syn`, so the linter tokenizes source text
//! itself. It understands line and (nested) block comments, string /
//! raw-string / char / byte literals, numbers, identifiers, lifetimes and
//! single-character punctuation — everything needed to scan for banned
//! call patterns without being fooled by comments or string contents.
//! Comments are not discarded: they carry the inline waiver syntax, so
//! they are returned as a separate per-line side channel.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`.
    Str,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// One punctuation character (`.`, `(`, `[`, `{`, `!`, ...).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// The token text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Tok {
    /// True if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment with its source line (block comments are attributed to the
/// line they start on; each line of a multi-line block comment is
/// reported separately so waivers inside them still attach correctly).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line.
    pub line: usize,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes Rust source text. Unterminated constructs are tolerated
/// (the remainder is consumed); the linter must not panic on weird input.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start.min(i)..i].iter().collect(),
                });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                i += 2;
                let mut depth = 1usize;
                let mut text = String::new();
                let mut comment_line = line;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            out.comments.push(Comment {
                                line: comment_line,
                                text: std::mem::take(&mut text),
                            });
                            line += 1;
                            comment_line = line;
                        } else {
                            text.push(b[i]);
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: comment_line,
                    text,
                });
            }
            '"' => {
                let (ni, nl) = consume_string(&b, i, line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let (ni, nl) = consume_raw_or_byte(&b, i, line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime or char literal. A lifetime is `'ident` not
                // followed by a closing quote.
                if is_lifetime(&b, i) {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[i + 1..j].iter().collect(),
                        line,
                    });
                    i = j;
                } else {
                    // Char literal: 'x', '\n', '\u{1f}'.
                    let mut j = i + 1;
                    while j < b.len() && b[j] != '\'' {
                        if b[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                    i = (j + 1).min(b.len());
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len()
                    && (b[j].is_alphanumeric()
                        || b[j] == '_'
                        || b[j] == '.' && b.get(j + 1).is_some_and(|n| n.is_ascii_digit()))
                {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            other => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: other.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True if position `i` starts `r"`, `r#"`, `br"`, `b"`, `b'` — a raw or
/// byte string/char rather than an identifier starting with r/b.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
        while j < b.len() && b[j] == '#' {
            j += 1;
        }
    }
    j > i && j < b.len() && (b[j] == '"' || b[j] == '\'')
}

/// True if `'` at `i` starts a lifetime rather than a char literal.
fn is_lifetime(b: &[char], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if !(first.is_alphabetic() || first == '_') {
        return false;
    }
    // 'a' is a char literal; 'a followed by non-quote is a lifetime.
    let mut j = i + 1;
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    b.get(j) != Some(&'\'')
}

/// Consumes a `"…"` string starting at `i`; returns (next index, line).
fn consume_string(b: &[char], mut i: usize, mut line: usize) -> (usize, usize) {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return (i + 1, line),
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

/// Consumes a raw/byte string (`r#"…"#`, `b"…"`, `br##"…"##`, `b'…'`).
fn consume_raw_or_byte(b: &[char], mut i: usize, mut line: usize) -> (usize, usize) {
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if i < b.len() && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() {
        return (i, line);
    }
    let quote = b[i];
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            line += 1;
            i += 1;
        } else if !raw && b[i] == '\\' {
            i += 2;
        } else if b[i] == quote {
            // Raw strings close only when followed by the right number of
            // hashes.
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && j < b.len() && b[j] == '#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (j, line);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // unwrap() here is a comment\n/* panic! */ let y;");
        assert!(idents("let x = 1; // unwrap()").contains(&"x".to_string()));
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "call .unwrap() now"; let r = r"panic!";"#);
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let l = lex(r###"let s = r#"has "quotes" and unwrap()"#; next"###);
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.toks.iter().any(|t| t.is_ident("next")));
    }

    #[test]
    fn raw_string_with_two_or_more_hashes() {
        // The terminator must match the opener's hash count exactly: the
        // embedded `"#` must not close an `r##"…"##` string.
        let l = lex(r####"let s = r##"inner "# quote and panic!()"##; after"####);
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        assert!(l.toks.iter().any(|t| t.is_ident("after")));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);

        // Three hashes, multi-line body, with a fake two-hash closer inside.
        let src = "let s = r###\"line one \"## not done\nline two panic!()\"###; tail";
        let l = lex(src);
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        let tail = l.toks.iter().find(|t| t.is_ident("tail")).expect("tail");
        assert_eq!(tail.line, 2, "raw string newlines still count lines");
    }

    #[test]
    fn nested_block_comments_containing_quotes() {
        // An unbalanced quote inside a nested block comment must not put
        // the lexer into string mode; nesting still closes correctly.
        let l = lex("/* outer \" /* inner \"unclosed */ still \" comment */ ident");
        assert_eq!(l.toks.len(), 1, "{:?}", l.toks);
        assert!(l.toks[0].is_ident("ident"));

        // And a comment whose quotes *look* balanced around an unwrap()
        // must still hide it.
        let l = lex("/* \"x\" .unwrap() /* \"y\" */ */ let a = 1;");
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.toks.iter().any(|t| t.is_ident("a")));
    }

    #[test]
    fn lifetime_vs_char_in_generic_bounds() {
        // `T: 'a` in a bound is a lifetime, not an unterminated char; a
        // real char literal in the default expression stays a Str.
        let l = lex("struct S<'a, T: 'a + Clone, const C: char = 'x'> { r: &'a T }");
        let lifetimes: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        // Lifetime tokens carry the name without the leading tick.
        assert_eq!(lifetimes, vec!["a", "a", "a"], "{:?}", l.toks);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);

        // `<'static>` and a char right after a generic close.
        let l = lex("fn f() -> Box<dyn Any + 'static> { let c = 'z'; }");
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            1
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n  c");
        let lines: Vec<usize> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ ident");
        assert_eq!(l.toks.len(), 1);
        assert!(l.toks[0].is_ident("ident"));
    }

    #[test]
    fn numbers_including_float_methods() {
        // `1.0e6` is one number; `x.0` is field access (two tokens + dot).
        let l = lex("let a = 1.0e6; let b = x.0;");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.0e6"));
    }

    #[test]
    fn multiline_block_comment_lines() {
        let l = lex("/* a\n b lint: allow(panic) — x\n c */ z");
        assert_eq!(l.comments.len(), 3);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[1].text.contains("allow(panic)"));
        assert_eq!(l.toks[0].line, 3);
    }
}
