//! `cpi2-lint`: workspace invariant linter.
//!
//! Statically enforces the properties the test suite otherwise only
//! checks dynamically:
//!
//! - **D — determinism** (`cpi2-sim`, `cpi2-core`, `cpi2-pipeline`,
//!   `cpi2-stats`): no wall-clock reads outside the telemetry-gated
//!   allowlist, no `thread::spawn` outside the worker pool, no
//!   iteration over hash-ordered `HashMap`/`HashSet`, no
//!   `env::var`/random calls feeding committed sim state.
//! - **S — panic-freedom** (`cpi2-core`, `cpi2-perf`): no `.unwrap()`,
//!   `.expect(`, `panic!`-family macros or `[…]` indexing in hot paths.
//! - **L — lock discipline**: no lock acquisition while a prior guard
//!   is live in the same function scope.
//! - **T — telemetry hygiene**: metric names must be string literals.
//! - **P — hot-path allocation**: fns annotated `// lint: hot-path`
//!   must not allocate per call (`Vec::new`, `with_capacity`,
//!   `.collect()`, `vec!`) — they write into caller-owned scratch
//!   buffers instead.
//!
//! On top of the per-file rules, four **whole-program passes** run over
//! a workspace call graph (lightweight item/fn parser, name-based
//! resolution with conservative fan-out — see [`parser`] and
//! [`callgraph`]):
//!
//! - **transitive-alloc** — the full closure of every
//!   `// lint: hot-path` fn must be allocation-free;
//! - **panic-reach** — no panic site reachable from the core/perf
//!   entry points (`Agent::ingest`, `Machine::tick`, sampler `poll`);
//! - **determinism-taint** — no clock/spawn/map-iteration reachable
//!   from `Cluster::step` through helpers;
//! - **lock-cycle** — no cycle in the interprocedural lock-order graph.
//!
//! Findings are waivable inline with
//! `// lint: allow(<rule>) — <reason>`; a waiver without a reason is
//! itself a finding, as is a waiver that suppresses nothing (workspace
//! runs only — dead waivers rot). Audited legacy findings can live in a
//! baseline file ([`baseline`]) so new findings gate without churn.

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod lockorder;
pub mod model;
pub mod parser;
pub mod reach;
pub mod rules;
pub mod sarif;

pub use callgraph::{AnalyzedFile, CallGraph};
pub use reach::{EntrySpec, ProgramConfig};
pub use rules::{check_file, Finding, Rule, RuleSet};
pub use sarif::render_sarif;

use model::FileModel;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints one file's source text under `rules`; `path` is used only for
/// reporting. Per-file rules only — the whole-program passes need
/// [`lint_program`].
pub fn lint_source(path: &str, src: &str, rules: &RuleSet) -> Vec<Finding> {
    let model = FileModel::build(src);
    rules::check_file(path, &model, rules)
}

/// The rule set for a workspace-relative path, or `None` if the file is
/// out of scope (vendored code, the linter itself, generated files).
///
/// This table is the policy: which invariants each crate must uphold.
pub fn ruleset_for(rel: &str) -> Option<RuleSet> {
    let rel = rel.replace('\\', "/");
    if rel.starts_with("vendor/") || rel.starts_with("crates/lint/") {
        return None;
    }
    let mut rs = RuleSet::default();
    let determinism = |rs: &mut RuleSet| {
        rs.clock = true;
        rs.spawn = true;
        rs.map_iter = true;
        rs.env_random = true;
    };
    if rel.starts_with("crates/sim/") {
        // The fleet simulator commits state that must be bit-identical
        // across parallelism levels.
        determinism(&mut rs);
        rs.locks = true;
        rs.metric_name = true;
        if rel.ends_with("/cluster.rs") || rel.ends_with("/pool.rs") {
            // Telemetry-gated phase timing: wall time is read only to be
            // *reported*, never committed to sim state.
            rs.clock_line_allow = vec!["measure.then(Instant::now)", "use std::time::Instant"];
        }
        if rel.ends_with("/pool.rs") {
            // The worker pool is the one sanctioned spawn site.
            rs.spawn_allowed = true;
        }
    } else if rel.starts_with("crates/core/") {
        // The agent runs on every machine of the cluster: deterministic
        // *and* panic-free.
        determinism(&mut rs);
        rs.panics = true;
        rs.slice_index = true;
        rs.locks = true;
        rs.metric_name = true;
    } else if rel.starts_with("crates/pipeline/") {
        determinism(&mut rs);
        rs.locks = true;
        rs.metric_name = true;
    } else if rel.starts_with("crates/stats/") {
        determinism(&mut rs);
    } else if rel.starts_with("crates/perf/") {
        // Sampler hot path must not panic. Lock discipline is off: the
        // perf counter API's `.read()` is not a lock.
        rs.panics = true;
        rs.slice_index = true;
        rs.metric_name = true;
    } else if rel.starts_with("crates/telemetry/") {
        // Telemetry legitimately reads clocks and forwards dynamic names
        // internally; only lock discipline applies.
        rs.locks = true;
    } else if rel.starts_with("crates/serve/") {
        // The control plane must never perturb the tick stream: state
        // shared with handlers is snapshot-swapped (lock discipline),
        // and everything off the socket path stays clock-free and
        // thread-free. `env_random` is off: the binary reads
        // `std::env::args`.
        rs.clock = true;
        rs.spawn = true;
        rs.map_iter = true;
        rs.locks = true;
        rs.metric_name = true;
        if rel.ends_with("/server.rs")
            || rel.ends_with("/harness.rs")
            || rel.ends_with("/eventloop.rs")
        {
            // The sanctioned homes for wall time and threads: shard
            // spawning (server), connection deadlines/idle reaping
            // (eventloop), and tick pacing / publish-cost measurement
            // (harness). Wall time there is never committed to sim
            // state. `http.rs` and `poll.rs` stay strict: pure wire
            // grammar and a pollfd wrapper need neither clocks nor
            // threads.
            rs.spawn_allowed = true;
            rs.clock = false;
        }
    } else if rel == "crates/bench/src/sampling.rs" {
        // The statistical fleet mode draws everything — stratification,
        // shuffle order, allocation — from seeded RNG: a sampled run
        // must be reproducible from (seed, budget) alone. No clocks,
        // no env randomness, no map-iteration order, no threads.
        determinism(&mut rs);
        rs.metric_name = true;
    } else if rel.starts_with("crates/workloads/")
        || rel.starts_with("crates/bench/")
        || rel.starts_with("src/")
    {
        rs.metric_name = true;
    } else {
        return None;
    }
    // The hot-path allocation rule is opt-in per function (it only fires
    // inside `// lint: hot-path`-marked fns), so every in-scope crate
    // gets it.
    rs.hot_path_alloc = true;
    Some(rs)
}

/// The whole-program pass configuration for this workspace: the entry
/// points whose closures must stay panic-free / deterministic, and the
/// observational sinks the determinism pass does not traverse into.
pub fn workspace_program_config() -> ProgramConfig {
    ProgramConfig {
        panic_entries: vec![
            // The agent's per-window entry: runs on every machine.
            EntrySpec::new("crates/core/", Some("Agent"), "ingest"),
            EntrySpec::new("crates/core/", Some("OutlierDetector"), "observe"),
            // The simulator hot loop.
            EntrySpec::new("crates/sim/", Some("Machine"), "tick"),
            // Both sampler variants' poll paths.
            EntrySpec::new("crates/perf/", None, "poll"),
        ],
        determinism_entries: vec![EntrySpec::new("crates/sim/", Some("Cluster"), "step")],
        // Telemetry is observational: gated behind enabled checks and
        // never fed back into sim state (same exemption the per-file
        // scope table grants it).
        determinism_sinks: vec!["crates/telemetry/".to_string()],
    }
}

/// Analyzes one source file into the form the whole-program passes
/// consume.
pub fn analyze_file(path: &str, src: &str, rules: RuleSet) -> AnalyzedFile {
    let model = FileModel::build(src);
    let parsed = parser::parse(&model);
    let sites = rules::collect_sites(&model, &rules);
    AnalyzedFile {
        path: path.to_string(),
        rules,
        model,
        parsed,
        sites,
    }
}

/// Lints a whole program: per-file rules on every file, then the four
/// interprocedural passes over the shared call graph, then
/// unused-waiver detection (a waiver that suppresses nothing is dead
/// documentation and becomes a finding itself).
pub fn lint_program(files: &[AnalyzedFile], config: &ProgramConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    // (file idx, waiver line, rule name) consumed anywhere.
    let mut used: BTreeSet<(usize, usize, String)> = BTreeSet::new();

    // Per-file rules.
    for (fi, file) in files.iter().enumerate() {
        let mut file_used = Vec::new();
        findings.extend(rules::check_sites(
            &file.path,
            &file.model,
            &file.rules,
            &file.sites,
            &mut file_used,
        ));
        for (line, rule) in file_used {
            used.insert((fi, line, rule));
        }
    }

    // Whole-program passes.
    let graph = CallGraph::build(files);
    let mut pass_findings = Vec::new();
    reach::transitive_alloc(files, &graph, &mut pass_findings);
    reach::panic_reach(files, &graph, config, &mut pass_findings);
    reach::determinism_taint(files, &graph, config, &mut pass_findings);
    lockorder::lock_order(files, &graph, &mut pass_findings);
    for pf in pass_findings {
        let file = &files[pf.file];
        let mut file_used = Vec::new();
        if let Some(f) = rules::waiver_filter(
            &file.path,
            &file.model,
            pf.line,
            &pf.waiver_names,
            pf.rule,
            pf.message,
            &mut file_used,
        ) {
            findings.push(f);
        }
        for (line, rule) in file_used {
            used.insert((pf.file, line, rule));
        }
    }

    // Unused waivers: every syntactically-valid waiver must suppress
    // something, per-file or transitive.
    for (fi, file) in files.iter().enumerate() {
        for ws in file.model.waivers.values() {
            for w in ws {
                if !Rule::known_names().contains(&w.rule.as_str()) {
                    continue; // already a `waiver` finding (unknown rule)
                }
                if !used.contains(&(fi, w.line, w.rule.clone())) {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: w.line,
                        rule: Rule::Waiver,
                        message: format!(
                            "unused waiver: `lint: allow({})` suppresses nothing here — \
                             remove it (or fix the rule name)",
                            w.rule
                        ),
                    });
                }
            }
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup();
    findings
}

/// Recursively collects `.rs` files under `dir` into `out`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Loads and analyzes every in-scope source file under the workspace
/// `root`.
///
/// Only `src/` trees are scanned (crate `tests/` and `benches/` dirs are
/// integration-test code and out of scope by design).
pub fn load_workspace(root: &Path) -> io::Result<Vec<AnalyzedFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let src = c.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }

    let mut out = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(rules) = ruleset_for(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&file)?;
        out.push(analyze_file(&rel, &src, rules));
    }
    Ok(out)
}

/// Lints every in-scope source file under the workspace `root`:
/// per-file rules plus the whole-program passes under
/// [`workspace_program_config`].
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = load_workspace(root)?;
    Ok(lint_program(&files, &workspace_program_config()))
}

/// Restricts `findings` to those touching `paths` (the changed set plus
/// its reverse-dependency closure): a finding survives if its own path
/// is in the set or its message's call chain names one.
pub fn filter_to_paths(findings: Vec<Finding>, paths: &BTreeSet<String>) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| paths.contains(&f.path) || paths.iter().any(|p| f.message.contains(p.as_str())))
        .collect()
}

/// The reverse-dependency closure of `changed` (workspace-relative
/// paths): every file containing a fn from which a changed file's fn is
/// reachable, fixpointed. Used by `--changed` to lint exactly the blast
/// radius of a diff.
pub fn reverse_dependency_closure(
    files: &[AnalyzedFile],
    changed: &BTreeSet<String>,
) -> BTreeSet<String> {
    let graph = CallGraph::build(files);
    // file → set of files it calls into (via any fn edge).
    let mut calls_into: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); files.len()];
    for (&(caller_file, _), outs) in &graph.edges {
        for e in outs {
            calls_into[caller_file].insert(e.to.0);
        }
    }
    let mut in_closure: Vec<bool> = files.iter().map(|f| changed.contains(&f.path)).collect();
    loop {
        let mut grew = false;
        for fi in 0..files.len() {
            if in_closure[fi] {
                continue;
            }
            if calls_into[fi].iter().any(|&t| in_closure[t]) {
                in_closure[fi] = true;
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    files
        .iter()
        .zip(&in_closure)
        .filter(|(_, &inc)| inc)
        .map(|(f, _)| f.path.clone())
        .collect()
}

/// Renders findings one per line as `path:line: rule: message`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&f.to_string());
        s.push('\n');
    }
    s
}

/// Renders findings as a JSON array (hand-rolled: the linter takes no
/// dependencies, vendored or otherwise).
pub fn render_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"path\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.path),
            f.line,
            json_str(f.rule.name()),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Escapes `s` as a JSON string literal: backslashes, quotes, and all
/// control characters (so Windows-style paths and messages containing
/// `"` cannot break the output).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_table_covers_the_workspace() {
        let sim = ruleset_for("crates/sim/src/scheduler.rs").expect("sim in scope");
        assert!(sim.map_iter && sim.clock && !sim.panics);
        assert!(sim.hot_path_alloc);
        let core = ruleset_for("crates/core/src/agent.rs").expect("core in scope");
        assert!(core.map_iter && core.panics && core.locks);
        let perf = ruleset_for("crates/perf/src/sampler.rs").expect("perf in scope");
        assert!(perf.panics && !perf.locks && !perf.map_iter);
        assert!(ruleset_for("vendor/serde/src/lib.rs").is_none());
        assert!(ruleset_for("crates/lint/src/lexer.rs").is_none());
        let tel = ruleset_for("crates/telemetry/src/registry.rs").expect("telemetry in scope");
        assert!(tel.locks && !tel.clock);
        let serve = ruleset_for("crates/serve/src/state.rs").expect("serve in scope");
        assert!(serve.clock && serve.spawn && serve.map_iter && serve.locks);
        assert!(serve.metric_name && !serve.env_random && !serve.spawn_allowed);
        // The statistical fleet mode is held to determinism rules the
        // rest of the bench harness is exempt from: sampling must be
        // reproducible from (seed, budget) alone.
        let sampling = ruleset_for("crates/bench/src/sampling.rs").expect("sampling in scope");
        assert!(sampling.clock && sampling.env_random && sampling.map_iter && sampling.spawn);
        assert!(sampling.metric_name && !sampling.panics);
        let bench = ruleset_for("crates/bench/src/bin/sampled_fleet.rs").expect("bench in scope");
        assert!(!bench.clock && !bench.env_random && bench.metric_name);
    }

    #[test]
    fn serve_socket_modules_get_spawn_and_clock_allowances() {
        for sanctioned in [
            "crates/serve/src/server.rs",
            "crates/serve/src/harness.rs",
            "crates/serve/src/eventloop.rs",
        ] {
            let rs = ruleset_for(sanctioned).expect("serve in scope");
            assert!(rs.spawn_allowed && !rs.clock, "{sanctioned}");
            assert!(rs.locks && rs.map_iter, "{sanctioned}");
        }
        // The wire grammar and pollfd wrapper stay strict — no clock or
        // spawn allowance leaks onto the rest of the socket path.
        for strict in ["crates/serve/src/http.rs", "crates/serve/src/poll.rs"] {
            let rs = ruleset_for(strict).expect("serve in scope");
            assert!(!rs.spawn_allowed && rs.clock, "{strict}");
        }
        let routes = ruleset_for("crates/serve/src/routes.rs").expect("serve in scope");
        assert!(!routes.spawn_allowed && routes.clock);
    }

    #[test]
    fn pool_rs_gets_spawn_and_clock_allowances() {
        let pool = ruleset_for("crates/sim/src/pool.rs").expect("pool in scope");
        assert!(pool.spawn_allowed);
        assert!(!pool.clock_line_allow.is_empty());
        let machine = ruleset_for("crates/sim/src/machine.rs").expect("machine in scope");
        assert!(!machine.spawn_allowed);
        assert!(machine.clock_line_allow.is_empty());
    }

    #[test]
    fn json_escapes_specials() {
        let f = Finding {
            path: "a.rs".into(),
            line: 3,
            rule: Rule::Panic,
            message: "say \"hi\"\\\n".into(),
        };
        let j = render_json(std::slice::from_ref(&f));
        assert!(j.contains(r#""message":"say \"hi\"\\\n""#));
        assert!(render_json(&[]).trim() == "[]");
    }

    #[test]
    fn json_escapes_windows_paths_and_control_chars() {
        let f = Finding {
            path: "crates\\sim\\src\\machine.rs".into(),
            line: 1,
            rule: Rule::Clock,
            message: "bell \u{7} and del \u{1f}".into(),
        };
        let j = render_json(std::slice::from_ref(&f));
        assert!(j.contains(r#""path":"crates\\sim\\src\\machine.rs""#));
        assert!(j.contains(r#"bell \u0007 and del \u001f"#), "{j}");
        // The output must be structurally valid: balanced quotes around
        // every value, no raw control bytes.
        assert!(!j.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
    }

    #[test]
    fn unused_waiver_is_a_finding_in_program_runs() {
        let src = "// lint: allow(panic) — stale: nothing here panics\n\
                   pub fn quiet() -> u32 { 1 }\n";
        let files = vec![analyze_file(
            "crates/core/src/x.rs",
            src,
            ruleset_for("crates/core/src/x.rs").expect("in scope"),
        )];
        let findings = lint_program(&files, &ProgramConfig::default());
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].rule, Rule::Waiver);
        assert!(findings[0].message.contains("unused waiver"));
    }

    #[test]
    fn used_waiver_is_not_reported_unused() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   // lint: allow(panic) — contract: caller checked is_some\n\
                   x.unwrap()\n\
                   }\n";
        let files = vec![analyze_file(
            "crates/core/src/x.rs",
            src,
            ruleset_for("crates/core/src/x.rs").expect("in scope"),
        )];
        let findings = lint_program(&files, &ProgramConfig::default());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn reverse_closure_pulls_in_callers() {
        let a = analyze_file("a.rs", "pub fn top() { mid(); }", RuleSet::default());
        let b = analyze_file("b.rs", "pub fn mid() { leaf(); }", RuleSet::default());
        let c = analyze_file("c.rs", "pub fn leaf() {}", RuleSet::default());
        let d = analyze_file("d.rs", "pub fn unrelated() {}", RuleSet::default());
        let files = vec![a, b, c, d];
        let changed: BTreeSet<String> = ["c.rs".to_string()].into();
        let closure = reverse_dependency_closure(&files, &changed);
        assert!(closure.contains("a.rs") && closure.contains("b.rs") && closure.contains("c.rs"));
        assert!(!closure.contains("d.rs"));
    }
}
