//! `cpi2-lint`: workspace invariant linter.
//!
//! Statically enforces the properties the test suite otherwise only
//! checks dynamically:
//!
//! - **D — determinism** (`cpi2-sim`, `cpi2-core`, `cpi2-pipeline`,
//!   `cpi2-stats`): no wall-clock reads outside the telemetry-gated
//!   allowlist, no `thread::spawn` outside the worker pool, no
//!   iteration over hash-ordered `HashMap`/`HashSet`, no
//!   `env::var`/random calls feeding committed sim state.
//! - **S — panic-freedom** (`cpi2-core`, `cpi2-perf`): no `.unwrap()`,
//!   `.expect(`, `panic!`-family macros or `[…]` indexing in hot paths.
//! - **L — lock discipline**: no lock acquisition while a prior guard
//!   is live in the same function scope.
//! - **T — telemetry hygiene**: metric names must be string literals.
//! - **P — hot-path allocation**: fns annotated `// lint: hot-path`
//!   must not allocate per call (`Vec::new`, `with_capacity`,
//!   `.collect()`, `vec!`) — they write into caller-owned scratch
//!   buffers instead.
//!
//! Findings are waivable inline with
//! `// lint: allow(<rule>) — <reason>`; a waiver without a reason is
//! itself a finding.

pub mod lexer;
pub mod model;
pub mod rules;

pub use rules::{check_file, Finding, Rule, RuleSet};

use model::FileModel;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints one file's source text under `rules`; `path` is used only for
/// reporting.
pub fn lint_source(path: &str, src: &str, rules: &RuleSet) -> Vec<Finding> {
    let model = FileModel::build(src);
    check_file(path, &model, rules)
}

/// The rule set for a workspace-relative path, or `None` if the file is
/// out of scope (vendored code, the linter itself, generated files).
///
/// This table is the policy: which invariants each crate must uphold.
pub fn ruleset_for(rel: &str) -> Option<RuleSet> {
    let rel = rel.replace('\\', "/");
    if rel.starts_with("vendor/") || rel.starts_with("crates/lint/") {
        return None;
    }
    let mut rs = RuleSet::default();
    let determinism = |rs: &mut RuleSet| {
        rs.clock = true;
        rs.spawn = true;
        rs.map_iter = true;
        rs.env_random = true;
    };
    if rel.starts_with("crates/sim/") {
        // The fleet simulator commits state that must be bit-identical
        // across parallelism levels.
        determinism(&mut rs);
        rs.locks = true;
        rs.metric_name = true;
        if rel.ends_with("/cluster.rs") || rel.ends_with("/pool.rs") {
            // Telemetry-gated phase timing: wall time is read only to be
            // *reported*, never committed to sim state.
            rs.clock_line_allow = vec!["measure.then(Instant::now)", "use std::time::Instant"];
        }
        if rel.ends_with("/pool.rs") {
            // The worker pool is the one sanctioned spawn site.
            rs.spawn_allowed = true;
        }
    } else if rel.starts_with("crates/core/") {
        // The agent runs on every machine of the cluster: deterministic
        // *and* panic-free.
        determinism(&mut rs);
        rs.panics = true;
        rs.slice_index = true;
        rs.locks = true;
        rs.metric_name = true;
    } else if rel.starts_with("crates/pipeline/") {
        determinism(&mut rs);
        rs.locks = true;
        rs.metric_name = true;
    } else if rel.starts_with("crates/stats/") {
        determinism(&mut rs);
    } else if rel.starts_with("crates/perf/") {
        // Sampler hot path must not panic. Lock discipline is off: the
        // perf counter API's `.read()` is not a lock.
        rs.panics = true;
        rs.slice_index = true;
        rs.metric_name = true;
    } else if rel.starts_with("crates/telemetry/") {
        // Telemetry legitimately reads clocks and forwards dynamic names
        // internally; only lock discipline applies.
        rs.locks = true;
    } else if rel.starts_with("crates/serve/") {
        // The control plane must never perturb the tick stream: state
        // shared with handlers is snapshot-swapped (lock discipline),
        // and everything off the socket path stays clock-free and
        // thread-free. `env_random` is off: the binary reads
        // `std::env::args`.
        rs.clock = true;
        rs.spawn = true;
        rs.map_iter = true;
        rs.locks = true;
        rs.metric_name = true;
        if rel.ends_with("/server.rs") || rel.ends_with("/harness.rs") {
            // The two sanctioned homes for wall time and threads: socket
            // timeouts / worker pool (server) and tick pacing (harness).
            // Wall time there is never committed to sim state.
            rs.spawn_allowed = true;
            rs.clock = false;
        }
    } else if rel.starts_with("crates/workloads/")
        || rel.starts_with("crates/bench/")
        || rel.starts_with("src/")
    {
        rs.metric_name = true;
    } else {
        return None;
    }
    // The hot-path allocation rule is opt-in per function (it only fires
    // inside `// lint: hot-path`-marked fns), so every in-scope crate
    // gets it.
    rs.hot_path_alloc = true;
    Some(rs)
}

/// Recursively collects `.rs` files under `dir` into `out`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints every in-scope source file under the workspace `root`.
///
/// Only `src/` trees are scanned (crate `tests/` and `benches/` dirs are
/// integration-test code and out of scope by design).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let src = c.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk(&root_src, &mut files)?;
    }

    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(rules) = ruleset_for(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&file)?;
        findings.extend(lint_source(&rel, &src, &rules));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Renders findings one per line as `path:line: rule: message`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&f.to_string());
        s.push('\n');
    }
    s
}

/// Renders findings as a JSON array (hand-rolled: the linter takes no
/// dependencies, vendored or otherwise).
pub fn render_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"path\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_str(&f.path),
            f.line,
            json_str(f.rule.name()),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_table_covers_the_workspace() {
        let sim = ruleset_for("crates/sim/src/scheduler.rs").expect("sim in scope");
        assert!(sim.map_iter && sim.clock && !sim.panics);
        assert!(sim.hot_path_alloc);
        let core = ruleset_for("crates/core/src/agent.rs").expect("core in scope");
        assert!(core.map_iter && core.panics && core.locks);
        let perf = ruleset_for("crates/perf/src/sampler.rs").expect("perf in scope");
        assert!(perf.panics && !perf.locks && !perf.map_iter);
        assert!(ruleset_for("vendor/serde/src/lib.rs").is_none());
        assert!(ruleset_for("crates/lint/src/lexer.rs").is_none());
        let tel = ruleset_for("crates/telemetry/src/registry.rs").expect("telemetry in scope");
        assert!(tel.locks && !tel.clock);
        let serve = ruleset_for("crates/serve/src/state.rs").expect("serve in scope");
        assert!(serve.clock && serve.spawn && serve.map_iter && serve.locks);
        assert!(serve.metric_name && !serve.env_random && !serve.spawn_allowed);
    }

    #[test]
    fn serve_socket_modules_get_spawn_and_clock_allowances() {
        for sanctioned in ["crates/serve/src/server.rs", "crates/serve/src/harness.rs"] {
            let rs = ruleset_for(sanctioned).expect("serve in scope");
            assert!(rs.spawn_allowed && !rs.clock, "{sanctioned}");
            assert!(rs.locks && rs.map_iter, "{sanctioned}");
        }
        let routes = ruleset_for("crates/serve/src/routes.rs").expect("serve in scope");
        assert!(!routes.spawn_allowed && routes.clock);
    }

    #[test]
    fn pool_rs_gets_spawn_and_clock_allowances() {
        let pool = ruleset_for("crates/sim/src/pool.rs").expect("pool in scope");
        assert!(pool.spawn_allowed);
        assert!(!pool.clock_line_allow.is_empty());
        let machine = ruleset_for("crates/sim/src/machine.rs").expect("machine in scope");
        assert!(!machine.spawn_allowed);
        assert!(machine.clock_line_allow.is_empty());
    }

    #[test]
    fn json_escapes_specials() {
        let f = Finding {
            path: "a.rs".into(),
            line: 3,
            rule: Rule::Panic,
            message: "say \"hi\"\\\n".into(),
        };
        let j = render_json(std::slice::from_ref(&f));
        assert!(j.contains(r#""message":"say \"hi\"\\\n""#));
        assert!(render_json(&[]).trim() == "[]");
    }
}
