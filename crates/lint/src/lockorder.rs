//! Interprocedural lock-order analysis: acquisitions are collected per
//! function, held-sets propagate through the call graph, and cycles in
//! the resulting lock-order graph are reported as potential deadlocks.
//!
//! Lock identity is the receiver path text of the `.lock()` / `.read()`
//! / `.write()` call (`self.books.lock()` inside `impl SpecStore` →
//! `SpecStore.books`; a local `guard = shared.lock()` → `shared`).
//! This is name-based and conservative, like the call graph: two
//! different locks that happen to share a field name can produce a
//! false cycle (waive with the proof), and locks passed by reference
//! under a different name can be missed — the motivating cases (serve
//! handler threads vs. the tick thread, the spec store swap protocol)
//! are all named fields, which this resolves exactly.

use crate::callgraph::{AnalyzedFile, CallGraph, FnId};
use crate::lexer::TokKind;
use crate::reach::PassFinding;
use crate::rules::{let_binding_name, lock_call_at, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// One lock acquisition inside a fn body.
#[derive(Debug, Clone)]
struct Acquire {
    /// Lock identity (normalized receiver path).
    lock: String,
    /// 1-based line.
    line: usize,
}

/// What one fn does with locks, before propagation.
#[derive(Debug, Default, Clone)]
struct FnLocks {
    /// Direct acquisitions: lock identity, line, and the identities
    /// held at that point (within this fn).
    acquires: Vec<(Acquire, Vec<String>)>,
    /// Calls made while holding locks: (callee call-site line, held
    /// identities, call index into parsed.calls).
    calls_holding: Vec<(usize, Vec<String>, usize)>,
}

/// Builds the per-fn lock behavior for one file: a single forward scan
/// tracking live guards, with call sites looked up by token index.
fn fn_locks(file: &AnalyzedFile, fn_idx: usize) -> FnLocks {
    let toks = &file.model.toks;
    let parsed = &file.parsed;
    let def = &parsed.fns[fn_idx];
    let mut out = FnLocks::default();
    let Some((start, end)) = def.body else {
        return out;
    };
    // Token index → call index, for this fn's calls only.
    let calls_by_tok: BTreeMap<usize, usize> = parsed
        .calls
        .iter()
        .enumerate()
        .filter(|(_, c)| c.caller == fn_idx)
        .map(|(ci, c)| (c.tok, ci))
        .collect();
    let mut guards: Vec<(String, String, usize)> = Vec::new(); // (binding, lock id, depth)
    let mut i = start;
    while i < end {
        let d = file.model.depth[i];
        guards.retain(|&(_, _, gd)| gd <= d);
        if toks[i].is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2).map(|t| t.text.clone()) {
                guards.retain(|(g, _, _)| *g != name);
            }
        }
        if let Some(&ci) = calls_by_tok.get(&i) {
            let held: Vec<String> = guards.iter().map(|(_, l, _)| l.clone()).collect();
            if !held.is_empty() {
                out.calls_holding.push((parsed.calls[ci].line, held, ci));
            }
        }
        if lock_call_at(toks, i) {
            let lock = lock_identity(file, fn_idx, i);
            let held: Vec<String> = guards.iter().map(|(_, l, _)| l.clone()).collect();
            out.acquires.push((
                Acquire {
                    lock: lock.clone(),
                    line: toks[i].line,
                },
                held,
            ));
            let mut j = i + 3;
            while j < end && toks[j].is_punct('?') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct(';')) {
                if let Some(name) = let_binding_name(toks, i, start) {
                    if name != "_" {
                        guards.push((name, lock, d));
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Normalized identity of the lock whose `.lock()/.read()/.write()`
/// method name token is at `i`: the receiver ident chain, with a
/// leading `self` replaced by the enclosing impl type.
fn lock_identity(file: &AnalyzedFile, fn_idx: usize, i: usize) -> String {
    let toks = &file.model.toks;
    // Walk back over `ident . ident . … .` ending at the `.` before `i`.
    let mut parts: Vec<String> = Vec::new();
    let mut j = i - 1; // the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident {
            parts.push(prev.text.clone());
            if j >= 2 && toks[j - 2].is_punct('.') {
                j -= 2;
                continue;
            }
        }
        break;
    }
    parts.reverse();
    if parts.first().is_some_and(|p| p == "self") {
        let ty = file.parsed.fns[fn_idx]
            .impl_type
            .clone()
            .unwrap_or_else(|| "Self".to_string());
        parts[0] = ty;
    }
    if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    }
}

/// One lock-order edge: `from` held while acquiring `to`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct OrderEdge {
    from: String,
    to: String,
    /// Representative site: (file, line) of the acquisition (or of the
    /// call that leads to it).
    file: usize,
    line: usize,
    /// How the edge arises, for diagnostics.
    via: String,
}

/// Runs the lock-order pass: builds the order graph (direct nestings
/// plus call-propagated ones) and reports each cycle once.
pub fn lock_order(files: &[AnalyzedFile], graph: &CallGraph, out: &mut Vec<PassFinding>) {
    // Per-fn lock behavior.
    let mut locks: BTreeMap<FnId, FnLocks> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (li, def) in file.parsed.fns.iter().enumerate() {
            if def.is_test || def.body.is_none() {
                continue;
            }
            let fl = fn_locks(file, li);
            if !fl.acquires.is_empty() || !fl.calls_holding.is_empty() {
                locks.insert((fi, li), fl);
            }
        }
    }

    // Transitive acquisitions per fn: fixpoint over the call graph.
    // acq[f] = direct(f) ∪ ⋃ acq[callee]. Each entry carries a
    // representative acquisition site.
    let mut acq: BTreeMap<FnId, BTreeMap<String, (usize, usize)>> = BTreeMap::new();
    for (&id, fl) in &locks {
        let entry = acq.entry(id).or_default();
        for (a, _) in &fl.acquires {
            entry.entry(a.lock.clone()).or_insert((id.0, a.line));
        }
    }
    loop {
        let mut changed = false;
        // Snapshot keys to avoid aliasing while mutating.
        let callers: Vec<FnId> = graph.edges.keys().copied().collect();
        for caller in callers {
            let Some(outs) = graph.edges.get(&caller) else {
                continue;
            };
            let mut add: Vec<(String, (usize, usize))> = Vec::new();
            for e in outs {
                if let Some(callee_acq) = acq.get(&e.to) {
                    for (lock, &site) in callee_acq {
                        add.push((lock.clone(), site));
                    }
                }
            }
            let entry = acq.entry(caller).or_default();
            for (lock, site) in add {
                if let std::collections::btree_map::Entry::Vacant(v) = entry.entry(lock) {
                    v.insert(site);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges.
    let mut edges: BTreeSet<OrderEdge> = BTreeSet::new();
    for (&(fi, li), fl) in &locks {
        let file = &files[fi];
        // Direct: acquire B while holding A in the same fn.
        for (a, held) in &fl.acquires {
            for h in held {
                if *h != a.lock {
                    edges.insert(OrderEdge {
                        from: h.clone(),
                        to: a.lock.clone(),
                        file: fi,
                        line: a.line,
                        via: format!("{}:{}", file.path, a.line),
                    });
                }
            }
        }
        // Propagated: call g while holding A; g transitively acquires B.
        for (call_line, held, ci) in &fl.calls_holding {
            let call = &file.parsed.calls[*ci];
            debug_assert_eq!(call.caller, li);
            // Resolve the call through the graph's edges for this fn.
            let Some(outs) = graph.edges.get(&(fi, li)) else {
                continue;
            };
            for e in outs {
                if e.call_line != *call_line {
                    continue;
                }
                if let Some(callee_acq) = acq.get(&e.to) {
                    for (lock, &(sf, sl)) in callee_acq {
                        for h in held {
                            if h != lock {
                                edges.insert(OrderEdge {
                                    from: h.clone(),
                                    to: lock.clone(),
                                    file: fi,
                                    line: *call_line,
                                    via: format!(
                                        "{}:{} → {}:{}",
                                        file.path, call_line, files[sf].path, sl
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over lock identities.
    let mut adj: BTreeMap<&str, Vec<&OrderEdge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start_edge in &edges {
        // DFS from `to` back to `from` closes a cycle through
        // `start_edge`.
        let mut stack = vec![(start_edge.to.as_str(), vec![start_edge])];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == start_edge.from {
                // Canonicalize: the cycle's lock list, rotated to its
                // lexicographic minimum.
                let mut cycle: Vec<String> = path.iter().map(|e| e.from.clone()).collect();
                let min = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.as_str())
                    .map_or(0, |(i, _)| i);
                cycle.rotate_left(min);
                if !reported.insert(cycle.clone()) {
                    continue;
                }
                let desc: Vec<String> = path
                    .iter()
                    .map(|e| format!("`{}` → `{}` ({})", e.from, e.to, e.via))
                    .collect();
                let first = path[0];
                out.push(PassFinding {
                    file: first.file,
                    line: first.line,
                    rule: Rule::LockCycle,
                    waiver_names: ["lock-cycle", "nested-lock"],
                    message: format!("lock-order cycle (potential deadlock): {}", desc.join(", ")),
                });
                continue;
            }
            if !visited.insert(node) {
                continue;
            }
            if let Some(outs) = adj.get(node) {
                for e in outs {
                    let mut p = path.clone();
                    p.push(e);
                    stack.push((e.to.as_str(), p));
                }
            }
        }
    }
    out.sort_by(|a, b| (a.file, a.line, a.message.as_str()).cmp(&(b.file, b.line, &b.message)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::parser::parse;
    use crate::rules::{collect_sites, RuleSet};

    fn analyze(path: &str, src: &str) -> AnalyzedFile {
        let rules = RuleSet::default();
        let model = FileModel::build(src);
        let parsed = parse(&model);
        let sites = collect_sites(&model, &rules);
        AnalyzedFile {
            path: path.to_string(),
            rules,
            model,
            parsed,
            sites,
        }
    }

    fn run(files: &[AnalyzedFile]) -> Vec<PassFinding> {
        let graph = CallGraph::build(files);
        let mut out = Vec::new();
        lock_order(files, &graph, &mut out);
        out
    }

    #[test]
    fn direct_cycle_between_two_functions() {
        let src = "impl S {\n\
             fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }\n\
             }";
        let out = run(&[analyze("s.rs", src)]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::LockCycle);
        assert!(
            out[0].message.contains("`S.x` → `S.y`"),
            "{}",
            out[0].message
        );
        assert!(
            out[0].message.contains("`S.y` → `S.x`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "impl S {\n\
             fn a(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.x.lock(); let h = self.y.lock(); }\n\
             }";
        assert!(run(&[analyze("s.rs", src)]).is_empty());
    }

    #[test]
    fn propagated_cycle_through_a_call() {
        let src = "impl S {\n\
             fn a(&self) { let g = self.x.lock(); self.takes_y(); }\n\
             fn takes_y(&self) { let g = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }\n\
             }";
        let out = run(&[analyze("s.rs", src)]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(
            out[0].message.contains("s.rs:2 → s.rs:3"),
            "propagated edge names both sites: {}",
            out[0].message
        );
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "impl S {\n\
             fn a(&self) { let g = self.x.lock(); drop(g); let h = self.y.lock(); }\n\
             fn b(&self) { let g = self.y.lock(); let h = self.x.lock(); }\n\
             }";
        assert!(run(&[analyze("s.rs", src)]).is_empty());
    }
}
