//! CLI entry point: `cargo run -p cpi2-lint -- --workspace [--format json]`.

use cpi2_lint::{
    baseline, filter_to_paths, lint_program, load_workspace, render_json, render_sarif,
    render_text, reverse_dependency_closure, workspace_program_config,
};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cpi2-lint --workspace [--format text|json|sarif] [--root <dir>]\n\
         \x20                [--baseline <file>] [--write-baseline <file>] [--changed]\n\
         \n\
         Lints the cpi2 workspace for determinism, panic-freedom, lock\n\
         discipline and telemetry hygiene: per-file rules plus whole-program\n\
         passes (transitive hot-path allocation, panic/determinism\n\
         reachability, lock-order cycles). Exits non-zero when any unwaived,\n\
         non-baseline finding remains.\n\
         \n\
         --baseline <file>        suppress findings listed in <file>; stale\n\
         \x20                        entries are reported on stderr\n\
         --write-baseline <file>  write current findings as a new baseline\n\
         --changed                restrict to git-dirty files plus their\n\
         \x20                        reverse-dependency closure"
    );
    ExitCode::from(2)
}

/// Workspace-relative paths of files changed per git (staged, unstaged,
/// untracked, and committed-but-diverged from HEAD).
fn git_changed_paths(root: &Path) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let porcelain = Command::new("git")
        .args(["status", "--porcelain"])
        .current_dir(root)
        .output();
    if let Ok(o) = porcelain {
        for line in String::from_utf8_lossy(&o.stdout).lines() {
            // Format: `XY <path>` (or `XY <from> -> <to>` for renames).
            let path = line.get(3..).unwrap_or("");
            let path = path.rsplit(" -> ").next().unwrap_or(path).trim();
            if !path.is_empty() {
                out.insert(path.to_string());
            }
        }
    }
    let diff = Command::new("git")
        .args(["diff", "--name-only", "HEAD"])
        .current_dir(root)
        .output();
    if let Ok(o) = diff {
        for line in String::from_utf8_lossy(&o.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.to_string());
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut changed = false;
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--changed" => changed = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(f @ ("text" | "json" | "sarif")) => format = f.to_string(),
                    _ => return usage(),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return usage(),
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => baseline_path = Some(PathBuf::from(p)),
                    None => return usage(),
                }
            }
            "--write-baseline" => {
                i += 1;
                match args.get(i) {
                    Some(p) => write_baseline = Some(PathBuf::from(p)),
                    None => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }
    // --changed implies the workspace scan: the reverse-dependency
    // closure is only meaningful against the full file set.
    if !workspace && !changed {
        return usage();
    }

    // Default root: the workspace containing this crate
    // (crates/lint/../..), so the binary works from any cwd under
    // `cargo run -p cpi2-lint`.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let files = match load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cpi2-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut findings = lint_program(&files, &workspace_program_config());

    if changed {
        let dirty = git_changed_paths(&root);
        let scope = reverse_dependency_closure(&files, &dirty);
        eprintln!(
            "cpi2-lint: --changed: {} dirty file(s), {} in closure",
            dirty.len(),
            scope.len()
        );
        findings = filter_to_paths(findings, &scope);
    }

    if let Some(p) = write_baseline {
        let text = baseline::render(&findings);
        if let Err(e) = std::fs::write(&p, text) {
            eprintln!("cpi2-lint: failed to write {}: {e}", p.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cpi2-lint: wrote baseline with {} entr{} to {}",
            findings.len(),
            if findings.len() == 1 { "y" } else { "ies" },
            p.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut stale_count = 0;
    if let Some(p) = &baseline_path {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cpi2-lint: failed to read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        };
        let base = baseline::parse(&text);
        let (fresh, stale) = baseline::diff(&findings, &base);
        for s in &stale {
            eprintln!("cpi2-lint: stale baseline entry (fixed? remove it): {s}");
        }
        // Stale entries fail the run too: the baseline may only shrink,
        // never sit around able to re-absorb a regression with the same
        // key (same contract as tests/workspace_clean.rs).
        stale_count = stale.len();
        findings = fresh;
    }

    match format.as_str() {
        "json" => print!("{}", render_json(&findings)),
        "sarif" => print!("{}", render_sarif(&findings)),
        _ => {
            print!("{}", render_text(&findings));
            if findings.is_empty() {
                eprintln!("cpi2-lint: workspace clean");
            } else {
                eprintln!("cpi2-lint: {} finding(s)", findings.len());
            }
        }
    }
    if findings.is_empty() && stale_count == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
