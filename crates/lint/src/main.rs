//! CLI entry point: `cargo run -p cpi2-lint -- --workspace [--format json]`.

use cpi2_lint::{lint_workspace, render_json, render_text};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cpi2-lint --workspace [--format text|json] [--root <dir>]\n\
         \n\
         Lints the cpi2 workspace for determinism, panic-freedom, lock\n\
         discipline and telemetry hygiene. Exits non-zero when any\n\
         unwaived finding remains."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some(f @ ("text" | "json")) => format = f.to_string(),
                    _ => return usage(),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = Some(PathBuf::from(dir)),
                    None => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 1;
    }
    if !workspace {
        return usage();
    }

    // Default root: the workspace containing this crate
    // (crates/lint/../..), so the binary works from any cwd under
    // `cargo run -p cpi2-lint`.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cpi2-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match format.as_str() {
        "json" => print!("{}", render_json(&findings)),
        _ => {
            print!("{}", render_text(&findings));
            if findings.is_empty() {
                eprintln!("cpi2-lint: workspace clean");
            } else {
                eprintln!("cpi2-lint: {} finding(s)", findings.len());
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
