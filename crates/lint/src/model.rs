//! Per-file source model built on the token stream: test regions,
//! map-typed binding names, and inline waivers.

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A parsed inline waiver comment: `// lint: allow(<rule>) — <reason>`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// Whether a non-empty reason follows the rule.
    pub has_reason: bool,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
}

/// Everything the rule passes need to know about one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Brace depth *before* each token (`{` at depth d puts its contents
    /// at d+1).
    pub depth: Vec<usize>,
    /// Token-index ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Identifiers declared with `HashMap`/`HashSet` types or
    /// constructors anywhere in the file.
    pub map_names: BTreeSet<String>,
    /// Waivers by source line.
    pub waivers: BTreeMap<usize, Vec<Waiver>>,
    /// Lines carrying a `// lint: hot-path` marker: the next `fn` below
    /// each is an allocation-free hot path.
    pub hot_path_lines: Vec<usize>,
    /// Raw source lines (1-based access via [`FileModel::line_text`]),
    /// used for configured allowlist patterns.
    pub lines: Vec<String>,
}

impl FileModel {
    /// Builds the model for one file's source text.
    pub fn build(src: &str) -> FileModel {
        let Lexed { toks, comments } = lex(src);
        let depth = brace_depths(&toks);
        let test_regions = find_test_regions(&toks);
        let map_names = collect_map_names(&toks);
        let waivers = collect_waivers(&comments);
        let hot_path_lines = collect_hot_path_lines(&comments);
        let lines = src.lines().map(str::to_string).collect();
        FileModel {
            toks,
            depth,
            test_regions,
            map_names,
            waivers,
            hot_path_lines,
            lines,
        }
    }

    /// True if token index `i` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The source text of 1-based `line`, or `""`.
    pub fn line_text(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .map_or("", String::as_str)
    }

    /// The waiver (if any) covering `line` for `rule`: on the line itself,
    /// or anywhere in the contiguous block of comment-only lines directly
    /// above it (so multi-line waiver comments work).
    pub fn waiver_for(&self, line: usize, rule: &str) -> Option<&Waiver> {
        let find = |l: usize| {
            self.waivers
                .get(&l)
                .and_then(|ws| ws.iter().find(|w| w.rule == rule))
        };
        if let Some(w) = find(line) {
            return Some(w);
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let text = self.line_text(l).trim_start();
            if !(text.starts_with("//") || text.starts_with("/*") || text.starts_with('*')) {
                return None;
            }
            if let Some(w) = find(l) {
                return Some(w);
            }
        }
        None
    }
}

/// Brace depth before each token.
fn brace_depths(toks: &[Tok]) -> Vec<usize> {
    let mut out = Vec::with_capacity(toks.len());
    let mut d = 0usize;
    for t in toks {
        if t.is_punct('}') {
            d = d.saturating_sub(1);
        }
        out.push(d);
        if t.is_punct('{') {
            d += 1;
        }
    }
    out
}

/// Finds `#[cfg(test)]`-annotated items and returns their token ranges.
///
/// An annotated item extends to the end of its balanced `{ … }` block, or
/// to the first `;` for brace-less items (`use`, type aliases). Any
/// `cfg(...)` whose argument list mentions the bare word `test`
/// (`cfg(test)`, `cfg(all(test, …))`) counts.
fn find_test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < toks.len() {
        if toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
        {
            // Scan the attribute argument list for the ident `test`.
            let mut j = i + 4;
            let mut parens = 1usize;
            let mut is_test = false;
            while j < toks.len() && parens > 0 {
                if toks[j].is_punct('(') {
                    parens += 1;
                } else if toks[j].is_punct(')') {
                    parens -= 1;
                } else if toks[j].is_ident("test") {
                    is_test = true;
                }
                j += 1;
            }
            // Skip the closing `]`.
            while j < toks.len() && !toks[j].is_punct(']') {
                j += 1;
            }
            j += 1;
            if is_test {
                let end = item_end(toks, j);
                out.push((i, end));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// End (exclusive token index) of the item starting at `start`: past the
/// balanced `{…}` block, or past the first top-level `;`.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut j = start;
    while j < toks.len() {
        if toks[j].is_punct(';') {
            return j + 1;
        }
        if toks[j].is_punct('{') {
            let mut braces = 1usize;
            j += 1;
            while j < toks.len() && braces > 0 {
                if toks[j].is_punct('{') {
                    braces += 1;
                } else if toks[j].is_punct('}') {
                    braces -= 1;
                }
                j += 1;
            }
            return j;
        }
        j += 1;
    }
    j
}

/// Collects identifiers bound to `HashMap` / `HashSet` values: struct
/// fields and typed bindings (`name: HashMap<…>`, possibly through a
/// `std::collections::` path) and `let` bindings initialized from a
/// `HashMap::…` / `HashSet::…` constructor.
fn collect_map_names(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut j = i;
        while j >= 2
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && j >= 3
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        // Type position: `name : HashMap` (field, param, typed let).
        if j >= 2 && toks[j - 1].is_punct(':') && !toks[j - 2].is_punct(':') {
            if toks[j - 2].kind == TokKind::Ident {
                out.insert(toks[j - 2].text.clone());
            }
            continue;
        }
        // Constructor position: look back for `let [mut] name` within the
        // same statement.
        let mut k = j;
        while k > 0 {
            k -= 1;
            if toks[k].is_punct(';') || toks[k].is_punct('{') || toks[k].is_punct('}') {
                break;
            }
            if toks[k].is_ident("let") {
                let mut n = k + 1;
                if n < toks.len() && toks[n].is_ident("mut") {
                    n += 1;
                }
                if n < toks.len() && toks[n].kind == TokKind::Ident {
                    out.insert(toks[n].text.clone());
                }
                break;
            }
        }
    }
    out
}

/// Parses `lint: allow(<rule>)` waivers out of comment text.
fn collect_waivers(comments: &[Comment]) -> BTreeMap<usize, Vec<Waiver>> {
    let mut out: BTreeMap<usize, Vec<Waiver>> = BTreeMap::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint: allow(") {
            rest = &rest[pos + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            let tail = &rest[close + 1..];
            // A reason is any alphanumeric content after the close paren
            // (conventionally introduced by an em-dash or hyphen).
            let has_reason = tail.chars().any(|ch| ch.is_alphanumeric());
            out.entry(c.line).or_default().push(Waiver {
                rule,
                has_reason,
                line: c.line,
            });
            rest = tail;
        }
    }
    out
}

/// Finds `lint: hot-path` marker comments (the hot-path-alloc rule's
/// annotation). The marker must not be followed by `-`, so the
/// `hot-path-alloc` rule name inside a waiver is not itself a marker.
fn collect_hot_path_lines(comments: &[Comment]) -> Vec<usize> {
    const MARKER: &str = "lint: hot-path";
    let mut out = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find(MARKER) {
            rest = &rest[pos + MARKER.len()..];
            if !rest.starts_with('-') {
                out.push(c.line);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_covers_mod_body() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let m = FileModel::build(src);
        let unwrap_idx = m
            .toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(m.in_test(unwrap_idx));
        let after_idx = m
            .toks
            .iter()
            .position(|t| t.is_ident("after"))
            .expect("after");
        assert!(!m.in_test(after_idx));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }";
        let m = FileModel::build(src);
        assert_eq!(m.test_regions.len(), 1);
    }

    #[test]
    fn cfg_not_test_attrs_ignored() {
        let src = "#[cfg(feature = \"x\")]\nmod t { fn f() {} }";
        let m = FileModel::build(src);
        assert!(m.test_regions.is_empty());
    }

    #[test]
    fn map_names_from_fields_lets_and_paths() {
        let src = "struct S { books: HashMap<u32, u32>, v: Vec<u32> }\n\
                   fn f() { let mut seen = HashSet::new(); let t: std::collections::HashMap<A,B> = x; }";
        let m = FileModel::build(src);
        assert!(m.map_names.contains("books"));
        assert!(m.map_names.contains("seen"));
        assert!(m.map_names.contains("t"));
        assert!(!m.map_names.contains("v"));
    }

    #[test]
    fn waiver_parsing() {
        let src = "let x = 1; // lint: allow(map-iter) — keys are disjoint\n\
                   let y = 2; // lint: allow(panic)\n";
        let m = FileModel::build(src);
        let w = m.waiver_for(1, "map-iter").expect("waiver on line 1");
        assert!(w.has_reason);
        let w2 = m.waiver_for(2, "panic").expect("waiver on line 2");
        assert!(!w2.has_reason);
        // A trailing waiver covers only its own line: line 2 starts with
        // code, so the walk-up from line 3 stops immediately.
        assert!(m.waiver_for(2, "map-iter").is_none());
        assert!(m.waiver_for(3, "panic").is_none());
    }

    #[test]
    fn waiver_in_multiline_comment_block_covers_code_below() {
        let src = "fn f() {\n\
                   // lint: allow(panic) — documented contract: panics on\n\
                   // invalid config by design.\n\
                   cfg.validate().expect(\"valid\");\n\
                   let z = 1;\n\
                   }";
        let m = FileModel::build(src);
        assert!(m.waiver_for(4, "panic").is_some());
        // The block does not leak past the first code line.
        assert!(m.waiver_for(5, "panic").is_none());
    }

    #[test]
    fn brace_depths_track_nesting() {
        let m = FileModel::build("fn f() { if x { y(); } }");
        let y_idx = m.toks.iter().position(|t| t.is_ident("y")).expect("y");
        assert_eq!(m.depth[y_idx], 2);
    }
}
