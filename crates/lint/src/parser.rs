//! A lightweight recursive-descent item/function parser on top of the
//! lexer: just enough structure for whole-program analysis.
//!
//! Out of the token stream this recovers, per file:
//!
//! - every `fn` definition, with its name, the self type of the
//!   enclosing `impl` block (if any), its body token range, whether it
//!   sits in a `#[cfg(test)]` region, and whether it carries the
//!   `// lint: hot-path` marker;
//! - every call expression inside those bodies — free calls
//!   (`helper(…)`), qualified calls (`Type::method(…)`,
//!   `module::helper(…)`, `Self::helper(…)`) and method calls
//!   (`recv.method(…)`, with `self.method(…)` distinguished so the call
//!   graph can resolve it against the enclosing impl first).
//!
//! This is deliberately *not* a full Rust parser: generics are skipped
//! as balanced `<…>` groups, macros are opaque, and closures attribute
//! their calls to the enclosing named fn (which is the conservative
//! choice for reachability). Known precision limits are documented in
//! DESIGN.md §8.

use crate::lexer::{Tok, TokKind};
use crate::model::FileModel;

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The fn's name.
    pub name: String,
    /// Self type of the enclosing `impl` block (`impl Foo`,
    /// `impl Trait for Foo` → `Foo`), or `None` for free fns.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Body token range (exclusive of the braces), or `None` for
    /// body-less declarations (trait methods, extern decls).
    pub body: Option<(usize, usize)>,
    /// True if the first parameter is (some form of) `self`.
    pub has_self: bool,
    /// Number of non-`self` parameters.
    pub params: usize,
    /// True if the fn sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// True if a `// lint: hot-path` marker annotates this fn.
    pub is_hot_path: bool,
}

/// How a call site names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — a free (unqualified) call.
    Free,
    /// `Qual::name(…)` — qualified by a type or module path segment.
    Qualified,
    /// `recv.name(…)` — a method call on a non-`self` receiver.
    Method,
    /// `self.name(…)` — a method call on `self`.
    SelfMethod,
}

/// One call expression inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (`helper`, `tick`, …).
    pub name: String,
    /// The last path segment before `::` for [`CallKind::Qualified`]
    /// calls (`Machine` in `Machine::tick(…)`), else `None`.
    pub qualifier: Option<String>,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based line of the called name.
    pub line: usize,
    /// Token index of the called name.
    pub tok: usize,
    /// Argument count, or `None` when the argument list contains tokens
    /// that defeat comma counting (closures, comparisons, turbofish) —
    /// resolution must then fall back to name-only matching.
    pub args: Option<usize>,
    /// Index (into [`ParsedFile::fns`]) of the innermost enclosing fn.
    pub caller: usize,
}

/// Parser output for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All fn definitions, in source order.
    pub fns: Vec<FnDef>,
    /// All call sites inside fn bodies.
    pub calls: Vec<CallSite>,
}

impl ParsedFile {
    /// Index of the innermost fn whose body contains token `tok`, or
    /// `None` for file-level tokens (consts, statics, use items).
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (span, idx)
        for (i, f) in self.fns.iter().enumerate() {
            if let Some((s, e)) = f.body {
                if tok >= s && tok < e {
                    let span = e - s;
                    let better = match best {
                        Some((bs, _)) => span < bs,
                        None => true,
                    };
                    if better {
                        best = Some((span, i));
                    }
                }
            }
        }
        best.map(|(_, i)| i)
    }
}

/// Keywords that look like `ident (` but are not calls.
fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "match"
            | "for"
            | "in"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "fn"
            | "impl"
            | "use"
            | "pub"
            | "mod"
            | "as"
            | "move"
            | "ref"
            | "mut"
            | "unsafe"
            | "dyn"
            | "where"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "await"
    )
}

/// Parses the file model into fn definitions and call sites.
pub fn parse(model: &FileModel) -> ParsedFile {
    let toks = &model.toks;
    let impls = impl_blocks(toks);
    let mut out = ParsedFile::default();

    // Pass 1: fn definitions.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            // `fn(` is a function-pointer *type*, not a definition.
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind == TokKind::Ident {
                let body = fn_body(toks, i);
                let impl_type = impls
                    .iter()
                    .filter(|(_, (s, e))| i >= *s && i < *e)
                    .min_by_key(|(_, (s, e))| e - s)
                    .map(|(ty, _)| ty.clone());
                let (has_self, params) = fn_params(toks, i);
                out.fns.push(FnDef {
                    name: name_tok.text.clone(),
                    impl_type,
                    line: toks[i].line,
                    fn_tok: i,
                    body,
                    has_self,
                    params,
                    is_test: model.in_test(i),
                    is_hot_path: false,
                });
                // Continue scanning *inside* the body too: nested fns
                // are definitions of their own.
            }
        }
        i += 1;
    }

    // Hot-path markers annotate the first fn starting below them.
    for &marker in &model.hot_path_lines {
        if let Some(f) = out
            .fns
            .iter_mut()
            .filter(|f| f.line > marker)
            .min_by_key(|f| f.line)
        {
            f.is_hot_path = true;
        }
    }

    // Pass 2: call sites, attributed to the innermost enclosing fn.
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || is_call_keyword(&toks[i].text) {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if i >= 1 && toks[i - 1].is_ident("fn") {
            continue;
        }
        // The name must be followed by `(`, optionally through a
        // turbofish `::<…>`.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
        {
            j = skip_angles(toks, j + 2);
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(caller) = out.enclosing_fn(i) else {
            continue;
        };
        let (kind, qualifier) = classify_call(toks, i);
        out.calls.push(CallSite {
            name: toks[i].text.clone(),
            qualifier,
            kind,
            line: toks[i].line,
            tok: i,
            args: call_args(toks, j),
            caller,
        });
    }
    out
}

/// Given `<` at index `open`, returns the index just past the matching
/// `>` (tolerant of unbalanced input).
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct('<') {
            depth += 1;
        } else if toks[j].is_punct('>') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        } else if toks[j].is_punct(';') || toks[j].is_punct('{') {
            // Gave up: `<` was a comparison, not generics.
            return open + 1;
        }
        j += 1;
    }
    j
}

/// `(has_self, non-self param count)` of the fn whose `fn` keyword is at
/// `i`, read off its parameter list. Commas are counted at paren depth
/// zero; `<…>` in a parameter list is always generics (no comparison
/// expressions can appear there), so angle groups protect their commas.
fn fn_params(toks: &[Tok], i: usize) -> (bool, usize) {
    let mut j = i + 2; // past `fn name`
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angles(toks, j);
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return (false, 0);
    }
    // Leading self: `self`, `&self`, `&'a self`, `&mut self`, `mut self`.
    let mut s = j + 1;
    while toks
        .get(s)
        .is_some_and(|t| t.is_punct('&') || t.kind == TokKind::Lifetime || t.is_ident("mut"))
    {
        s += 1;
    }
    let has_self = toks.get(s).is_some_and(|t| t.is_ident("self"));

    let mut depth = 0usize; // ( [ {
    let mut angles = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    let mut k = j;
    let mut last_comma = false;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct('<') {
            angles += 1;
        } else if t.is_punct('>') {
            // `->` (an `fn(…) -> T` parameter type) is not a closer.
            if !(k >= 1 && toks[k - 1].is_punct('-')) {
                angles = angles.saturating_sub(1);
            }
        } else if depth == 1 && angles == 0 {
            if t.is_punct(',') {
                commas += 1;
                last_comma = true;
                k += 1;
                continue;
            }
            any = true;
        }
        last_comma = false;
        k += 1;
    }
    if !any && commas == 0 {
        return (has_self, 0);
    }
    // `(a, b)` → 2 commas+1; `(a, b,)` → trailing comma already counted.
    let mut n = if last_comma { commas } else { commas + 1 };
    if has_self {
        n = n.saturating_sub(1);
    }
    (has_self, n)
}

/// Argument count of the call whose `(` is at `open`, or `None` when the
/// arguments contain closures / comparisons / turbofish (any top-level
/// `|`, `<` or `>`), which defeat naive comma counting.
fn call_args(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    let mut k = open;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 {
            if t.is_punct('|') || t.is_punct('<') || t.is_punct('>') {
                return None;
            }
            if t.is_punct(',') {
                commas += 1;
            } else {
                any = true;
            }
        } else if depth == 0 {
            return None; // unbalanced input
        }
        k += 1;
    }
    if !any && commas == 0 {
        return Some(0);
    }
    Some(commas + 1)
}

/// Classifies the call whose name token is at `i`.
fn classify_call(toks: &[Tok], i: usize) -> (CallKind, Option<String>) {
    if i >= 1 && toks[i - 1].is_punct('.') {
        // `recv.name(`; `self.name(` only when `self` starts the chain.
        if i >= 2
            && toks[i - 2].is_ident("self")
            && !(i >= 3 && (toks[i - 3].is_punct('.') || toks[i - 3].is_punct(':')))
        {
            return (CallKind::SelfMethod, None);
        }
        return (CallKind::Method, None);
    }
    if i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].kind == TokKind::Ident
    {
        return (CallKind::Qualified, Some(toks[i - 3].text.clone()));
    }
    (CallKind::Free, None)
}

/// Finds `impl` blocks: (self type name, body token range).
fn impl_blocks(toks: &[Tok]) -> Vec<(String, (usize, usize))> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Collect header tokens up to the body `{`, skipping balanced
        // `<…>` generic groups.
        let mut header: Vec<usize> = Vec::new();
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            if toks[j].is_punct('<') {
                j = skip_angles(toks, j);
                continue;
            }
            header.push(j);
            j += 1;
        }
        if j >= toks.len() || toks[j].is_punct(';') {
            i = j + 1;
            continue;
        }
        let ty = self_type(toks, &header);
        // Body range: balanced braces from `j`.
        let start = j + 1;
        let mut braces = 1usize;
        let mut k = start;
        while k < toks.len() && braces > 0 {
            if toks[k].is_punct('{') {
                braces += 1;
            } else if toks[k].is_punct('}') {
                braces -= 1;
            }
            k += 1;
        }
        if let Some(ty) = ty {
            out.push((ty, (start, k.saturating_sub(1))));
        }
        i = start;
    }
    out
}

/// The self type of an impl header: the last segment of the first type
/// path after the last top-level `for` (`impl Trait for a::Foo` → `Foo`;
/// `impl Foo` → `Foo`).
fn self_type(toks: &[Tok], header: &[usize]) -> Option<String> {
    let start = header
        .iter()
        .rposition(|&t| toks[t].is_ident("for"))
        .map_or(0, |p| p + 1);
    let mut last = None;
    let mut h = start;
    while h < header.len() {
        let t = &toks[header[h]];
        if t.kind == TokKind::Ident {
            if t.is_ident("where") {
                break;
            }
            if !(t.is_ident("mut") || t.is_ident("dyn")) {
                last = Some(t.text.clone());
            }
            // Continue only through `::`.
            if h + 2 < header.len()
                && toks[header[h + 1]].is_punct(':')
                && toks[header[h + 2]].is_punct(':')
            {
                h += 3;
                continue;
            }
            break;
        } else if t.is_punct('&') || t.kind == TokKind::Lifetime {
            h += 1;
        } else {
            break;
        }
    }
    last
}

/// Token range of the `{…}` body of the fn whose `fn` keyword is at `i`
/// (exclusive of the braces), or `None` for body-less declarations.
pub fn fn_body(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    // The body `{` is the first `{` outside the parameter parens /
    // generic brackets; a `;` first means a trait method declaration.
    let mut parens = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            parens += 1;
        } else if toks[j].is_punct(')') {
            parens -= 1;
        } else if parens == 0 && toks[j].is_punct(';') {
            return None;
        } else if parens == 0 && toks[j].is_punct('{') {
            let mut braces = 1usize;
            let start = j + 1;
            let mut k = start;
            while k < toks.len() && braces > 0 {
                if toks[k].is_punct('{') {
                    braces += 1;
                } else if toks[k].is_punct('}') {
                    braces -= 1;
                }
                k += 1;
            }
            return Some((start, k.saturating_sub(1)));
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&FileModel::build(src))
    }

    #[test]
    fn fns_with_impl_types() {
        let p = parse_src(
            "struct Foo;\n\
             impl Foo { fn a(&self) {} }\n\
             impl std::fmt::Display for Foo { fn fmt(&self) {} }\n\
             fn free() {}",
        );
        let names: Vec<(String, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a".into(), Some("Foo".into())),
                ("fmt".into(), Some("Foo".into())),
                ("free".into(), None),
            ]
        );
    }

    #[test]
    fn generic_impl_headers() {
        let p = parse_src("impl<'a, T: Clone> Wrapper<'a, T> { fn get(&self) {} }");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Wrapper"));
        let p = parse_src("impl<T> Iterator for Iter<T> where T: Copy { fn next(&mut self) {} }");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Iter"));
    }

    #[test]
    fn call_kinds() {
        let p = parse_src(
            "impl Foo {\n\
             fn run(&self) {\n\
               self.step();\n\
               helper(1);\n\
               Machine::tick(m);\n\
               Self::init();\n\
               other.observe();\n\
               x.y.finish();\n\
             }\n}",
        );
        let kinds: Vec<(CallKind, &str)> =
            p.calls.iter().map(|c| (c.kind, c.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (CallKind::SelfMethod, "step"),
                (CallKind::Free, "helper"),
                (CallKind::Qualified, "tick"),
                (CallKind::Qualified, "init"),
                (CallKind::Method, "observe"),
                (CallKind::Method, "finish"),
            ]
        );
        assert_eq!(p.calls[2].qualifier.as_deref(), Some("Machine"));
        assert_eq!(p.calls[3].qualifier.as_deref(), Some("Self"));
    }

    #[test]
    fn turbofish_and_macros() {
        let p = parse_src("fn f() { let v = collect::<Vec<u32>>(it); println!(\"x\"); }");
        assert_eq!(p.calls.len(), 1);
        assert_eq!(p.calls[0].name, "collect");
    }

    #[test]
    fn calls_attribute_to_innermost_fn() {
        let p = parse_src("fn outer() { fn inner() { leaf(); } inner(); }");
        let leaf = p.calls.iter().find(|c| c.name == "leaf").expect("leaf");
        assert_eq!(p.fns[leaf.caller].name, "inner");
        let inner_call = p.calls.iter().find(|c| c.name == "inner").expect("inner");
        assert_eq!(p.fns[inner_call.caller].name, "outer");
    }

    #[test]
    fn hot_path_marker_attaches_to_next_fn() {
        let p = parse_src("fn a() {}\n// lint: hot-path\nfn b() {}\nfn c() {}");
        let hot: Vec<&str> = p
            .fns
            .iter()
            .filter(|f| f.is_hot_path)
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(hot, vec!["b"]);
    }

    #[test]
    fn param_and_arg_counts() {
        let p = parse_src(
            "impl M {\n\
             fn tick(&mut self, now: u64, dt: Dur<u64, Tick>, exits: &mut Vec<(u32, u32)>) {}\n\
             fn leaf(&self) {}\n\
             }\n\
             fn free(a: u32, b: fn(u32, u32) -> u32,) -> u32 { a }\n\
             fn caller(m: &M) { m.tick(x, y.z(1, 2), w); m.leaf(); free(1, 2); }",
        );
        let shapes: Vec<(bool, usize)> = p.fns.iter().map(|f| (f.has_self, f.params)).collect();
        assert_eq!(
            shapes,
            vec![(true, 3), (true, 0), (false, 2), (false, 1)],
            "{:?}",
            p.fns
        );
        let tick = p.calls.iter().find(|c| c.name == "tick").expect("tick");
        assert_eq!(tick.args, Some(3), "nested call commas are protected");
        let leaf = p.calls.iter().find(|c| c.name == "leaf").expect("leaf");
        assert_eq!(leaf.args, Some(0));
        let free = p.calls.iter().find(|c| c.name == "free").expect("free");
        assert_eq!(free.args, Some(2));
    }

    #[test]
    fn tricky_arguments_are_unreliable() {
        let p = parse_src("fn f() { g(|a, b| a + b); h(x < y); k(collect::<Vec<u32>>(it), 2); }");
        for name in ["g", "h", "k"] {
            let c = p.calls.iter().find(|c| c.name == name).expect(name);
            assert_eq!(c.args, None, "{name} args must be unreliable");
        }
    }

    #[test]
    fn test_region_fns_are_marked() {
        let p = parse_src("fn live() {}\n#[cfg(test)]\nmod t { fn inside() {} }");
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }
}
