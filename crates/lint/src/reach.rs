//! Whole-program reachability passes over the call graph:
//!
//! 1. **transitive-alloc** — everything reachable from a
//!    `// lint: hot-path` fn must be allocation-free, not just the
//!    annotated body;
//! 2. **panic-reach** — panic sites (`unwrap`/`expect`/`panic!`-family,
//!    slice indexing) anywhere in the closure of the configured
//!    core/perf entry points;
//! 3. **determinism-taint** — clocks, `thread::spawn`, hash-map
//!    iteration and env/randomness reachable from the configured
//!    simulator entry points through helpers.
//!
//! Each pass only reports sites the *per-file* rules do not already
//! cover (a panic in `crates/core` is a `panic` finding, not a
//! `panic-reach` one), so every diagnostic appears exactly once, and a
//! site waiver suppresses both layers. Findings carry the offending
//! call path (`a.rs:212 → b.rs:88`) from the entry fn to the site.

use crate::callgraph::{fn_label, format_chain, AnalyzedFile, CallGraph, FnId};
use crate::rules::Rule;
use std::collections::BTreeMap;

/// Selects whole-program entry points by (path prefix, impl type, fn
/// name). `type_name: None` matches free fns and methods alike.
#[derive(Debug, Clone)]
pub struct EntrySpec {
    /// Workspace-relative path prefix (`"crates/core/"`); empty matches
    /// everywhere.
    pub path_prefix: String,
    /// Impl self type the fn must belong to, or `None` for any.
    pub type_name: Option<String>,
    /// The fn name.
    pub fn_name: String,
}

impl EntrySpec {
    /// Convenience constructor.
    pub fn new(path_prefix: &str, type_name: Option<&str>, fn_name: &str) -> EntrySpec {
        EntrySpec {
            path_prefix: path_prefix.to_string(),
            type_name: type_name.map(str::to_string),
            fn_name: fn_name.to_string(),
        }
    }
}

/// Configuration for the whole-program passes.
#[derive(Debug, Clone, Default)]
pub struct ProgramConfig {
    /// Panic-reachability entry points (`Agent::ingest`,
    /// `Machine::tick`, sampler `poll`, …).
    pub panic_entries: Vec<EntrySpec>,
    /// Determinism-taint entry points (`Cluster::step`).
    pub determinism_entries: Vec<EntrySpec>,
    /// Path prefixes the determinism pass does not traverse into:
    /// observational sinks (telemetry) that never feed back into sim
    /// state. Mirrors the per-file scope table's exemption.
    pub determinism_sinks: Vec<String>,
}

/// One pass finding, before waiver filtering: the site plus the names
/// that can waive it.
#[derive(Debug, Clone)]
pub struct PassFinding {
    /// File index of the *site* (waivers attach there).
    pub file: usize,
    /// 1-based line of the site.
    pub line: usize,
    /// The pass rule reported.
    pub rule: Rule,
    /// Waiver rule names accepted at the site, priority order.
    pub waiver_names: [&'static str; 2],
    /// Full diagnostic with the call path.
    pub message: String,
}

/// Which base-rule sites each pass consumes, and whether the per-file
/// policy for `rules` already covers that site (in which case the pass
/// stays quiet — the per-file rule owns the diagnostic).
fn covered_per_file(file: &AnalyzedFile, rule: Rule) -> bool {
    match rule {
        Rule::Panic => file.rules.panics,
        Rule::SliceIndex => file.rules.slice_index,
        Rule::Clock => file.rules.clock,
        Rule::ThreadSpawn => file.rules.spawn,
        Rule::MapIter => file.rules.map_iter,
        Rule::EnvRandom => file.rules.env_random,
        _ => false,
    }
}

/// Resolves entry specs to fn ids, deterministically ordered.
pub fn find_entries(files: &[AnalyzedFile], specs: &[EntrySpec]) -> Vec<FnId> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (li, f) in file.parsed.fns.iter().enumerate() {
            if f.is_test || f.body.is_none() {
                continue;
            }
            for s in specs {
                if !file.path.starts_with(&s.path_prefix) {
                    continue;
                }
                if f.name != s.fn_name {
                    continue;
                }
                if let Some(ty) = &s.type_name {
                    if f.impl_type.as_deref() != Some(ty.as_str()) {
                        continue;
                    }
                }
                out.push((fi, li));
                break;
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Shared walk: from each entry, flag every reachable site whose base
/// rule is in `base_rules` and not already covered per-file, attaching
/// the call path. `skip_entry_fn` drops sites in the entry's own body
/// (used by transitive-alloc, where the per-file hot-path rule owns
/// the annotated body). `sink_prefixes` cuts traversal into those
/// paths.
#[allow(clippy::too_many_arguments)]
fn reach_pass(
    files: &[AnalyzedFile],
    graph: &CallGraph,
    entries: &[FnId],
    base_rules: &[Rule],
    pass_rule: Rule,
    waiver_name: &'static str,
    what: &str,
    sink_prefixes: &[String],
    skip_entry_sites: bool,
    out: &mut Vec<PassFinding>,
) {
    // Prune sink files by rebuilding a filtered edge view on the fly.
    let blocked = |id: FnId| {
        sink_prefixes
            .iter()
            .any(|p| files[id.0].path.starts_with(p.as_str()))
    };
    let mut seen: BTreeMap<(usize, usize, Rule), ()> = BTreeMap::new();
    for &entry in entries {
        // Per-entry BFS so each finding's path starts at a named entry.
        let mut parent: BTreeMap<FnId, Option<(FnId, usize)>> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        parent.insert(entry, None);
        queue.push_back(entry);
        while let Some(f) = queue.pop_front() {
            if let Some(outs) = graph.edges.get(&f) {
                for e in outs {
                    if !parent.contains_key(&e.to) && !blocked(e.to) {
                        parent.insert(e.to, Some((f, e.call_line)));
                        queue.push_back(e.to);
                    }
                }
            }
        }
        let mut reached: Vec<FnId> = parent.keys().copied().collect();
        reached.sort();
        for id in reached {
            if skip_entry_sites && files[id.0].parsed.fns[id.1].is_hot_path {
                continue;
            }
            let file = &files[id.0];
            let Some((body_s, body_e)) = file.parsed.fns[id.1].body else {
                continue;
            };
            for s in &file.sites {
                if s.tok < body_s || s.tok >= body_e {
                    continue;
                }
                if !base_rules.contains(&s.rule) || covered_per_file(file, s.rule) {
                    continue;
                }
                // Attribute to the innermost fn only: a site in a nested
                // fn belongs to that fn's own reachability.
                if file.parsed.enclosing_fn(s.tok) != Some(id.1) {
                    continue;
                }
                if seen.insert((id.0, s.tok, pass_rule), ()).is_some() {
                    continue;
                }
                let chain = graph.path_to(&parent, id);
                let via = format_chain(files, &chain, id.0, s.line);
                out.push(PassFinding {
                    file: id.0,
                    line: s.line,
                    rule: pass_rule,
                    waiver_names: [base_name(s.rule), waiver_name],
                    message: format!(
                        "{} {what} reachable from {}: {via}",
                        s.pattern,
                        fn_label(files, entry),
                    ),
                });
            }
        }
    }
}

fn base_name(rule: Rule) -> &'static str {
    rule.name()
}

/// Pass 1: transitive hot-path allocation.
pub fn transitive_alloc(files: &[AnalyzedFile], graph: &CallGraph, out: &mut Vec<PassFinding>) {
    let mut entries = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (li, f) in file.parsed.fns.iter().enumerate() {
            if f.is_hot_path && !f.is_test && f.body.is_some() {
                entries.push((fi, li));
            }
        }
    }
    // The annotated body itself is the per-file rule's job; callees are
    // ours. `skip_entry_sites` also skips *other* hot fns reached
    // transitively — each is its own entry.
    reach_pass(
        files,
        graph,
        &entries,
        &[Rule::HotPathAlloc],
        Rule::TransitiveAlloc,
        "transitive-alloc",
        "per-call allocation",
        &[],
        true,
        out,
    );
}

/// Pass 2: panic reachability from the configured entry points.
pub fn panic_reach(
    files: &[AnalyzedFile],
    graph: &CallGraph,
    config: &ProgramConfig,
    out: &mut Vec<PassFinding>,
) {
    let entries = find_entries(files, &config.panic_entries);
    reach_pass(
        files,
        graph,
        &entries,
        &[Rule::Panic, Rule::SliceIndex],
        Rule::PanicReach,
        "panic-reach",
        "panic site",
        &[],
        false,
        out,
    );
}

/// Pass 3: determinism taint from the configured entry points, not
/// traversing into observational sinks.
pub fn determinism_taint(
    files: &[AnalyzedFile],
    graph: &CallGraph,
    config: &ProgramConfig,
    out: &mut Vec<PassFinding>,
) {
    let entries = find_entries(files, &config.determinism_entries);
    reach_pass(
        files,
        graph,
        &entries,
        &[
            Rule::Clock,
            Rule::ThreadSpawn,
            Rule::MapIter,
            Rule::EnvRandom,
        ],
        Rule::DeterminismTaint,
        "determinism-taint",
        "determinism hazard",
        &config.determinism_sinks,
        false,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::model::FileModel;
    use crate::parser::parse;
    use crate::rules::{collect_sites, RuleSet};

    fn analyze(path: &str, src: &str, rules: RuleSet) -> AnalyzedFile {
        let model = FileModel::build(src);
        let parsed = parse(&model);
        let sites = collect_sites(&model, &rules);
        AnalyzedFile {
            path: path.to_string(),
            rules,
            model,
            parsed,
            sites,
        }
    }

    #[test]
    fn transitive_alloc_two_hops() {
        let src = "// lint: hot-path\n\
                   fn tick() { mid(); }\n\
                   fn mid() { leaf(); }\n\
                   fn leaf() { let v = Vec::new(); }";
        let files = vec![analyze("sim.rs", src, RuleSet::default())];
        let graph = CallGraph::build(&files);
        let mut out = Vec::new();
        transitive_alloc(&files, &graph, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::TransitiveAlloc);
        assert!(
            out[0].message.contains("sim.rs:2 → sim.rs:3 → sim.rs:4"),
            "full path: {}",
            out[0].message
        );
    }

    #[test]
    fn panic_reach_skips_per_file_covered() {
        let src = "impl Agent { fn ingest(&self) { helper(); } }\n\
                   fn helper() { x.unwrap(); }";
        let covered = RuleSet {
            panics: true,
            ..Default::default()
        };
        let entries = vec![EntrySpec::new("", Some("Agent"), "ingest")];
        let config = ProgramConfig {
            panic_entries: entries,
            ..Default::default()
        };

        // Per-file panic rule on: the pass stays quiet.
        let files = vec![analyze("a.rs", src, covered)];
        let graph = CallGraph::build(&files);
        let mut out = Vec::new();
        panic_reach(&files, &graph, &config, &mut out);
        assert!(out.is_empty(), "{out:#?}");

        // Per-file panic rule off (another crate): the pass reports.
        let files = vec![analyze("a.rs", src, RuleSet::default())];
        let graph = CallGraph::build(&files);
        let mut out = Vec::new();
        panic_reach(&files, &graph, &config, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(
            out[0].message.contains("a.rs:1 → a.rs:2"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn determinism_taint_honors_sinks() {
        let a = analyze(
            "crates/sim/src/cluster.rs",
            "impl Cluster { fn step(&mut self) { observe_tick(); } }",
            RuleSet::default(),
        );
        let b = analyze(
            "crates/telemetry/src/registry.rs",
            "pub fn observe_tick() { let t = Instant::now(); }",
            RuleSet::default(),
        );
        let config = ProgramConfig {
            determinism_entries: vec![EntrySpec::new("crates/sim/", Some("Cluster"), "step")],
            determinism_sinks: vec!["crates/telemetry/".to_string()],
            ..Default::default()
        };
        let files = vec![a, b];
        let graph = CallGraph::build(&files);
        let mut out = Vec::new();
        determinism_taint(&files, &graph, &config, &mut out);
        assert!(out.is_empty(), "sink not traversed: {out:#?}");

        let config2 = ProgramConfig {
            determinism_sinks: Vec::new(),
            ..config
        };
        let mut out = Vec::new();
        determinism_taint(&files, &graph, &config2, &mut out);
        assert_eq!(out.len(), 1, "without the sink the clock is tainted");
        assert_eq!(out[0].rule, Rule::DeterminismTaint);
    }
}
