//! The invariant rules: determinism (D), panic-freedom (S), lock
//! discipline (L) and telemetry hygiene (T), run over a [`FileModel`].

use crate::lexer::{Tok, TokKind};
use crate::model::FileModel;
use std::fmt;

/// A lint rule identifier — also the name used in waiver comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D: wall-clock reads (`Instant::now`, `SystemTime`, `std::time`).
    Clock,
    /// D: `std::thread::spawn` outside the worker pool.
    ThreadSpawn,
    /// D: iteration over `HashMap`/`HashSet` (order-unstable).
    MapIter,
    /// D: `env::var` / `random`-named calls in committed sim state.
    EnvRandom,
    /// S: `.unwrap()` / `.expect(` / `panic!` / `unreachable!` in hot
    /// paths.
    Panic,
    /// S: `[expr]` slice indexing in hot paths.
    SliceIndex,
    /// L: taking a lock while a prior guard is live in the same scope.
    NestedLock,
    /// T: non-literal metric name passed to the telemetry registry.
    MetricName,
    /// P: per-call allocation inside a fn marked `// lint: hot-path`.
    HotPathAlloc,
    /// Waiver-syntax problems (missing reason, unknown rule).
    Waiver,
}

impl Rule {
    /// The waiver / output name of the rule.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Clock => "clock",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::MapIter => "map-iter",
            Rule::EnvRandom => "env-random",
            Rule::Panic => "panic",
            Rule::SliceIndex => "slice-index",
            Rule::NestedLock => "nested-lock",
            Rule::MetricName => "metric-name",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::Waiver => "waiver",
        }
    }

    /// All rule names (for waiver validation).
    pub fn known_names() -> &'static [&'static str] {
        &[
            "clock",
            "thread-spawn",
            "map-iter",
            "env-random",
            "panic",
            "slice-index",
            "nested-lock",
            "metric-name",
            "hot-path-alloc",
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, keyed `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules run for one file, plus file-specific allowances.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    /// D: clock reads.
    pub clock: bool,
    /// D: thread spawns.
    pub spawn: bool,
    /// D: map iteration.
    pub map_iter: bool,
    /// D: env/random.
    pub env_random: bool,
    /// S: panic sites.
    pub panics: bool,
    /// S: slice indexing.
    pub slice_index: bool,
    /// L: nested locks.
    pub locks: bool,
    /// T: metric-name literals.
    pub metric_name: bool,
    /// P: allocation in `// lint: hot-path` fns.
    pub hot_path_alloc: bool,
    /// Clock reads are allowed on lines containing one of these
    /// substrings (the telemetry-gated `measure.then(Instant::now)`
    /// sites).
    pub clock_line_allow: Vec<&'static str>,
    /// `thread::spawn` is allowed anywhere in this file (the worker
    /// pool).
    pub spawn_allowed: bool,
}

impl RuleSet {
    /// Every rule on, no allowances — what fixtures run under.
    pub fn all() -> RuleSet {
        RuleSet {
            clock: true,
            spawn: true,
            map_iter: true,
            env_random: true,
            panics: true,
            slice_index: true,
            locks: true,
            metric_name: true,
            hot_path_alloc: true,
            clock_line_allow: Vec::new(),
            spawn_allowed: false,
        }
    }
}

/// Runs every enabled rule over one file and returns unwaived findings
/// (plus waiver-syntax findings).
pub fn check_file(path: &str, model: &FileModel, rules: &RuleSet) -> Vec<Finding> {
    let mut raw = Vec::new();
    if rules.clock {
        clock_rule(model, rules, &mut raw);
    }
    if rules.spawn && !rules.spawn_allowed {
        spawn_rule(model, &mut raw);
    }
    if rules.map_iter {
        map_iter_rule(model, &mut raw);
    }
    if rules.env_random {
        env_random_rule(model, &mut raw);
    }
    if rules.panics {
        panic_rule(model, &mut raw);
    }
    if rules.slice_index {
        slice_index_rule(model, &mut raw);
    }
    if rules.locks {
        lock_rule(model, &mut raw);
    }
    if rules.metric_name {
        metric_rule(model, &mut raw);
    }
    if rules.hot_path_alloc {
        hot_path_alloc_rule(model, &mut raw);
    }

    let mut out = Vec::new();
    for (line, rule, message) in raw {
        match model.waiver_for(line, rule.name()) {
            Some(w) if w.has_reason => {}
            Some(w) => out.push(Finding {
                path: path.to_string(),
                line: w.line,
                rule: Rule::Waiver,
                message: format!(
                    "waiver for `{}` has no reason; write `// lint: allow({}) — <reason>`",
                    rule.name(),
                    rule.name()
                ),
            }),
            None => out.push(Finding {
                path: path.to_string(),
                line,
                rule,
                message,
            }),
        }
    }
    // Malformed waivers are reported even when nothing matched them:
    // an unknown rule name is a typo that silently waives nothing.
    for ws in model.waivers.values() {
        for w in ws {
            if !Rule::known_names().contains(&w.rule.as_str()) {
                out.push(Finding {
                    path: path.to_string(),
                    line: w.line,
                    rule: Rule::Waiver,
                    message: format!("waiver names unknown rule `{}`", w.rule),
                });
            }
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out.dedup();
    out
}

type Raw = Vec<(usize, Rule, String)>;

/// True if tokens at `i..` match the `::`-separated ident path `parts`
/// (e.g. `["Instant", "now"]` matches `Instant :: now`).
fn path_at(toks: &[Tok], i: usize, parts: &[&str]) -> bool {
    let mut j = i;
    for (n, part) in parts.iter().enumerate() {
        if n > 0 {
            if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            j += 2;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident(part)) {
            return false;
        }
        j += 1;
    }
    true
}

fn clock_rule(model: &FileModel, rules: &RuleSet, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        let hit = if path_at(toks, i, &["Instant", "now"]) {
            Some("`Instant::now()` wall-clock read")
        } else if toks[i].is_ident("SystemTime") {
            Some("`SystemTime` wall-clock read")
        } else if path_at(toks, i, &["std", "time"]) {
            Some("`std::time` clock type in a determinism-critical crate")
        } else {
            None
        };
        let Some(msg) = hit else { continue };
        let line = toks[i].line;
        let text = model.line_text(line);
        if rules.clock_line_allow.iter().any(|pat| text.contains(pat)) {
            continue;
        }
        // `use std::time::Instant;` on an allowlisted file is implied by
        // its allowed call sites; elsewhere the import itself is banned.
        out.push((line, Rule::Clock, msg.to_string()));
    }
}

fn spawn_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        if path_at(toks, i, &["thread", "spawn"]) {
            out.push((
                toks[i].line,
                Rule::ThreadSpawn,
                "`thread::spawn` outside the worker pool breaks the \
                 deterministic sharding contract"
                    .to_string(),
            ));
        }
    }
}

fn map_iter_rule(model: &FileModel, out: &mut Raw) {
    const ITER_METHODS: [&str; 5] = ["iter", "iter_mut", "keys", "values", "values_mut"];
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        // `name . iter ( )` where `name` is a known map binding.
        if i >= 2
            && toks[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && model.map_names.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push((
                toks[i].line,
                Rule::MapIter,
                format!(
                    "iteration over hash-ordered `{}` (`.{}()`): order is \
                     not deterministic — use BTreeMap/BTreeSet or sort",
                    toks[i - 2].text,
                    toks[i].text
                ),
            ));
        }
        // `for … in [&][mut] path.to.name {`
        if toks[i].is_ident("for") {
            if let Some((line, name)) = for_loop_over_map(model, i) {
                out.push((
                    line,
                    Rule::MapIter,
                    format!(
                        "`for … in &{name}` iterates a hash-ordered map: \
                         order is not deterministic — use BTreeMap/BTreeSet \
                         or sort"
                    ),
                ));
            }
        }
    }
}

/// If the `for` loop starting at token `i` iterates `&map` (a bare
/// possibly-dotted path ending in a known map name), returns (line, name).
fn for_loop_over_map(model: &FileModel, i: usize) -> Option<(usize, String)> {
    let toks = &model.toks;
    // Find `in` before the loop body `{`.
    let mut j = i + 1;
    let mut in_idx = None;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_ident("in") {
            in_idx = Some(j);
            break;
        }
        j += 1;
    }
    let mut k = in_idx? + 1;
    while k < toks.len() && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
        k += 1;
    }
    // Accept only a plain path `a.b.c` up to the `{`: any call or other
    // punctuation means the iterated value is not the raw map.
    let mut last_ident: Option<&Tok> = None;
    while k < toks.len() && !toks[k].is_punct('{') {
        match toks[k].kind {
            TokKind::Ident => last_ident = Some(&toks[k]),
            TokKind::Punct if toks[k].is_punct('.') => {}
            _ => return None,
        }
        k += 1;
    }
    let last = last_ident?;
    if model.map_names.contains(&last.text) {
        Some((last.line, last.text.clone()))
    } else {
        None
    }
}

fn env_random_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        if path_at(toks, i, &["env", "var"]) {
            out.push((
                toks[i].line,
                Rule::EnvRandom,
                "`env::var` makes committed sim state depend on the \
                 environment"
                    .to_string(),
            ));
        } else if toks[i].kind == TokKind::Ident
            && (toks[i].text.to_ascii_lowercase().contains("random")
                || toks[i].text == "thread_rng")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push((
                toks[i].line,
                Rule::EnvRandom,
                format!(
                    "`{}` call: nondeterministic randomness in committed \
                     sim state (seed a `SimRng` instead)",
                    toks[i].text
                ),
            ));
        }
    }
}

fn panic_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` exactly (not `.unwrap_or…`).
        if i >= 1
            && t.is_ident("unwrap")
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 2).is_some_and(|p| p.is_punct(')'))
        {
            out.push((
                t.line,
                Rule::Panic,
                "`.unwrap()` in a hot path: propagate the error or handle \
                 the None case"
                    .to_string(),
            ));
        }
        if i >= 1
            && t.is_ident("expect")
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            out.push((
                t.line,
                Rule::Panic,
                "`.expect(…)` in a hot path: propagate the error or handle \
                 the None case"
                    .to_string(),
            ));
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            if t.is_ident(mac) && toks.get(i + 1).is_some_and(|p| p.is_punct('!')) {
                out.push((
                    t.line,
                    Rule::Panic,
                    format!("`{mac}!` in a hot path: return an error instead"),
                ));
            }
        }
    }
}

fn slice_index_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 1..toks.len() {
        if model.in_test(i) {
            continue;
        }
        if !toks[i].is_punct('[') {
            continue;
        }
        // Indexing only: `expr[…]` — the previous token ends an
        // expression. `#[attr]`, `&[…]`, `= […]`, `vec![…]`, `: [T; N]`
        // are not indexing.
        let prev = &toks[i - 1];
        let is_index = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
            || prev.is_punct(')')
            || prev.is_punct(']');
        if !is_index {
            continue;
        }
        // `[..]` (full-range) cannot panic.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(']'))
        {
            continue;
        }
        out.push((
            toks[i].line,
            Rule::SliceIndex,
            "`[…]` indexing can panic: use `.get(…)` or prove the bound \
             and waive"
                .to_string(),
        ));
    }
}

/// Keywords that may directly precede `[` without it being indexing
/// (`return [a, b]`, `break [x]`, `in [1, 2]`…).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "if" | "else" | "match" | "mut" | "ref" | "move" | "as"
    )
}

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// True if tokens at `i` form `. lock ( )` (no arguments) and `i` is the
/// method name.
fn lock_call_at(toks: &[Tok], i: usize) -> bool {
    i >= 1
        && toks[i].kind == TokKind::Ident
        && LOCK_METHODS.contains(&toks[i].text.as_str())
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
}

fn lock_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    // Find each fn body and scan it with a live-guard stack.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && !model.in_test(i) {
            if let Some((body_start, body_end)) = fn_body(toks, i) {
                scan_fn_for_locks(model, body_start, body_end, out);
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
}

/// Token range of the `{…}` body of the fn whose `fn` keyword is at `i`
/// (exclusive of the braces), or `None` for body-less declarations.
fn fn_body(toks: &[Tok], i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    // The body `{` is the first `{` outside the parameter parens /
    // generic brackets; a `;` first means a trait method declaration.
    let mut parens = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            parens += 1;
        } else if toks[j].is_punct(')') {
            parens -= 1;
        } else if parens == 0 && toks[j].is_punct(';') {
            return None;
        } else if parens == 0 && toks[j].is_punct('{') {
            let mut braces = 1usize;
            let start = j + 1;
            let mut k = start;
            while k < toks.len() && braces > 0 {
                if toks[k].is_punct('{') {
                    braces += 1;
                } else if toks[k].is_punct('}') {
                    braces -= 1;
                }
                k += 1;
            }
            return Some((start, k.saturating_sub(1)));
        }
        j += 1;
    }
    None
}

/// Scans one fn body: records guards from `let g = ….lock();` statements
/// and flags any later lock call while a guard is live at an enclosing
/// depth. `drop(g)` and scope exit release guards.
fn scan_fn_for_locks(model: &FileModel, start: usize, end: usize, out: &mut Raw) {
    let toks = &model.toks;
    let mut guards: Vec<(String, usize)> = Vec::new(); // (name, depth)
    let mut i = start;
    while i < end {
        let d = model.depth[i];
        guards.retain(|&(_, gd)| gd <= d);
        if toks[i].is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2).map(|t| t.text.clone()) {
                guards.retain(|(g, _)| *g != name);
            }
        }
        if lock_call_at(toks, i) {
            if let Some((holder, _)) = guards.first() {
                out.push((
                    toks[i].line,
                    Rule::NestedLock,
                    format!(
                        "`.{}()` while guard `{holder}` is still live: \
                         nested locking risks deadlock under shard \
                         contention",
                        toks[i].text
                    ),
                ));
            }
            // Does this call create a *held* guard? Only when the lock
            // call ends a `let <name> = …;` statement (possibly through
            // `?`): a lock temporary inside a larger expression dies at
            // the statement's end.
            let mut j = i + 3; // past `( )`
            while j < end && toks[j].is_punct('?') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct(';')) {
                if let Some(name) = let_binding_name(toks, i, start) {
                    if name != "_" {
                        guards.push((name, d));
                    }
                }
            }
        }
        i += 1;
    }
}

/// The `let [mut] <name>` binding of the statement containing token `i`,
/// scanning back at most to `floor`.
fn let_binding_name(toks: &[Tok], i: usize, floor: usize) -> Option<String> {
    let mut k = i;
    while k > floor {
        k -= 1;
        if toks[k].is_punct(';') || toks[k].is_punct('{') || toks[k].is_punct('}') {
            return None;
        }
        if toks[k].is_ident("let") {
            let mut n = k + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            return toks
                .get(n)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
        }
    }
    None
}

/// Flags per-call allocations (`Vec::new`, `with_capacity`, `.collect`,
/// `vec!`) inside the first fn following each `// lint: hot-path` marker
/// comment. Hot-path fns must write into caller-owned scratch buffers.
fn hot_path_alloc_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for &marker in &model.hot_path_lines {
        let Some(fn_idx) = toks
            .iter()
            .position(|t| t.line > marker && t.is_ident("fn"))
        else {
            continue;
        };
        let Some((start, end)) = fn_body(toks, fn_idx) else {
            continue;
        };
        for i in start..end {
            if model.in_test(i) {
                continue;
            }
            let t = &toks[i];
            let hit = if path_at(toks, i, &["Vec", "new"]) {
                Some("`Vec::new()`")
            } else if t.is_ident("with_capacity")
                && i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                Some("`with_capacity(…)`")
            } else if t.is_ident("collect")
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|p| p.is_punct('(') || p.is_punct(':'))
            {
                Some("`.collect()`")
            } else if t.is_ident("vec") && toks.get(i + 1).is_some_and(|p| p.is_punct('!')) {
                Some("`vec!`")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push((
                    t.line,
                    Rule::HotPathAlloc,
                    format!(
                        "{what} inside a `lint: hot-path` fn: reuse a \
                         cleared scratch buffer instead of allocating per \
                         call"
                    ),
                ));
            }
        }
    }
}

const METRIC_METHODS: [&str; 4] = ["counter", "gauge", "histogram", "event"];

fn metric_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 1..toks.len() {
        if model.in_test(i) {
            continue;
        }
        if toks[i].kind == TokKind::Ident
            && METRIC_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            match toks.get(i + 2) {
                // Literal name: fine. Empty call (`registry.counter()`)
                // is someone else's API: skip.
                Some(t) if t.kind == TokKind::Str || t.is_punct(')') => {}
                Some(t) => out.push((
                    t.line,
                    Rule::MetricName,
                    format!(
                        "metric name passed to `.{}(…)` must be a string \
                         literal (dynamic names create unbounded \
                         cardinality)",
                        toks[i].text
                    ),
                )),
                None => {}
            }
        }
    }
}
