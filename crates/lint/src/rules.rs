//! The invariant rules: determinism (D), panic-freedom (S), lock
//! discipline (L), telemetry hygiene (T) and hot-path allocation (P),
//! run over a [`FileModel`].
//!
//! Detection is split from policy: [`collect_sites`] runs *every*
//! detector over a file and returns raw sites (with token indexes, so
//! the whole-program passes in [`crate::reach`] / [`crate::lockorder`]
//! can attribute them to functions), while [`check_file`] filters those
//! sites down to the rules enabled for the file and applies waivers.
//! Sanctioned sites — `#[cfg(test)]` regions, `clock_line_allow`
//! matches, `spawn_allowed` files — are dropped at collection time and
//! are invisible to both the per-file rules and the transitive passes.

use crate::lexer::{Tok, TokKind};
use crate::model::FileModel;
pub use crate::parser::fn_body;
use std::fmt;

/// A lint rule identifier — also the name used in waiver comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D: wall-clock reads (`Instant::now`, `SystemTime`, `std::time`).
    Clock,
    /// D: `std::thread::spawn` outside the worker pool.
    ThreadSpawn,
    /// D: iteration over `HashMap`/`HashSet` (order-unstable).
    MapIter,
    /// D: `env::var` / `random`-named calls in committed sim state.
    EnvRandom,
    /// S: `.unwrap()` / `.expect(` / `panic!` / `unreachable!` in hot
    /// paths.
    Panic,
    /// S: `[expr]` slice indexing in hot paths.
    SliceIndex,
    /// L: taking a lock while a prior guard is live in the same scope.
    NestedLock,
    /// T: non-literal metric name passed to the telemetry registry.
    MetricName,
    /// P: per-call allocation inside a fn marked `// lint: hot-path`.
    HotPathAlloc,
    /// P (whole-program): allocation reachable from a hot-path fn
    /// through the call graph.
    TransitiveAlloc,
    /// S (whole-program): a panic site reachable from a core/perf entry
    /// point through the call graph.
    PanicReach,
    /// D (whole-program): a determinism hazard reachable from
    /// `Cluster::step` through helpers.
    DeterminismTaint,
    /// L (whole-program): a cycle in the interprocedural lock-order
    /// graph (potential deadlock).
    LockCycle,
    /// Waiver-syntax problems (missing reason, unknown rule, unused
    /// waiver).
    Waiver,
}

impl Rule {
    /// The waiver / output name of the rule.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Clock => "clock",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::MapIter => "map-iter",
            Rule::EnvRandom => "env-random",
            Rule::Panic => "panic",
            Rule::SliceIndex => "slice-index",
            Rule::NestedLock => "nested-lock",
            Rule::MetricName => "metric-name",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::TransitiveAlloc => "transitive-alloc",
            Rule::PanicReach => "panic-reach",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::LockCycle => "lock-cycle",
            Rule::Waiver => "waiver",
        }
    }

    /// All rule names (for waiver validation).
    pub fn known_names() -> &'static [&'static str] {
        &[
            "clock",
            "thread-spawn",
            "map-iter",
            "env-random",
            "panic",
            "slice-index",
            "nested-lock",
            "metric-name",
            "hot-path-alloc",
            "transitive-alloc",
            "panic-reach",
            "determinism-taint",
            "lock-cycle",
        ]
    }

    /// One-line description, used by the SARIF rule catalog.
    pub fn description(self) -> &'static str {
        match self {
            Rule::Clock => "wall-clock read in a determinism-critical crate",
            Rule::ThreadSpawn => "thread spawn outside the worker pool",
            Rule::MapIter => "iteration over a hash-ordered map",
            Rule::EnvRandom => "environment/randomness feeding committed sim state",
            Rule::Panic => "panic site in a hot path",
            Rule::SliceIndex => "panicking slice index in a hot path",
            Rule::NestedLock => "lock acquired while a prior guard is live",
            Rule::MetricName => "dynamic metric name",
            Rule::HotPathAlloc => "per-call allocation in a hot-path fn",
            Rule::TransitiveAlloc => "allocation reachable from a hot-path fn",
            Rule::PanicReach => "panic site reachable from a core entry point",
            Rule::DeterminismTaint => "determinism hazard reachable from Cluster::step",
            Rule::LockCycle => "cycle in the interprocedural lock-order graph",
            Rule::Waiver => "waiver-syntax problem",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, keyed `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules run for one file, plus file-specific allowances.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    /// D: clock reads.
    pub clock: bool,
    /// D: thread spawns.
    pub spawn: bool,
    /// D: map iteration.
    pub map_iter: bool,
    /// D: env/random.
    pub env_random: bool,
    /// S: panic sites.
    pub panics: bool,
    /// S: slice indexing.
    pub slice_index: bool,
    /// L: nested locks.
    pub locks: bool,
    /// T: metric-name literals.
    pub metric_name: bool,
    /// P: allocation in `// lint: hot-path` fns.
    pub hot_path_alloc: bool,
    /// Clock reads are allowed on lines containing one of these
    /// substrings (the telemetry-gated `measure.then(Instant::now)`
    /// sites).
    pub clock_line_allow: Vec<&'static str>,
    /// `thread::spawn` is allowed anywhere in this file (the worker
    /// pool).
    pub spawn_allowed: bool,
}

impl RuleSet {
    /// Every rule on, no allowances — what fixtures run under.
    pub fn all() -> RuleSet {
        RuleSet {
            clock: true,
            spawn: true,
            map_iter: true,
            env_random: true,
            panics: true,
            slice_index: true,
            locks: true,
            metric_name: true,
            hot_path_alloc: true,
            clock_line_allow: Vec::new(),
            spawn_allowed: false,
        }
    }
}

/// One raw detector hit, before policy filtering and waivers.
#[derive(Debug, Clone)]
pub struct RawSite {
    /// Index of the triggering token.
    pub tok: usize,
    /// 1-based source line.
    pub line: usize,
    /// The base rule the site violates.
    pub rule: Rule,
    /// Short backticked pattern (`` `Vec::new()` ``, `` `.unwrap()` ``),
    /// reused by the whole-program passes for their own messages.
    pub pattern: String,
    /// Full per-file diagnostic.
    pub message: String,
}

type Raw = Vec<RawSite>;

fn site(out: &mut Raw, tok: usize, line: usize, rule: Rule, pattern: &str, message: String) {
    out.push(RawSite {
        tok,
        line,
        rule,
        pattern: pattern.to_string(),
        message,
    });
}

/// Runs every detector over `model` and returns all raw sites, with
/// sanctioned-site scoping (test regions, `clock_line_allow`,
/// `spawn_allowed`) already applied. The caller decides which rules are
/// *enforced* per-file; the whole-program passes consume the rest.
pub fn collect_sites(model: &FileModel, rules: &RuleSet) -> Vec<RawSite> {
    let mut raw = Vec::new();
    clock_rule(model, rules, &mut raw);
    if !rules.spawn_allowed {
        spawn_rule(model, &mut raw);
    }
    map_iter_rule(model, &mut raw);
    env_random_rule(model, &mut raw);
    panic_rule(model, &mut raw);
    slice_index_rule(model, &mut raw);
    lock_rule(model, &mut raw);
    metric_rule(model, &mut raw);
    alloc_rule(model, &mut raw);
    raw.sort_by_key(|a| (a.line, a.rule, a.tok));
    raw
}

/// Token ranges of fn bodies annotated `// lint: hot-path`.
pub fn hot_fn_ranges(model: &FileModel) -> Vec<(usize, usize)> {
    let toks = &model.toks;
    let mut out = Vec::new();
    for &marker in &model.hot_path_lines {
        let Some(fn_idx) = toks
            .iter()
            .position(|t| t.line > marker && t.is_ident("fn"))
        else {
            continue;
        };
        if let Some(range) = fn_body(toks, fn_idx) {
            out.push(range);
        }
    }
    out
}

/// True if `site` is enforced as a per-file finding under `rules`.
/// `hot_ranges` are the `// lint: hot-path` fn bodies (for
/// [`Rule::HotPathAlloc`], which is annotation-scoped rather than
/// file-scoped).
pub fn site_enabled(s: &RawSite, rules: &RuleSet, hot_ranges: &[(usize, usize)]) -> bool {
    match s.rule {
        Rule::Clock => rules.clock,
        Rule::ThreadSpawn => rules.spawn,
        Rule::MapIter => rules.map_iter,
        Rule::EnvRandom => rules.env_random,
        Rule::Panic => rules.panics,
        Rule::SliceIndex => rules.slice_index,
        Rule::NestedLock => rules.locks,
        Rule::MetricName => rules.metric_name,
        Rule::HotPathAlloc => {
            rules.hot_path_alloc && hot_ranges.iter().any(|&(s0, e0)| s.tok >= s0 && s.tok < e0)
        }
        _ => false,
    }
}

/// A waiver consumed while suppressing a finding: (waiver line, rule
/// name as written in the waiver).
pub type UsedWaiver = (usize, String);

/// Applies waiver policy to one raw finding: returns `None` when a
/// reasoned waiver suppresses it (recording the waiver in `used`), a
/// [`Rule::Waiver`] finding when the waiver lacks a reason, or the
/// finding itself. `names` are the waiver rule names that can suppress
/// it, in priority order (a transitive finding accepts both its base
/// rule name and its pass name).
pub fn waiver_filter(
    path: &str,
    model: &FileModel,
    line: usize,
    names: &[&str],
    rule: Rule,
    message: String,
    used: &mut Vec<UsedWaiver>,
) -> Option<Finding> {
    for name in names {
        if let Some(w) = model.waiver_for(line, name) {
            used.push((w.line, w.rule.clone()));
            if w.has_reason {
                return None;
            }
            return Some(Finding {
                path: path.to_string(),
                line: w.line,
                rule: Rule::Waiver,
                message: format!(
                    "waiver for `{name}` has no reason; write `// lint: allow({name}) — <reason>`"
                ),
            });
        }
    }
    Some(Finding {
        path: path.to_string(),
        line,
        rule,
        message,
    })
}

/// Findings for malformed waivers: an unknown rule name is a typo that
/// silently waives nothing.
pub fn waiver_syntax_findings(path: &str, model: &FileModel, out: &mut Vec<Finding>) {
    for ws in model.waivers.values() {
        for w in ws {
            if !Rule::known_names().contains(&w.rule.as_str()) {
                out.push(Finding {
                    path: path.to_string(),
                    line: w.line,
                    rule: Rule::Waiver,
                    message: format!("waiver names unknown rule `{}`", w.rule),
                });
            }
        }
    }
}

/// Runs every enabled per-file rule over one file and returns unwaived
/// findings (plus waiver-syntax findings), recording consumed waivers
/// in `used`.
pub fn check_file_collect(
    path: &str,
    model: &FileModel,
    rules: &RuleSet,
    used: &mut Vec<UsedWaiver>,
) -> Vec<Finding> {
    let sites = collect_sites(model, rules);
    check_sites(path, model, rules, &sites, used)
}

/// As [`check_file_collect`], but over pre-collected sites (the
/// whole-program driver collects once and reuses them).
pub fn check_sites(
    path: &str,
    model: &FileModel,
    rules: &RuleSet,
    sites: &[RawSite],
    used: &mut Vec<UsedWaiver>,
) -> Vec<Finding> {
    let hot_ranges = hot_fn_ranges(model);
    let mut out = Vec::new();
    for s in sites {
        if !site_enabled(s, rules, &hot_ranges) {
            continue;
        }
        if let Some(f) = waiver_filter(
            path,
            model,
            s.line,
            &[s.rule.name()],
            s.rule,
            s.message.clone(),
            used,
        ) {
            out.push(f);
        }
    }
    waiver_syntax_findings(path, model, &mut out);
    out.sort_by_key(|a| (a.line, a.rule));
    out.dedup();
    out
}

/// Runs every enabled rule over one file and returns unwaived findings
/// (plus waiver-syntax findings).
pub fn check_file(path: &str, model: &FileModel, rules: &RuleSet) -> Vec<Finding> {
    check_file_collect(path, model, rules, &mut Vec::new())
}

/// True if tokens at `i..` match the `::`-separated ident path `parts`
/// (e.g. `["Instant", "now"]` matches `Instant :: now`).
fn path_at(toks: &[Tok], i: usize, parts: &[&str]) -> bool {
    let mut j = i;
    for (n, part) in parts.iter().enumerate() {
        if n > 0 {
            if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            j += 2;
        }
        if !toks.get(j).is_some_and(|t| t.is_ident(part)) {
            return false;
        }
        j += 1;
    }
    true
}

fn clock_rule(model: &FileModel, rules: &RuleSet, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        let hit = if path_at(toks, i, &["Instant", "now"]) {
            Some(("`Instant::now()`", "`Instant::now()` wall-clock read"))
        } else if toks[i].is_ident("SystemTime") {
            Some(("`SystemTime`", "`SystemTime` wall-clock read"))
        } else if path_at(toks, i, &["std", "time"]) {
            Some((
                "`std::time`",
                "`std::time` clock type in a determinism-critical crate",
            ))
        } else {
            None
        };
        let Some((pat, msg)) = hit else { continue };
        let line = toks[i].line;
        let text = model.line_text(line);
        if rules.clock_line_allow.iter().any(|p| text.contains(p)) {
            continue;
        }
        // `use std::time::Instant;` on an allowlisted file is implied by
        // its allowed call sites; elsewhere the import itself is banned.
        site(out, i, line, Rule::Clock, pat, msg.to_string());
    }
}

fn spawn_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        if path_at(toks, i, &["thread", "spawn"]) {
            site(
                out,
                i,
                toks[i].line,
                Rule::ThreadSpawn,
                "`thread::spawn`",
                "`thread::spawn` outside the worker pool breaks the \
                 deterministic sharding contract"
                    .to_string(),
            );
        }
    }
}

fn map_iter_rule(model: &FileModel, out: &mut Raw) {
    const ITER_METHODS: [&str; 5] = ["iter", "iter_mut", "keys", "values", "values_mut"];
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        // `name . iter ( )` where `name` is a known map binding.
        if i >= 2
            && toks[i].kind == TokKind::Ident
            && ITER_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && model.map_names.contains(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            site(
                out,
                i,
                toks[i].line,
                Rule::MapIter,
                "hash-ordered iteration",
                format!(
                    "iteration over hash-ordered `{}` (`.{}()`): order is \
                     not deterministic — use BTreeMap/BTreeSet or sort",
                    toks[i - 2].text,
                    toks[i].text
                ),
            );
        }
        // `for … in [&][mut] path.to.name {`
        if toks[i].is_ident("for") {
            if let Some((tok, line, name)) = for_loop_over_map(model, i) {
                site(
                    out,
                    tok,
                    line,
                    Rule::MapIter,
                    "hash-ordered iteration",
                    format!(
                        "`for … in &{name}` iterates a hash-ordered map: \
                         order is not deterministic — use BTreeMap/BTreeSet \
                         or sort"
                    ),
                );
            }
        }
    }
}

/// If the `for` loop starting at token `i` iterates `&map` (a bare
/// possibly-dotted path ending in a known map name), returns
/// (token, line, name).
fn for_loop_over_map(model: &FileModel, i: usize) -> Option<(usize, usize, String)> {
    let toks = &model.toks;
    // Find `in` before the loop body `{`.
    let mut j = i + 1;
    let mut in_idx = None;
    while j < toks.len() && !toks[j].is_punct('{') {
        if toks[j].is_ident("in") {
            in_idx = Some(j);
            break;
        }
        j += 1;
    }
    let mut k = in_idx? + 1;
    while k < toks.len() && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
        k += 1;
    }
    // Accept only a plain path `a.b.c` up to the `{`: any call or other
    // punctuation means the iterated value is not the raw map.
    let mut last_ident: Option<usize> = None;
    while k < toks.len() && !toks[k].is_punct('{') {
        match toks[k].kind {
            TokKind::Ident => last_ident = Some(k),
            TokKind::Punct if toks[k].is_punct('.') => {}
            _ => return None,
        }
        k += 1;
    }
    let last = last_ident?;
    if model.map_names.contains(&toks[last].text) {
        Some((last, toks[last].line, toks[last].text.clone()))
    } else {
        None
    }
}

fn env_random_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        if path_at(toks, i, &["env", "var"]) {
            site(
                out,
                i,
                toks[i].line,
                Rule::EnvRandom,
                "`env::var`",
                "`env::var` makes committed sim state depend on the \
                 environment"
                    .to_string(),
            );
        } else if toks[i].kind == TokKind::Ident
            && (toks[i].text.to_ascii_lowercase().contains("random")
                || toks[i].text == "thread_rng")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            site(
                out,
                i,
                toks[i].line,
                Rule::EnvRandom,
                "OS randomness",
                format!(
                    "`{}` call: nondeterministic randomness in committed \
                     sim state (seed a `SimRng` instead)",
                    toks[i].text
                ),
            );
        }
    }
}

fn panic_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` exactly (not `.unwrap_or…`).
        if i >= 1
            && t.is_ident("unwrap")
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            && toks.get(i + 2).is_some_and(|p| p.is_punct(')'))
        {
            site(
                out,
                i,
                t.line,
                Rule::Panic,
                "`.unwrap()`",
                "`.unwrap()` in a hot path: propagate the error or handle \
                 the None case"
                    .to_string(),
            );
        }
        if i >= 1
            && t.is_ident("expect")
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            site(
                out,
                i,
                t.line,
                Rule::Panic,
                "`.expect(…)`",
                "`.expect(…)` in a hot path: propagate the error or handle \
                 the None case"
                    .to_string(),
            );
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            if t.is_ident(mac) && toks.get(i + 1).is_some_and(|p| p.is_punct('!')) {
                site(
                    out,
                    i,
                    t.line,
                    Rule::Panic,
                    &format!("`{mac}!`"),
                    format!("`{mac}!` in a hot path: return an error instead"),
                );
            }
        }
    }
}

fn slice_index_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 1..toks.len() {
        if model.in_test(i) {
            continue;
        }
        if !toks[i].is_punct('[') {
            continue;
        }
        // Indexing only: `expr[…]` — the previous token ends an
        // expression. `#[attr]`, `&[…]`, `= […]`, `vec![…]`, `: [T; N]`
        // are not indexing.
        let prev = &toks[i - 1];
        let is_index = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
            || prev.is_punct(')')
            || prev.is_punct(']');
        if !is_index {
            continue;
        }
        // `[..]` (full-range) cannot panic.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(']'))
        {
            continue;
        }
        site(
            out,
            i,
            toks[i].line,
            Rule::SliceIndex,
            "`[…]` indexing",
            "`[…]` indexing can panic: use `.get(…)` or prove the bound \
             and waive"
                .to_string(),
        );
    }
}

/// Keywords that may directly precede `[` without it being indexing
/// (`return [a, b]`, `break [x]`, `in [1, 2]`…).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "if" | "else" | "match" | "mut" | "ref" | "move" | "as" | "let"
    )
}

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// True if tokens at `i` form `. lock ( )` (no arguments) and `i` is the
/// method name.
pub(crate) fn lock_call_at(toks: &[Tok], i: usize) -> bool {
    i >= 1
        && toks[i].kind == TokKind::Ident
        && LOCK_METHODS.contains(&toks[i].text.as_str())
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
}

fn lock_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    // Find each fn body and scan it with a live-guard stack.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && !model.in_test(i) {
            if let Some((body_start, body_end)) = fn_body(toks, i) {
                scan_fn_for_locks(model, body_start, body_end, out);
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
}

/// Scans one fn body: records guards from `let g = ….lock();` statements
/// and flags any later lock call while a guard is live at an enclosing
/// depth. `drop(g)` and scope exit release guards.
fn scan_fn_for_locks(model: &FileModel, start: usize, end: usize, out: &mut Raw) {
    let toks = &model.toks;
    let mut guards: Vec<(String, usize)> = Vec::new(); // (name, depth)
    let mut i = start;
    while i < end {
        let d = model.depth[i];
        guards.retain(|&(_, gd)| gd <= d);
        if toks[i].is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2).map(|t| t.text.clone()) {
                guards.retain(|(g, _)| *g != name);
            }
        }
        if lock_call_at(toks, i) {
            if let Some((holder, _)) = guards.first() {
                site(
                    out,
                    i,
                    toks[i].line,
                    Rule::NestedLock,
                    "nested lock",
                    format!(
                        "`.{}()` while guard `{holder}` is still live: \
                         nested locking risks deadlock under shard \
                         contention",
                        toks[i].text
                    ),
                );
            }
            // Does this call create a *held* guard? Only when the lock
            // call ends a `let <name> = …;` statement (possibly through
            // `?`): a lock temporary inside a larger expression dies at
            // the statement's end.
            let mut j = i + 3; // past `( )`
            while j < end && toks[j].is_punct('?') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct(';')) {
                if let Some(name) = let_binding_name(toks, i, start) {
                    if name != "_" {
                        guards.push((name, d));
                    }
                }
            }
        }
        i += 1;
    }
}

/// The `let [mut] <name>` binding of the statement containing token `i`,
/// scanning back at most to `floor`.
pub(crate) fn let_binding_name(toks: &[Tok], i: usize, floor: usize) -> Option<String> {
    let mut k = i;
    while k > floor {
        k -= 1;
        if toks[k].is_punct(';') || toks[k].is_punct('{') || toks[k].is_punct('}') {
            return None;
        }
        if toks[k].is_ident("let") {
            let mut n = k + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            return toks
                .get(n)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
        }
    }
    None
}

/// Collects per-call allocation sites (`Vec::new`, `with_capacity`,
/// `.collect`, `vec!`) across the whole file. Per-file enforcement is
/// scoped to `// lint: hot-path` fn bodies by [`site_enabled`]; the
/// transitive pass consumes every site.
fn alloc_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if model.in_test(i) {
            continue;
        }
        let t = &toks[i];
        let hit = if path_at(toks, i, &["Vec", "new"]) {
            Some("`Vec::new()`")
        } else if t.is_ident("with_capacity")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            Some("`with_capacity(…)`")
        } else if t.is_ident("collect")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|p| p.is_punct('(') || p.is_punct(':'))
        {
            Some("`.collect()`")
        } else if t.is_ident("vec") && toks.get(i + 1).is_some_and(|p| p.is_punct('!')) {
            Some("`vec!`")
        } else {
            None
        };
        if let Some(what) = hit {
            site(
                out,
                i,
                t.line,
                Rule::HotPathAlloc,
                what,
                format!(
                    "{what} inside a `lint: hot-path` fn: reuse a \
                     cleared scratch buffer instead of allocating per \
                     call"
                ),
            );
        }
    }
}

const METRIC_METHODS: [&str; 4] = ["counter", "gauge", "histogram", "event"];

fn metric_rule(model: &FileModel, out: &mut Raw) {
    let toks = &model.toks;
    for i in 1..toks.len() {
        if model.in_test(i) {
            continue;
        }
        if toks[i].kind == TokKind::Ident
            && METRIC_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            match toks.get(i + 2) {
                // Literal name: fine. Empty call (`registry.counter()`)
                // is someone else's API: skip.
                Some(t) if t.kind == TokKind::Str || t.is_punct(')') => {}
                Some(t) => site(
                    out,
                    i + 2,
                    t.line,
                    Rule::MetricName,
                    "dynamic metric name",
                    format!(
                        "metric name passed to `.{}(…)` must be a string \
                         literal (dynamic names create unbounded \
                         cardinality)",
                        toks[i].text
                    ),
                ),
                None => {}
            }
        }
    }
}
