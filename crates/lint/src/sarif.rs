//! SARIF 2.1.0 rendering for GitHub code scanning, hand-rolled like the
//! JSON renderer (the linter takes no dependencies).

use crate::rules::{Finding, Rule};

fn json_str(s: &str) -> String {
    crate::json_str(s)
}

/// Renders findings as a minimal SARIF 2.1.0 log: one run, one driver,
/// a rule catalog covering every rule that appears, and one result per
/// finding with its `path:line` location.
pub fn render_sarif(findings: &[Finding]) -> String {
    // Rule catalog: every known rule, stable order, so rule indexes are
    // reproducible run to run.
    let all_rules: Vec<Rule> = vec![
        Rule::Clock,
        Rule::ThreadSpawn,
        Rule::MapIter,
        Rule::EnvRandom,
        Rule::Panic,
        Rule::SliceIndex,
        Rule::NestedLock,
        Rule::MetricName,
        Rule::HotPathAlloc,
        Rule::TransitiveAlloc,
        Rule::PanicReach,
        Rule::DeterminismTaint,
        Rule::LockCycle,
        Rule::Waiver,
    ];
    let mut rules_json = String::new();
    for (i, r) in all_rules.iter().enumerate() {
        if i > 0 {
            rules_json.push(',');
        }
        rules_json.push_str(&format!(
            "\n        {{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_str(r.name()),
            json_str(r.description())
        ));
    }

    let mut results = String::new();
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        let rule_index = all_rules
            .iter()
            .position(|r| *r == f.rule)
            .unwrap_or(all_rules.len() - 1);
        results.push_str(&format!(
            "\n        {{\"ruleId\":{},\"ruleIndex\":{rule_index},\"level\":\"error\",\
             \"message\":{{\"text\":{}}},\"locations\":[{{\"physicalLocation\":\
             {{\"artifactLocation\":{{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            json_str(f.rule.name()),
            json_str(&f.message),
            json_str(&f.path),
            f.line.max(1)
        ));
    }

    format!(
        "{{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \"tool\": {{\n        \"driver\": {{\n          \
         \"name\": \"cpi2-lint\",\n          \"informationUri\": \"https://github.com/example/cpi2\",\n          \
         \"rules\": [{rules_json}\n      ]\n        }}\n      }},\n      \"results\": [{results}\n      ]\n    }}\n  ]\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let f = Finding {
            path: "crates/sim/src/machine.rs".into(),
            line: 12,
            rule: Rule::PanicReach,
            message: "`.unwrap()` panic site reachable: a.rs:1 → b.rs:2".into(),
        };
        let s = render_sarif(std::slice::from_ref(&f));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"panic-reach\""));
        assert!(s.contains("\"startLine\":12"));
        assert!(s.contains("crates/sim/src/machine.rs"));
    }

    #[test]
    fn empty_findings_is_valid_sarif_with_catalog() {
        let s = render_sarif(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
        assert!(s.contains("\"id\":\"lock-cycle\""));
    }

    #[test]
    fn messages_with_quotes_and_backslashes_escape() {
        let f = Finding {
            path: "a\\b.rs".into(),
            line: 1,
            rule: Rule::Panic,
            message: "say \"hi\"\u{1}".into(),
        };
        let s = render_sarif(&[f]);
        assert!(s.contains(r#"a\\b.rs"#));
        assert!(s.contains(r#"say \"hi\"\u0001"#), "{s}");
    }
}
