//! Fixture-based self-tests: for every rule, a known-bad snippet must
//! fire and a known-good snippet must come back clean — so a regression
//! in the lexer or a rule pass is caught here, not by a silently-green
//! workspace gate.

use cpi2_lint::{lint_source, Finding, Rule, RuleSet};

fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = format!("{}/tests/fixtures/{}.rs", env!("CARGO_MANIFEST_DIR"), name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_source(&format!("{name}.rs"), &src, &RuleSet::all())
}

/// Asserts the bad fixture fires `rule` (at least `min` times) and the
/// clean fixture produces no findings at all under the full rule set.
fn assert_pair(rule: Rule, min: usize) {
    let slug = rule.name().replace('-', "_");
    let bad = lint_fixture(&format!("{slug}_bad"));
    let hits = bad.iter().filter(|f| f.rule == rule).count();
    assert!(
        hits >= min,
        "{slug}_bad.rs: expected ≥{min} `{rule}` finding(s), got {hits}:\n{bad:#?}"
    );
    for f in &bad {
        assert!(f.line > 0, "finding must carry a line: {f:?}");
    }
    let clean = lint_fixture(&format!("{slug}_clean"));
    assert!(
        clean.is_empty(),
        "{slug}_clean.rs must be clean, got:\n{clean:#?}"
    );
}

#[test]
fn clock_fixture_pair() {
    assert_pair(Rule::Clock, 2);
}

#[test]
fn thread_spawn_fixture_pair() {
    assert_pair(Rule::ThreadSpawn, 1);
}

#[test]
fn map_iter_fixture_pair() {
    assert_pair(Rule::MapIter, 2);
}

#[test]
fn env_random_fixture_pair() {
    assert_pair(Rule::EnvRandom, 2);
}

#[test]
fn panic_fixture_pair() {
    assert_pair(Rule::Panic, 4);
}

#[test]
fn slice_index_fixture_pair() {
    assert_pair(Rule::SliceIndex, 2);
}

#[test]
fn nested_lock_fixture_pair() {
    assert_pair(Rule::NestedLock, 1);
}

#[test]
fn metric_name_fixture_pair() {
    assert_pair(Rule::MetricName, 1);
}

#[test]
fn hot_path_alloc_fixture_pair() {
    assert_pair(Rule::HotPathAlloc, 4);
}

#[test]
fn waiver_without_reason_still_fails() {
    let findings = lint_fixture("waiver_noreason");
    assert!(
        findings.iter().any(|f| f.rule == Rule::Waiver),
        "reasonless waiver must be reported as a `waiver` finding:\n{findings:#?}"
    );
    // The reasonless waiver must not silently suppress nothing AND pass:
    // the file as a whole still fails.
    assert!(!findings.is_empty());
}

#[test]
fn findings_render_with_path_line_rule() {
    let findings = lint_fixture("panic_bad");
    let first = findings.first().expect("panic_bad fires");
    let line = first.to_string();
    assert!(
        line.starts_with("panic_bad.rs:") && line.contains(": panic: "),
        "diagnostic format `path:line: rule: message`, got {line:?}"
    );
}
