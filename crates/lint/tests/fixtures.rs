//! Fixture-based self-tests: for every rule, a known-bad snippet must
//! fire and a known-good snippet must come back clean — so a regression
//! in the lexer or a rule pass is caught here, not by a silently-green
//! workspace gate.

use cpi2_lint::{
    analyze_file, lint_program, lint_source, ruleset_for, EntrySpec, Finding, ProgramConfig, Rule,
    RuleSet,
};

fn fixture_src(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{}.rs", env!("CARGO_MANIFEST_DIR"), name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn lint_fixture_with(name: &str, rules: &RuleSet) -> Vec<Finding> {
    lint_source(&format!("{name}.rs"), &fixture_src(name), rules)
}

/// Runs a fixture through the whole-program passes with per-file rules
/// off, so any finding is the interprocedural analysis speaking.
fn lint_program_fixture(name: &str, config: &ProgramConfig) -> Vec<Finding> {
    let file = analyze_file(
        &format!("{name}.rs"),
        &fixture_src(name),
        RuleSet::default(),
    );
    lint_program(&[file], config)
}

fn lint_fixture(name: &str) -> Vec<Finding> {
    lint_fixture_with(name, &RuleSet::all())
}

/// Asserts the bad fixture fires `rule` (at least `min` times) and the
/// clean fixture produces no findings at all under the full rule set.
fn assert_pair(rule: Rule, min: usize) {
    let slug = rule.name().replace('-', "_");
    let bad = lint_fixture(&format!("{slug}_bad"));
    let hits = bad.iter().filter(|f| f.rule == rule).count();
    assert!(
        hits >= min,
        "{slug}_bad.rs: expected ≥{min} `{rule}` finding(s), got {hits}:\n{bad:#?}"
    );
    for f in &bad {
        assert!(f.line > 0, "finding must carry a line: {f:?}");
    }
    let clean = lint_fixture(&format!("{slug}_clean"));
    assert!(
        clean.is_empty(),
        "{slug}_clean.rs must be clean, got:\n{clean:#?}"
    );
}

#[test]
fn clock_fixture_pair() {
    assert_pair(Rule::Clock, 2);
}

#[test]
fn thread_spawn_fixture_pair() {
    assert_pair(Rule::ThreadSpawn, 1);
}

#[test]
fn map_iter_fixture_pair() {
    assert_pair(Rule::MapIter, 2);
}

#[test]
fn env_random_fixture_pair() {
    assert_pair(Rule::EnvRandom, 2);
}

#[test]
fn panic_fixture_pair() {
    assert_pair(Rule::Panic, 4);
}

#[test]
fn slice_index_fixture_pair() {
    assert_pair(Rule::SliceIndex, 2);
}

#[test]
fn nested_lock_fixture_pair() {
    assert_pair(Rule::NestedLock, 1);
}

#[test]
fn metric_name_fixture_pair() {
    assert_pair(Rule::MetricName, 1);
}

#[test]
fn hot_path_alloc_fixture_pair() {
    assert_pair(Rule::HotPathAlloc, 4);
}

#[test]
fn serve_scope_fixture_pair() {
    // Handler-side serve modules (state.rs, routes.rs) are clock- and
    // thread-free; the bad fixture fires both rules under their ruleset.
    let handler_rules = ruleset_for("crates/serve/src/state.rs").expect("serve in scope");
    let bad = lint_fixture_with("serve_scope_bad", &handler_rules);
    assert!(
        bad.iter().any(|f| f.rule == Rule::Clock),
        "serve handler modules must fire `clock`:\n{bad:#?}"
    );
    assert!(
        bad.iter().any(|f| f.rule == Rule::ThreadSpawn),
        "serve handler modules must fire `thread-spawn`:\n{bad:#?}"
    );

    // The same source under server.rs's ruleset is sanctioned: that
    // module owns socket timeouts and the worker pool.
    let socket_rules = ruleset_for("crates/serve/src/server.rs").expect("serve in scope");
    let waived = lint_fixture_with("serve_scope_bad", &socket_rules);
    assert!(
        waived.is_empty(),
        "server.rs ruleset must sanction clocks and spawns, got:\n{waived:#?}"
    );

    // The snapshot-swap idiom is clean even under the strict ruleset.
    let clean = lint_fixture_with("serve_scope_clean", &handler_rules);
    assert!(
        clean.is_empty(),
        "serve_scope_clean.rs must be clean, got:\n{clean:#?}"
    );
}

/// Asserts the bad fixture fires `rule` with a multi-hop call path
/// (`file:line → file:line`) in its message and the clean twin is
/// silent under the same whole-program config.
fn assert_program_pair(rule: Rule, config: &ProgramConfig) {
    let slug = rule.name().replace('-', "_");
    let bad_name = format!("{slug}_bad");
    let bad = lint_program_fixture(&bad_name, config);
    let hit = bad
        .iter()
        .find(|f| f.rule == rule)
        .unwrap_or_else(|| panic!("{bad_name}.rs: expected a `{rule}` finding:\n{bad:#?}"));
    assert!(
        hit.message.contains(" → "),
        "{bad_name}.rs: pass findings must print the call path:\n{}",
        hit.message
    );
    // Every hop is a `file:line` reference into the fixture.
    let hops = hit
        .message
        .split(" → ")
        .filter(|h| h.contains(&format!("{bad_name}.rs:")))
        .count();
    assert!(
        hops >= 2,
        "{bad_name}.rs: expected ≥2 `file:line` hops, message:\n{}",
        hit.message
    );
    let clean = lint_program_fixture(&format!("{slug}_clean"), config);
    assert!(
        clean.is_empty(),
        "{slug}_clean.rs must be clean, got:\n{clean:#?}"
    );
}

#[test]
fn transitive_alloc_fixture_pair() {
    // Hot-path entries come from `// lint: hot-path` markers; no config.
    assert_program_pair(Rule::TransitiveAlloc, &ProgramConfig::default());
}

#[test]
fn panic_reach_fixture_pair() {
    let config = ProgramConfig {
        panic_entries: vec![EntrySpec::new("", Some("Agent"), "ingest")],
        ..ProgramConfig::default()
    };
    assert_program_pair(Rule::PanicReach, &config);
}

#[test]
fn determinism_taint_fixture_pair() {
    let config = ProgramConfig {
        determinism_entries: vec![EntrySpec::new("", Some("Cluster"), "step")],
        ..ProgramConfig::default()
    };
    assert_program_pair(Rule::DeterminismTaint, &config);
}

#[test]
fn lock_cycle_fixture_pair() {
    assert_program_pair(Rule::LockCycle, &ProgramConfig::default());
}

#[test]
fn determinism_taint_respects_sinks() {
    // The same tainted fixture is silent when its file sits under a
    // configured observational sink prefix.
    let config = ProgramConfig {
        determinism_entries: vec![EntrySpec::new("", Some("Cluster"), "step")],
        determinism_sinks: vec!["determinism_taint_bad.rs".to_string()],
        ..ProgramConfig::default()
    };
    let findings = lint_program_fixture("determinism_taint_bad", &config);
    assert!(
        findings.iter().all(|f| f.rule != Rule::DeterminismTaint),
        "sink prefixes must stop taint traversal:\n{findings:#?}"
    );
}

#[test]
fn waiver_without_reason_still_fails() {
    let findings = lint_fixture("waiver_noreason");
    assert!(
        findings.iter().any(|f| f.rule == Rule::Waiver),
        "reasonless waiver must be reported as a `waiver` finding:\n{findings:#?}"
    );
    // The reasonless waiver must not silently suppress nothing AND pass:
    // the file as a whole still fails.
    assert!(!findings.is_empty());
}

#[test]
fn findings_render_with_path_line_rule() {
    let findings = lint_fixture("panic_bad");
    let first = findings.first().expect("panic_bad fires");
    let line = first.to_string();
    assert!(
        line.starts_with("panic_bad.rs:") && line.contains(": panic: "),
        "diagnostic format `path:line: rule: message`, got {line:?}"
    );
}
