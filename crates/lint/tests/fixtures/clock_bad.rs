//! Fixture: unwaived wall-clock reads must fire the `clock` rule.
use std::time::{Instant, SystemTime};

fn tick() -> u64 {
    let started = Instant::now();
    let _wall = SystemTime::now();
    started.elapsed().as_micros() as u64
}
