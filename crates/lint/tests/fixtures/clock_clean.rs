//! Fixture: sim-time arithmetic and test-only clocks are fine.
fn advance(now: SimTime, dt: SimDuration) -> SimTime {
    now + dt
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn bench_guard() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}
