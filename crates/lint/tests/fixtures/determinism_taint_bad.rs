// A hash-ordered iteration one hop below `Cluster::step`: per-file
// determinism rules are off in this fixture's scope, so only the
// whole-program taint pass can catch it.

use std::collections::HashMap;

pub struct Cluster {
    weights: HashMap<String, f64>,
}

impl Cluster {
    pub fn step(&mut self) -> f64 {
        self.total_weight()
    }

    fn total_weight(&self) -> f64 {
        let mut sum = 0.0;
        // Iteration order feeds float accumulation: order-dependent.
        for (_job, w) in self.weights.iter() {
            sum += w;
        }
        sum
    }
}
