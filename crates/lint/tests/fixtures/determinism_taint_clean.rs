// Clean twin of determinism_taint_bad.rs: a BTreeMap iterates in key
// order, so the float accumulation below `Cluster::step` is stable.

use std::collections::BTreeMap;

pub struct Cluster {
    weights: BTreeMap<String, f64>,
}

impl Cluster {
    pub fn step(&mut self) -> f64 {
        self.total_weight()
    }

    fn total_weight(&self) -> f64 {
        let mut sum = 0.0;
        for (_job, w) in self.weights.iter() {
            sum += w;
        }
        sum
    }
}
