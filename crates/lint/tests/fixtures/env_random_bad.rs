//! Fixture: environment reads and ad-hoc randomness must fire `env-random`.
fn seed() -> u64 {
    if let Ok(s) = std::env::var("CPI2_SEED") {
        return s.parse().unwrap_or_default();
    }
    random_u64()
}
