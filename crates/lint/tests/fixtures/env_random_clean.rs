//! Fixture: seeded SimRng draws are fine.
fn jitter(rng: &mut SimRng) -> u64 {
    rng.below(100)
}
