//! Fixture: per-call allocations inside a `lint: hot-path` fn.
// lint: hot-path
fn tick_all(machines: &mut [Machine], out: &mut Vec<Exit>) {
    let mut scratch = Vec::new();
    let mut wants = Vec::with_capacity(machines.len());
    let ids: Vec<u64> = machines.iter().map(|m| m.id).collect();
    let zeros = vec![0.0; ids.len()];
    for m in machines {
        wants.push(m.want());
        scratch.push(zeros.first().copied());
    }
    out.push(Exit::from(scratch.len() + wants.len()));
}
