//! Fixture: hot-path fns reuse caller-owned scratch buffers; unmarked
//! fns may allocate freely.
// lint: hot-path
fn tick_all(machines: &mut [Machine], wants: &mut Vec<f64>, out: &mut Vec<Exit>) {
    wants.clear();
    for m in machines.iter_mut() {
        wants.push(m.want());
    }
    if let Some(last) = wants.last() {
        out.push(Exit::of(*last));
    }
}

/// Cold setup path: allocation here is fine — no marker above.
fn build_fleet(n: usize) -> Vec<Machine> {
    let mut fleet = Vec::with_capacity(n);
    for seed in 0..n {
        fleet.push(Machine::seeded(seed));
    }
    fleet
}

// lint: hot-path
fn drain_exits(pending: &mut Vec<Exit>, out: &mut Vec<Exit>) {
    // lint: allow(hot-path-alloc) — drained once per epoch, not per tick
    let spare: Vec<Exit> = pending.drain(..).collect();
    for e in spare {
        out.push(e);
    }
}
