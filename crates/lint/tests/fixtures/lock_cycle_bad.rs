// A lock-order cycle split across functions: `publish` nests
// books → index directly, while `reindex` holds index and calls into
// `flush`, which takes books — index → books through the call graph.
// Neither function is wrong in isolation; only the whole-program
// lock-order graph sees the deadlock.

pub struct Store {
    books: Mutex<u64>,
    index: Mutex<u64>,
}

impl Store {
    pub fn publish(&self) {
        let _books = self.books.lock();
        let _index = self.index.lock();
    }

    pub fn reindex(&self) {
        let _index = self.index.lock();
        self.flush();
    }

    fn flush(&self) {
        let _books = self.books.lock();
    }
}
