// Clean twin of lock_cycle_bad.rs: every path acquires books before
// index, so the lock-order graph is acyclic (nesting alone is fine for
// this pass; ordering is what deadlocks).

pub struct Store {
    books: Mutex<u64>,
    index: Mutex<u64>,
}

impl Store {
    pub fn publish(&self) {
        let _books = self.books.lock();
        let _index = self.index.lock();
    }

    pub fn reindex(&self) {
        let _books = self.books.lock();
        self.refresh();
    }

    fn refresh(&self) {
        let _index = self.index.lock();
    }
}
