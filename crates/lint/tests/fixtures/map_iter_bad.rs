//! Fixture: iterating a hash-ordered map must fire `map-iter`.
use std::collections::{HashMap, HashSet};

struct Books {
    jobs: HashMap<u64, u32>,
}

fn total(b: &Books) -> u32 {
    let mut sum = 0;
    for (_id, n) in &b.jobs {
        sum += n;
    }
    sum
}

fn names(seen: HashSet<String>) -> Vec<String> {
    let seen = seen;
    seen.iter().cloned().collect()
}
