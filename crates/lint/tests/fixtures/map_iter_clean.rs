//! Fixture: ordered maps, waived iteration, and non-iterating use are fine.
use std::collections::{BTreeMap, HashMap};

struct Books {
    jobs: BTreeMap<u64, u32>,
    index: HashMap<u64, u32>,
}

fn total(b: &Books) -> u32 {
    let mut sum = 0;
    for (_id, n) in &b.jobs {
        sum += n;
    }
    sum += b.index.get(&0).copied().unwrap_or_default();
    // lint: allow(map-iter) — summation is order-independent.
    sum + b.index.values().sum::<u32>()
}
