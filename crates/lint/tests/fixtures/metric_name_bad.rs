//! Fixture: dynamic metric names must fire `metric-name`.
fn wire(telemetry: &Telemetry, shard: usize) -> Counter {
    telemetry.counter(format!("cpi_shard_{shard}_total"), &[])
}
