//! Fixture: literal metric names (with dynamic label values) are fine.
fn wire(telemetry: &Telemetry, shard: &str) -> Counter {
    telemetry.counter("cpi_shard_samples_total", &[("shard", shard)])
}
