//! Fixture: acquiring a lock while a guard is live must fire `nested-lock`.
fn publish(store: &Store) {
    let guard = store.publish_lock.lock();
    let cur = store.current.read();
    drop(cur);
    drop(guard);
}
