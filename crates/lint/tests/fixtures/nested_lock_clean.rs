//! Fixture: sequential guards, dropped guards and scoped guards are fine.
fn publish(store: &Store) {
    {
        let staged = store.staging.lock();
        staged.prepare();
    }
    let guard = store.publish_lock.lock();
    drop(guard);
    let cur = store.current.read();
    cur.inspect();
}
