//! Fixture: panic sites in non-test code must fire `panic`.
fn hot(map: &Map, key: &Key) -> u64 {
    let a = map.get(key).unwrap();
    let b = map.get(key).expect("key present");
    if a != b {
        panic!("inconsistent map");
    }
    match a {
        0 => b,
        _ => unreachable!("a is always zero"),
    }
}
