//! Fixture: propagated errors, defaults, waivers and test unwraps are fine.
fn hot(map: &Map, key: &Key) -> Result<u64, Error> {
    let a = map.get(key).ok_or(Error::Missing)?;
    let b = map.get(key).copied().unwrap_or_default();
    // lint: allow(panic) — documented constructor contract.
    let c = checked(a).expect("validated by caller");
    Ok(a + b + c)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
