// A panic site two hops below an entry point: per-file panic rules are
// off in this fixture's scope, so only the whole-program reachability
// pass can catch it — and it must print the offending call path.

pub struct Agent {
    last: Option<u64>,
}

impl Agent {
    pub fn ingest(&mut self, x: Option<u64>) -> u64 {
        self.last = x;
        decode(x)
    }
}

fn decode(x: Option<u64>) -> u64 {
    finishing_move(x)
}

fn finishing_move(x: Option<u64>) -> u64 {
    x.unwrap()
}
