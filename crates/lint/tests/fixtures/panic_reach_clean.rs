// Clean twin of panic_reach_bad.rs: the helper chain degrades gracefully
// instead of unwrapping.

pub struct Agent {
    last: Option<u64>,
}

impl Agent {
    pub fn ingest(&mut self, x: Option<u64>) -> u64 {
        self.last = x;
        decode(x)
    }
}

fn decode(x: Option<u64>) -> u64 {
    finishing_move(x)
}

fn finishing_move(x: Option<u64>) -> u64 {
    x.unwrap_or(0)
}
