//! Fixture: the serve-crate scoping. This source is what a *handler-side*
//! module (`state.rs`, `routes.rs`) must never do — read wall clocks or
//! spawn threads — and under that module's ruleset both fire. The same
//! source under `server.rs`'s ruleset is waived (sanctioned spawn/clock
//! site), which `serve_scope_fixture_pair` asserts from both sides.
use std::time::Instant;

fn snapshot_age(published: Instant) -> u128 {
    published.elapsed().as_micros()
}

fn refresh_in_background(state: SharedState) {
    std::thread::spawn(move || state.refresh());
}
