//! Fixture: the snapshot-swap idiom the serve crate's handler-side
//! modules are built on — no clocks, no threads, guards never nested,
//! metric names literal. Clean under the full serve-crate ruleset.
fn publish(live: &LiveState, snap: LiveSnapshot) {
    let fresh = Arc::new(snap);
    {
        let mut cur = live.snap.lock();
        *cur = fresh;
    }
    live.telemetry.counter("cpi_serve_snapshots_total").inc();
}

fn read(live: &LiveState) -> Arc<LiveSnapshot> {
    let cur = live.snap.lock();
    Arc::clone(&cur)
}
