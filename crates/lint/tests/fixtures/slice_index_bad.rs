//! Fixture: panicking `[...]` indexing must fire `slice-index`.
fn first_two(xs: &[u64]) -> u64 {
    let head = xs[0];
    head + xs[1]
}
