//! Fixture: .get(), full-range slices, attributes and waivers are fine.
#[derive(Debug)]
struct Shards {
    inner: Vec<u64>,
}

fn read(s: &Shards, idx: usize) -> u64 {
    let safe = s.inner.get(idx).copied().unwrap_or_default();
    let all = &s.inner[..];
    // lint: allow(slice-index) — idx is h % len, always in bounds.
    safe + s.inner[idx % s.inner.len()] + all.len() as u64
}
