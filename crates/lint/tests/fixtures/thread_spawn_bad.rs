//! Fixture: ad-hoc thread spawns must fire `thread-spawn`.
fn run(machines: Vec<Machine>) {
    for m in machines {
        std::thread::spawn(move || m.tick());
    }
}
