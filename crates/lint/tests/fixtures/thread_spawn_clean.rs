//! Fixture: spawns confined to test code are fine.
fn run(pool: &TickPool, machines: &mut [Machine]) {
    pool.tick(machines);
}

#[cfg(test)]
mod tests {
    #[test]
    fn concurrent_probe() {
        let h = std::thread::spawn(|| 1 + 1);
        assert_eq!(h.join().unwrap(), 2);
    }
}
