// A hot-path fn whose helper's helper allocates: the per-file rule sees
// nothing (the allocation is two hops away), the transitive pass must
// report it with the full call path.

// lint: hot-path
pub fn tick(xs: &mut Vec<u64>) {
    accumulate(xs);
}

fn accumulate(xs: &mut Vec<u64>) {
    let extra = build_scratch();
    for v in extra {
        xs.push(v);
    }
}

fn build_scratch() -> Vec<u64> {
    let mut v = Vec::new();
    v.push(1);
    v
}
