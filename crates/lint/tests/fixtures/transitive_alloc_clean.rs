// Clean twin of transitive_alloc_bad.rs: the helper chain writes into a
// caller-owned scratch buffer instead of allocating per call.

// lint: hot-path
pub fn tick(xs: &mut Vec<u64>) {
    accumulate(xs);
}

fn accumulate(xs: &mut Vec<u64>) {
    fill_scratch(xs);
}

fn fill_scratch(out: &mut Vec<u64>) {
    out.push(1);
}
