//! Fixture: a waiver without a reason must still fail (as `waiver`).
fn hot(map: &Map, key: &Key) -> u64 {
    // lint: allow(panic)
    map.get(key).unwrap()
}
