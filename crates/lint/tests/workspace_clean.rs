//! Tier-1 gate: the workspace must be free of unwaived, non-baseline
//! lint findings.
//!
//! This is the same check `cargo run -p cpi2-lint -- --workspace
//! --baseline crates/lint/baseline.txt` performs, wired into
//! `cargo test` so a banned pattern (an unwaived `Instant::now()` in the
//! simulator, a `HashMap` iteration in the scheduler, an `.unwrap()`
//! reachable from `Agent::ingest`, a lock-order cycle, …) fails CI with
//! a `path:line` diagnostic and its offending call path.

use cpi2_lint::{baseline, lint_workspace, render_text};
use std::path::PathBuf;

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let findings = lint_workspace(&root).expect("workspace scan");

    let base_path = root.join("crates/lint/baseline.txt");
    let base_text = std::fs::read_to_string(&base_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", base_path.display()));
    let base = baseline::parse(&base_text);
    let (fresh, stale) = baseline::diff(&findings, &base);

    assert!(
        fresh.is_empty(),
        "cpi2-lint found {} non-baseline finding(s):\n{}",
        fresh.len(),
        render_text(&fresh)
    );
    // Stale entries mean debt was paid down: shrink the baseline so it
    // cannot silently re-absorb a regression with the same key.
    assert!(
        stale.is_empty(),
        "baseline entries no longer match any finding — remove them from \
         crates/lint/baseline.txt:\n{}",
        stale.join("\n")
    );
}
