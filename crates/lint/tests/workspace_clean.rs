//! Tier-1 gate: the workspace must be free of unwaived lint findings.
//!
//! This is the same check `cargo run -p cpi2-lint -- --workspace` performs,
//! wired into `cargo test` so a banned pattern (an unwaived
//! `Instant::now()` in the simulator, a `HashMap` iteration in the
//! scheduler, an `.unwrap()` in the agent hot path, …) fails CI with a
//! `path:line` diagnostic.

use cpi2_lint::{lint_workspace, render_text};
use std::path::PathBuf;

#[test]
fn workspace_has_no_unwaived_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let findings = lint_workspace(&root).expect("workspace scan");
    assert!(
        findings.is_empty(),
        "cpi2-lint found {} unwaived finding(s):\n{}",
        findings.len(),
        render_text(&findings)
    );
}
