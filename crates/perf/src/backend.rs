//! Counter-source abstraction: where per-cgroup counters come from.
//!
//! The sampler is backend-independent: it only needs a monotonic
//! [`CounterBlock`] per task plus identity metadata. The bundled backend
//! reads the simulator's cgroups; on real hardware the same trait would
//! wrap `perf_event_open(2)` file descriptors in counting mode, grouped
//! per cgroup (the paper's per-cgroup `CPU_CLK_UNHALTED.REF` +
//! `INSTRUCTIONS_RETIRED` pair).

use cpi2_sim::{CounterBlock, Machine, TaskId};

/// One task's counter snapshot plus identity.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskCounters {
    /// The task.
    pub task: TaskId,
    /// Owning job's name.
    pub job_name: String,
    /// Monotonic counters as of the snapshot.
    pub counters: CounterBlock,
}

/// A source of per-cgroup hardware counters for one machine.
pub trait CounterSource {
    /// Stable identifier of this machine (staggers sampling phases).
    fn source_id(&self) -> u32;

    /// Hardware platform string (`platforminfo` in sample records).
    fn platform_name(&self) -> &str;

    /// Cost of one counter save/restore on an inter-cgroup context
    /// switch, in microseconds.
    fn counter_switch_us(&self) -> f64;

    /// Snapshot of every resident task's counters.
    fn snapshot(&self) -> Vec<TaskCounters>;
}

impl CounterSource for Machine {
    fn source_id(&self) -> u32 {
        self.id.0
    }

    fn platform_name(&self) -> &str {
        &self.platform.name
    }

    fn counter_switch_us(&self) -> f64 {
        self.platform.counter_switch_us
    }

    fn snapshot(&self) -> Vec<TaskCounters> {
        self.tasks()
            .map(|t| TaskCounters {
                task: t.id,
                job_name: t.job_name.clone(),
                counters: *t.cgroup.counters(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_sim::{
        ConstantLoad, JobId, MachineId, Platform, Priority, ResourceProfile, SchedClass,
        SimDuration, SimTime, TaskInstance,
    };

    #[test]
    fn machine_implements_counter_source() {
        let mut m = Machine::new(MachineId(3), Platform::sandy_bridge(), 1);
        m.add_task(
            TaskInstance {
                id: TaskId {
                    job: JobId(1),
                    index: 0,
                },
                model: Box::new(ConstantLoad::new(1.0, 2, ResourceProfile::compute_bound())),
            },
            "svc",
            SchedClass::Batch,
            Priority::NonProduction,
            None,
        );
        m.tick(SimTime::ZERO, SimDuration::from_secs(1), &mut Vec::new());
        let src: &dyn CounterSource = &m;
        assert_eq!(src.source_id(), 3);
        assert_eq!(src.platform_name(), "sandybridge-2.2GHz");
        assert!(src.counter_switch_us() > 0.0);
        let snap = src.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].job_name, "svc");
        assert!(snap[0].counters.instructions > 0.0);
    }
}
