//! Hardware performance-counter layer for the CPI² reproduction.
//!
//! Models §3.1 of the paper: per-cgroup counting-mode collection of
//! `CPU_CLK_UNHALTED.REF` and `INSTRUCTIONS_RETIRED` (plus the cache-miss
//! counters used by the Fig. 15(c) analysis), sampled 10 seconds out of
//! every minute by a per-machine daemon, with save/restore overhead charged
//! per inter-cgroup context switch.
//!
//! The [`sampler::MachineSampler`] reads cgroup counters maintained by
//! `cpi2-sim`; on real hardware the same schedule would sit on top of
//! `perf_event_open(2)` in counting mode — the record format
//! ([`reading::CounterReading`]) is backend-independent.

#![warn(missing_docs)]

pub mod backend;
#[cfg(all(target_os = "linux", feature = "linux-perf"))]
pub mod linux;
pub mod reading;
pub mod sampler;

pub use backend::{CounterSource, TaskCounters};
pub use reading::CounterReading;
pub use sampler::{ClusterSampler, MachineSampler, SamplerConfig};
