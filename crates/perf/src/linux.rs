//! Real hardware counters via `perf_event_open(2)` (Linux, feature
//! `linux-perf`).
//!
//! The paper's collector uses perf_event in *counting* mode (§3.1); this
//! module provides the same primitive on real hardware: open a counter,
//! let it count, read the accumulated value — no sampling buffers, no
//! interrupts. [`SelfCounterSource`] measures the calling process, which
//! is enough to run the CPI² sampler against real silicon (per-cgroup
//! attachment uses the same syscall with `PERF_FLAG_PID_CGROUP`).
//!
//! Availability is environment-dependent (`perf_event_paranoid`,
//! seccomp, VMs without a PMU); every entry point reports errors instead
//! of panicking, and tests skip when counters cannot be opened.

use crate::backend::{CounterSource, TaskCounters};
use cpi2_sim::{CounterBlock, JobId, TaskId};
use std::io;
use std::os::unix::io::RawFd;

const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;

const PERF_EVENT_IOC_ENABLE: libc::c_ulong = 0x2400;
const PERF_EVENT_IOC_DISABLE: libc::c_ulong = 0x2401;
const PERF_EVENT_IOC_RESET: libc::c_ulong = 0x2403;

/// Minimal `perf_event_attr` for counting mode. The kernel accepts any
/// declared size as long as bytes beyond what it knows are zero; the
/// trailing pad keeps this robust across kernel versions.
#[repr(C)]
#[derive(Clone, Copy)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period_or_freq: u64,
    sample_type: u64,
    read_format: u64,
    /// Bitfield: bit 0 = disabled, bit 5 = exclude_kernel,
    /// bit 6 = exclude_hv.
    flags: u64,
    _pad: [u64; 12],
}

/// One hardware counter in counting mode.
#[derive(Debug)]
pub struct PerfCounter {
    fd: RawFd,
}

impl PerfCounter {
    /// Opens a hardware counter of the given config for the calling
    /// process on any CPU, excluding kernel and hypervisor cycles.
    ///
    /// # Errors
    ///
    /// Propagates the syscall error (commonly `EACCES` under a high
    /// `perf_event_paranoid`, or `ENOENT` without a PMU).
    pub fn open_self(config: u64) -> io::Result<PerfCounter> {
        let attr = PerfEventAttr {
            type_: PERF_TYPE_HARDWARE,
            size: std::mem::size_of::<PerfEventAttr>() as u32,
            config,
            sample_period_or_freq: 0,
            sample_type: 0,
            read_format: 0,
            // disabled | exclude_kernel | exclude_hv.
            flags: 1 | (1 << 5) | (1 << 6),
            _pad: [0; 12],
        };
        // SAFETY: `attr` is a properly initialized, repr(C) attribute
        // block that outlives the call; the remaining arguments are plain
        // integers (pid 0 = self, cpu −1 = any, no group, no flags).
        let fd = unsafe {
            libc::syscall(
                libc::SYS_perf_event_open,
                &attr as *const PerfEventAttr,
                0 as libc::pid_t,
                -1 as libc::c_int,
                -1 as libc::c_int,
                0 as libc::c_ulong,
            )
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(PerfCounter { fd: fd as RawFd })
    }

    /// Opens the cycles counter for the calling process.
    pub fn cycles() -> io::Result<PerfCounter> {
        PerfCounter::open_self(PERF_COUNT_HW_CPU_CYCLES)
    }

    /// Opens the instructions-retired counter for the calling process.
    pub fn instructions() -> io::Result<PerfCounter> {
        PerfCounter::open_self(PERF_COUNT_HW_INSTRUCTIONS)
    }

    /// Opens the last-level cache-miss counter for the calling process.
    pub fn cache_misses() -> io::Result<PerfCounter> {
        PerfCounter::open_self(PERF_COUNT_HW_CACHE_MISSES)
    }

    fn ioctl(&self, request: libc::c_ulong) -> io::Result<()> {
        // SAFETY: `fd` is a live perf event fd owned by `self`; the
        // request codes take no argument.
        let r = unsafe { libc::ioctl(self.fd, request, 0) };
        if r < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts (or resumes) counting.
    pub fn enable(&self) -> io::Result<()> {
        self.ioctl(PERF_EVENT_IOC_ENABLE)
    }

    /// Stops counting (the value remains readable).
    pub fn disable(&self) -> io::Result<()> {
        self.ioctl(PERF_EVENT_IOC_DISABLE)
    }

    /// Resets the accumulated count to zero.
    pub fn reset(&self) -> io::Result<()> {
        self.ioctl(PERF_EVENT_IOC_RESET)
    }

    /// Reads the accumulated count.
    pub fn read(&self) -> io::Result<u64> {
        let mut value: u64 = 0;
        // SAFETY: reading exactly 8 bytes into a valid, aligned u64.
        let n = unsafe {
            libc::read(
                self.fd,
                &mut value as *mut u64 as *mut libc::c_void,
                std::mem::size_of::<u64>(),
            )
        };
        if n != std::mem::size_of::<u64>() as isize {
            return Err(io::Error::last_os_error());
        }
        Ok(value)
    }
}

impl Drop for PerfCounter {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this struct and closed exactly once.
        unsafe {
            libc::close(self.fd);
        }
    }
}

/// A [`CounterSource`] over the calling process's real hardware counters.
///
/// The whole process is modelled as one "task" (job 0, index 0); the CPI²
/// sampler and spec machinery run unchanged on top.
#[derive(Debug)]
pub struct SelfCounterSource {
    cycles: PerfCounter,
    instructions: PerfCounter,
    cache_misses: Option<PerfCounter>,
    platform: String,
}

impl SelfCounterSource {
    /// Opens cycle + instruction (and, best-effort, cache-miss) counters
    /// for this process and starts them.
    ///
    /// # Errors
    ///
    /// Fails when the environment does not permit opening counters.
    pub fn open() -> io::Result<SelfCounterSource> {
        let cycles = PerfCounter::cycles()?;
        let instructions = PerfCounter::instructions()?;
        let cache_misses = PerfCounter::cache_misses().ok();
        cycles.enable()?;
        instructions.enable()?;
        if let Some(c) = &cache_misses {
            let _ = c.enable();
        }
        Ok(SelfCounterSource {
            cycles,
            instructions,
            cache_misses,
            platform: "linux-perf-self".to_string(),
        })
    }

    fn cpu_time_us() -> f64 {
        // SAFETY: getrusage fills a plain struct for the calling process.
        let mut usage: libc::rusage = unsafe { std::mem::zeroed() };
        // SAFETY: `usage` is valid for writes of `rusage`.
        let r = unsafe { libc::getrusage(libc::RUSAGE_SELF, &mut usage) };
        if r != 0 {
            return 0.0;
        }
        let tv = |t: libc::timeval| t.tv_sec as f64 * 1e6 + t.tv_usec as f64;
        tv(usage.ru_utime) + tv(usage.ru_stime)
    }
}

impl CounterSource for SelfCounterSource {
    fn source_id(&self) -> u32 {
        0
    }

    fn platform_name(&self) -> &str {
        &self.platform
    }

    fn counter_switch_us(&self) -> f64 {
        2.0
    }

    fn snapshot(&self) -> Vec<TaskCounters> {
        let cycles = self.cycles.read().unwrap_or(0) as f64;
        let instructions = self.instructions.read().unwrap_or(0) as f64;
        let misses = self
            .cache_misses
            .as_ref()
            .and_then(|c| c.read().ok())
            .unwrap_or(0) as f64;
        vec![TaskCounters {
            task: TaskId {
                job: JobId(0),
                index: 0,
            },
            job_name: "self".to_string(),
            counters: CounterBlock {
                cycles,
                instructions,
                l2_misses: 0.0,
                l3_misses: misses,
                mem_lines: misses,
                context_switches: 0,
                cpu_time_us: Self::cpu_time_us(),
            },
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spins enough work that counters must move.
    fn burn() -> u64 {
        let mut acc = 1u64;
        for i in 1..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    #[test]
    fn counting_mode_measures_real_cpi() {
        let Ok(source) = SelfCounterSource::open() else {
            eprintln!("perf_event unavailable in this environment; skipping");
            return;
        };
        let before = source.snapshot()[0].counters;
        std::hint::black_box(burn());
        let after = source.snapshot()[0].counters;
        let d = after.delta(&before);
        assert!(d.instructions > 1e6, "instructions {}", d.instructions);
        assert!(d.cycles > 0.0);
        let cpi = d.cpi().expect("instructions retired");
        assert!(
            (0.05..20.0).contains(&cpi),
            "implausible hardware CPI {cpi}"
        );
    }

    #[test]
    fn reset_zeroes_counter() {
        let Ok(c) = PerfCounter::cycles() else {
            eprintln!("perf_event unavailable in this environment; skipping");
            return;
        };
        c.enable().unwrap();
        std::hint::black_box(burn());
        c.disable().unwrap();
        assert!(c.read().unwrap() > 0);
        c.reset().unwrap();
        assert_eq!(c.read().unwrap(), 0);
    }
}
