//! Counter readings produced by the per-machine sampler.

use cpi2_sim::{SimDuration, SimTime, TaskId};
use serde::{Deserialize, Serialize};

/// One per-task counter reading over a counting window.
///
/// This is the raw material of the CPI² pipeline: the fields mirror the
/// record of §3.1 (`jobname`, `platforminfo`, `timestamp`, `cpu_usage`,
/// `cpi`) plus the auxiliary miss counters used in the paper's Fig. 15(c)
/// analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterReading {
    /// The sampled task.
    pub task: TaskId,
    /// Owning job's name.
    pub job_name: String,
    /// Hardware platform string (CPU type).
    pub platform: String,
    /// End of the counting window, µs since epoch.
    pub timestamp: SimTime,
    /// Length of the counting window.
    pub window: SimDuration,
    /// Average CPU usage over the window, CPU-sec/sec.
    pub cpu_usage: f64,
    /// Cycles per instruction over the window; `None` if the task retired
    /// no instructions (it was idle or fully throttled).
    pub cpi: Option<f64>,
    /// Instructions retired in the window.
    pub instructions: f64,
    /// L3 misses per kilo-instruction over the window.
    pub l3_mpki: f64,
    /// L2 misses per kilo-instruction over the window.
    pub l2_mpki: f64,
    /// Memory lines transferred per cycle over the window.
    pub mem_lines_per_cycle: f64,
    /// Counter save/restore overhead attributed to this task over the
    /// window, in µs (the "couple of microseconds" per inter-cgroup
    /// context switch, §3.1).
    pub overhead_us: f64,
}

impl CounterReading {
    /// Fraction of the task's CPU time spent on counter save/restore.
    ///
    /// The paper's budget is "less than 0.1 %".
    pub fn overhead_fraction(&self) -> f64 {
        let cpu_us = self.cpu_usage * self.window.as_us() as f64;
        if cpu_us > 0.0 {
            self.overhead_us / cpu_us
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_sim::JobId;

    fn reading(cpu_usage: f64, overhead_us: f64) -> CounterReading {
        CounterReading {
            task: TaskId {
                job: JobId(1),
                index: 0,
            },
            job_name: "j".into(),
            platform: "p".into(),
            timestamp: SimTime::from_secs(60),
            window: SimDuration::from_secs(10),
            cpu_usage,
            cpi: Some(1.0),
            instructions: 1e9,
            l3_mpki: 1.0,
            l2_mpki: 2.5,
            mem_lines_per_cycle: 0.001,
            overhead_us,
        }
    }

    #[test]
    fn overhead_fraction_math() {
        // 1 CPU-sec/sec over 10 s = 1e7 CPU-µs; 100 µs overhead = 1e-5.
        let r = reading(1.0, 100.0);
        assert!((r.overhead_fraction() - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn overhead_fraction_idle_task_zero() {
        let r = reading(0.0, 100.0);
        assert_eq!(r.overhead_fraction(), 0.0);
    }
}
