//! Duty-cycle counter sampling: 10 seconds of counting once a minute.
//!
//! The paper's daemon "gather\[s\] CPI data for a 10 second period once a
//! minute ... to give other measurement tools time to use the counters"
//! (§3.1), using perf_event in *counting* mode per cgroup, with counters
//! saved/restored on inter-cgroup context switches. [`MachineSampler`]
//! reproduces that schedule against a simulated machine's cgroup counters;
//! [`ClusterSampler`] staggers per-machine phases so a cluster's samples
//! don't arrive in lock-step.

use crate::backend::CounterSource;
use crate::reading::CounterReading;
use cpi2_sim::{CounterBlock, SimDuration, SimTime, TaskId};
use cpi2_telemetry::{Counter, Gauge, Histo, Telemetry};
use std::collections::HashMap;

/// Sampling schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Counting-window length (paper: 10 s).
    pub window: SimDuration,
    /// Schedule period (paper: one window per minute).
    pub period: SimDuration,
    /// Phase offset of the window start within the period.
    pub phase: SimDuration,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            window: SimDuration::from_secs(10),
            period: SimDuration::from_secs(60),
            phase: SimDuration::ZERO,
        }
    }
}

impl SamplerConfig {
    /// Validates window/period consistency.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit in the period or any span is
    /// non-positive.
    pub fn validate(&self) {
        assert!(self.window.as_us() > 0, "window must be positive");
        assert!(self.period.as_us() > 0, "period must be positive");
        assert!(
            self.window.as_us() + self.phase.as_us() <= self.period.as_us(),
            "window+phase must fit in period"
        );
    }
}

/// In-flight counting window.
#[derive(Debug)]
struct OpenWindow {
    started: SimTime,
    baseline: HashMap<TaskId, CounterBlock>,
}

/// Cached telemetry handles for duty-cycle samplers.
#[derive(Debug, Clone, Default)]
struct SamplerMetrics {
    /// Counting windows closed.
    windows_total: Counter,
    /// Counter readings produced across all closed windows.
    readings_total: Counter,
    /// Duty-cycle coverage of the last closed window: achieved counting
    /// span over the schedule period (paper target: 10 s / 60 s ≈ 0.167).
    duty_cycle_coverage: Gauge,
    /// Readings per closed window — how many cgroups shared (multiplexed)
    /// the counters within one duty cycle.
    multiplex_occupancy: Histo,
}

impl SamplerMetrics {
    fn new(telemetry: &Telemetry) -> SamplerMetrics {
        SamplerMetrics {
            windows_total: telemetry.counter("cpi_sampler_windows_total", &[]),
            readings_total: telemetry.counter("cpi_sampler_readings_total", &[]),
            duty_cycle_coverage: telemetry.gauge("cpi_sampler_duty_cycle_coverage", &[]),
            multiplex_occupancy: telemetry.histogram("cpi_sampler_multiplex_occupancy", &[]),
        }
    }
}

/// Per-machine duty-cycle sampler.
#[derive(Debug)]
pub struct MachineSampler {
    config: SamplerConfig,
    open: Option<OpenWindow>,
    metrics: SamplerMetrics,
}

impl MachineSampler {
    /// Creates a sampler with the given schedule (telemetry disabled).
    pub fn new(config: SamplerConfig) -> Self {
        MachineSampler::with_telemetry(config, &Telemetry::disabled())
    }

    /// Creates a sampler reporting window/coverage metrics to `telemetry`.
    pub fn with_telemetry(config: SamplerConfig, telemetry: &Telemetry) -> Self {
        config.validate();
        MachineSampler {
            config,
            open: None,
            metrics: SamplerMetrics::new(telemetry),
        }
    }

    /// True if `now` falls inside the counting window of its period.
    fn in_window(&self, now: SimTime) -> bool {
        let pos = now.as_us().rem_euclid(self.config.period.as_us());
        let start = self.config.phase.as_us();
        pos >= start && pos < start + self.config.window.as_us()
    }

    /// Polls the sampler. Call once per simulation tick, *after* the
    /// counter source has advanced. Opens a counting window when the
    /// schedule says so, and on window close returns one reading per task
    /// that was present at both edges.
    pub fn poll(&mut self, source: &dyn CounterSource, now: SimTime) -> Vec<CounterReading> {
        match (self.open.take(), self.in_window(now)) {
            (None, true) => {
                // Window opens: snapshot baselines.
                let baseline = source
                    .snapshot()
                    .into_iter()
                    .map(|tc| (tc.task, tc.counters))
                    .collect();
                self.open = Some(OpenWindow {
                    started: now,
                    baseline,
                });
                Vec::new()
            }
            (Some(w), false) => {
                // Window closes: produce deltas.
                let window = now - w.started;
                if window.as_us() <= 0 {
                    return Vec::new();
                }
                let mut out = Vec::new();
                for tc in source.snapshot() {
                    let Some(base) = w.baseline.get(&tc.task) else {
                        continue; // Task arrived mid-window.
                    };
                    let d = tc.counters.delta(base);
                    if d.cpu_time_us < 0.0 {
                        continue; // Counter reset (task restarted in place).
                    }
                    let kinstr = d.instructions / 1000.0;
                    out.push(CounterReading {
                        task: tc.task,
                        job_name: tc.job_name,
                        platform: source.platform_name().to_string(),
                        timestamp: now,
                        window,
                        cpu_usage: d.cpu_time_us / window.as_us() as f64,
                        cpi: d.cpi(),
                        instructions: d.instructions,
                        l3_mpki: if kinstr > 0.0 {
                            d.l3_misses / kinstr
                        } else {
                            0.0
                        },
                        l2_mpki: if kinstr > 0.0 {
                            d.l2_misses / kinstr
                        } else {
                            0.0
                        },
                        mem_lines_per_cycle: if d.cycles > 0.0 {
                            d.mem_lines / d.cycles
                        } else {
                            0.0
                        },
                        overhead_us: d.context_switches as f64 * source.counter_switch_us(),
                    });
                }
                self.metrics.windows_total.inc();
                self.metrics.readings_total.add(out.len() as u64);
                self.metrics
                    .duty_cycle_coverage
                    .set(window.as_us() as f64 / self.config.period.as_us() as f64);
                self.metrics.multiplex_occupancy.record(out.len() as f64);
                out
            }
            (open, _) => {
                // Mid-window or idle between windows: keep state as-is.
                self.open = open;
                Vec::new()
            }
        }
    }
}

/// Cluster-wide sampler: one [`MachineSampler`] per machine with a phase
/// derived from the machine id, staggering collection across the fleet.
#[derive(Debug, Default)]
pub struct ClusterSampler {
    samplers: HashMap<u32, MachineSampler>,
    telemetry: Telemetry,
}

impl ClusterSampler {
    /// Creates an empty cluster sampler (telemetry disabled).
    pub fn new() -> Self {
        ClusterSampler::default()
    }

    /// Creates a cluster sampler whose lazily created per-machine
    /// samplers all report to `telemetry`. The per-machine handles share
    /// one fleet-wide series per metric, matching how the paper's daemon
    /// reports into a shared monitoring system.
    pub fn with_telemetry(telemetry: &Telemetry) -> Self {
        ClusterSampler {
            samplers: HashMap::new(),
            telemetry: telemetry.clone(),
        }
    }

    /// Polls one counter source, lazily creating its sampler with a
    /// staggered phase.
    pub fn poll(&mut self, source: &dyn CounterSource, now: SimTime) -> Vec<CounterReading> {
        let telemetry = &self.telemetry;
        let sampler = self.samplers.entry(source.source_id()).or_insert_with(|| {
            let base = SamplerConfig::default();
            let slots = ((base.period.as_us() - base.window.as_us()) / cpi2_sim::time::US_PER_SEC)
                as u64
                + 1;
            let phase = SimDuration::from_secs((source.source_id() as u64 % slots) as i64);
            MachineSampler::with_telemetry(SamplerConfig { phase, ..base }, telemetry)
        });
        sampler.poll(source, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_sim::{
        ConstantLoad, JobId, Machine, MachineId, Platform, Priority, ResourceProfile, SchedClass,
        TaskInstance,
    };

    fn machine_with_task(cpu: f64) -> Machine {
        let mut m = Machine::new(MachineId(0), Platform::westmere(), 1);
        m.add_task(
            TaskInstance {
                id: TaskId {
                    job: JobId(1),
                    index: 0,
                },
                model: Box::new(ConstantLoad::new(cpu, 4, ResourceProfile::compute_bound())),
            },
            "svc",
            SchedClass::LatencySensitive,
            Priority::Production,
            None,
        );
        m
    }

    /// Drives machine + sampler for `secs` simulated seconds.
    fn drive(m: &mut Machine, s: &mut MachineSampler, secs: i64) -> Vec<CounterReading> {
        let mut out = Vec::new();
        let dt = SimDuration::from_secs(1);
        for i in 0..secs {
            let now = SimTime::from_secs(i);
            m.tick(now, dt, &mut Vec::new());
            out.extend(s.poll(m, now + dt));
        }
        out
    }

    #[test]
    fn one_reading_per_minute() {
        let mut m = machine_with_task(2.0);
        let mut s = MachineSampler::new(SamplerConfig::default());
        let readings = drive(&mut m, &mut s, 300);
        // 5 minutes → 5 windows (the first closes at t=10s).
        assert_eq!(readings.len(), 5);
    }

    #[test]
    fn reading_reflects_usage_and_cpi() {
        let mut m = machine_with_task(2.0);
        let mut s = MachineSampler::new(SamplerConfig::default());
        let readings = drive(&mut m, &mut s, 70);
        let r = &readings[0];
        assert!((r.cpu_usage - 2.0).abs() < 0.01, "usage={}", r.cpu_usage);
        let cpi = r.cpi.unwrap();
        assert!(cpi > 0.7 && cpi < 1.2, "cpi={cpi}");
        assert!((8.5..=10.5).contains(&r.window.as_secs_f64()));
        assert_eq!(r.platform, "westmere-2.6GHz");
        assert_eq!(r.job_name, "svc");
    }

    #[test]
    fn overhead_under_budget() {
        // §3.1: total CPU overhead less than 0.1 %.
        let mut m = machine_with_task(2.0);
        let mut s = MachineSampler::new(SamplerConfig::default());
        let readings = drive(&mut m, &mut s, 300);
        for r in &readings {
            assert!(
                r.overhead_fraction() < 0.001,
                "overhead {}",
                r.overhead_fraction()
            );
        }
    }

    #[test]
    fn task_arriving_mid_window_skipped_once() {
        let mut m = machine_with_task(1.0);
        let mut s = MachineSampler::new(SamplerConfig::default());
        let dt = SimDuration::from_secs(1);
        for i in 0..5 {
            let now = SimTime::from_secs(i);
            m.tick(now, dt, &mut Vec::new());
            s.poll(&m, now + dt);
        }
        // Second task arrives at t=5, inside the first window.
        m.add_task(
            TaskInstance {
                id: TaskId {
                    job: JobId(2),
                    index: 0,
                },
                model: Box::new(ConstantLoad::new(1.0, 1, ResourceProfile::compute_bound())),
            },
            "late",
            SchedClass::Batch,
            Priority::NonProduction,
            None,
        );
        let mut first_close = Vec::new();
        let mut second_close = Vec::new();
        for i in 5..130 {
            let now = SimTime::from_secs(i);
            m.tick(now, dt, &mut Vec::new());
            let r = s.poll(&m, now + dt);
            if !r.is_empty() {
                if first_close.is_empty() {
                    first_close = r;
                } else if second_close.is_empty() {
                    second_close = r;
                }
            }
        }
        assert_eq!(first_close.len(), 1, "latecomer not in first window");
        assert_eq!(second_close.len(), 2, "latecomer sampled next window");
    }

    #[test]
    fn cluster_sampler_staggers_phases() {
        let mut cs = ClusterSampler::new();
        let mut m0 = machine_with_task(1.0);
        let mut m1 = Machine::new(MachineId(7), Platform::westmere(), 2);
        m1.add_task(
            TaskInstance {
                id: TaskId {
                    job: JobId(3),
                    index: 0,
                },
                model: Box::new(ConstantLoad::new(1.0, 1, ResourceProfile::compute_bound())),
            },
            "x",
            SchedClass::Batch,
            Priority::NonProduction,
            None,
        );
        let dt = SimDuration::from_secs(1);
        let mut t0 = None;
        let mut t1 = None;
        for i in 0..120 {
            let now = SimTime::from_secs(i);
            m0.tick(now, dt, &mut Vec::new());
            m1.tick(now, dt, &mut Vec::new());
            if !cs.poll(&m0, now + dt).is_empty() && t0.is_none() {
                t0 = Some(i);
            }
            if !cs.poll(&m1, now + dt).is_empty() && t1.is_none() {
                t1 = Some(i);
            }
        }
        assert_ne!(t0.unwrap(), t1.unwrap(), "phases should differ");
    }

    #[test]
    fn telemetry_tracks_windows_coverage_and_occupancy() {
        let telemetry = Telemetry::enabled();
        let mut m = machine_with_task(2.0);
        let mut s = MachineSampler::with_telemetry(SamplerConfig::default(), &telemetry);
        let readings = drive(&mut m, &mut s, 300);
        assert_eq!(readings.len(), 5);
        let text = telemetry.prometheus_text().unwrap();
        assert!(text.contains("cpi_sampler_windows_total 5"), "{text}");
        assert!(text.contains("cpi_sampler_readings_total 5"), "{text}");
        // 10 s window of a 60 s period; the closing poll lands on whole
        // ticks so coverage is near but not exactly 1/6.
        assert!(
            text.contains("cpi_sampler_duty_cycle_coverage 0.16"),
            "{text}"
        );
        assert!(
            text.contains("cpi_sampler_multiplex_occupancy_count 5"),
            "{text}"
        );
    }

    #[test]
    #[should_panic]
    fn config_rejects_oversized_window() {
        MachineSampler::new(SamplerConfig {
            window: SimDuration::from_secs(61),
            period: SimDuration::from_secs(60),
            phase: SimDuration::ZERO,
        });
    }
}
