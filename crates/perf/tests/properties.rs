//! Property-based tests for the sampler schedule and readings.

use cpi2_perf::{MachineSampler, SamplerConfig};
use cpi2_sim::{
    ConstantLoad, JobId, Machine, MachineId, Platform, Priority, ResourceProfile, SchedClass,
    SimDuration, SimTime, TaskId, TaskInstance,
};
use proptest::prelude::*;

fn machine(task_cpus: &[f64], seed: u64) -> Machine {
    let mut m = Machine::new(MachineId(0), Platform::westmere(), seed);
    for (i, &cpu) in task_cpus.iter().enumerate() {
        m.add_task(
            TaskInstance {
                id: TaskId {
                    job: JobId(i as u32),
                    index: 0,
                },
                model: Box::new(ConstantLoad::new(cpu, 2, ResourceProfile::compute_bound())),
            },
            format!("job{i}"),
            SchedClass::Batch,
            Priority::NonProduction,
            None,
        );
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn readings_once_per_period(
        cpus in prop::collection::vec(0.1..2.0f64, 1..6),
        window_s in 2..20i64,
        phase_s in 0..30i64,
        seed in any::<u64>(),
    ) {
        let period_s = 60i64;
        prop_assume!(window_s + phase_s <= period_s);
        let mut m = machine(&cpus, seed);
        let mut s = MachineSampler::new(SamplerConfig {
            window: SimDuration::from_secs(window_s),
            period: SimDuration::from_secs(period_s),
            phase: SimDuration::from_secs(phase_s),
        });
        let dt = SimDuration::from_secs(1);
        let mut batches = 0;
        for i in 0..(period_s * 5) {
            let now = SimTime::from_secs(i);
            m.tick(now, dt, &mut Vec::new());
            let r = s.poll(&m, now + dt);
            if !r.is_empty() {
                batches += 1;
                // Each batch covers every resident task exactly once.
                prop_assert_eq!(r.len(), cpus.len());
            }
        }
        // 5 periods → 4-5 closed windows depending on phase alignment.
        prop_assert!((4..=5).contains(&batches), "batches={batches}");
    }

    #[test]
    fn readings_are_physical(
        cpus in prop::collection::vec(0.1..3.0f64, 1..8),
        seed in any::<u64>(),
    ) {
        // Stay below machine capacity so grants equal demands.
        prop_assume!(cpus.iter().sum::<f64>() < 11.0);
        let mut m = machine(&cpus, seed);
        let mut s = MachineSampler::new(SamplerConfig::default());
        let dt = SimDuration::from_secs(1);
        let mut readings = Vec::new();
        for i in 0..180 {
            let now = SimTime::from_secs(i);
            m.tick(now, dt, &mut Vec::new());
            readings.extend(s.poll(&m, now + dt));
        }
        prop_assert!(!readings.is_empty());
        for r in &readings {
            prop_assert!(r.cpu_usage >= 0.0);
            prop_assert!(r.cpu_usage <= Platform::westmere().cores as f64 + 1e-9);
            if let Some(cpi) = r.cpi {
                prop_assert!(cpi > 0.0 && cpi.is_finite());
            }
            prop_assert!(r.instructions >= 0.0);
            prop_assert!(r.l3_mpki >= 0.0);
            prop_assert!(r.overhead_fraction() < 0.001, "overhead budget (§3.1)");
        }
        // Usage must roughly match the constant demand per task.
        for (i, &cpu) in cpus.iter().enumerate() {
            let mine: Vec<&_> = readings
                .iter()
                .filter(|r| r.task.job == JobId(i as u32))
                .collect();
            prop_assert!(!mine.is_empty());
            for r in mine {
                prop_assert!((r.cpu_usage - cpu).abs() < 0.05 * cpu + 0.02,
                    "task {i}: usage {} vs demand {cpu}", r.cpu_usage);
            }
        }
    }
}
