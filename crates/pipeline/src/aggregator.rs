//! The spec aggregation service: SpecBuilder on a refresh cadence.
//!
//! §3.1: specs are recalculated "every 24 hours (we plan to increase the
//! frequency to hourly)". The service accumulates samples continuously and
//! rolls the builder at each refresh boundary, publishing the result to a
//! [`crate::specstore::SpecStore`].

use crate::specstore::SpecStore;
use cpi2_core::{Cpi2Config, CpiSample, CpiSpec, ShardedSpecBuilder, DEFAULT_SPEC_SHARDS};
use cpi2_telemetry::{Counter, Histo, Telemetry};
use std::collections::{BTreeMap, BTreeSet};

/// Spec aggregation with periodic refresh.
///
/// Sample ingest goes through a [`ShardedSpecBuilder`], so heavy batches
/// only contend per (job, platform) shard rather than on one builder-wide
/// lock; the merged output is identical to an unsharded builder's.
#[derive(Debug)]
pub struct Aggregator {
    builder: ShardedSpecBuilder,
    refresh_period_us: i64,
    next_roll: i64,
    samples_seen: u64,
    /// Idempotent-ingest window (µs), if enabled: a `(task, timestamp)`
    /// pair seen within this horizon of the newest sample is skipped, so a
    /// duplicated shipment cannot skew spec statistics.
    dedup_horizon_us: Option<i64>,
    /// `timestamp → tasks` already ingested inside the horizon.
    seen: BTreeMap<i64, BTreeSet<u64>>,
    /// High-water timestamp driving horizon eviction.
    seen_watermark: i64,
    duplicates_dropped: u64,
    metrics: AggregatorMetrics,
}

/// Cached telemetry handles for the aggregation service.
#[derive(Debug, Default)]
struct AggregatorMetrics {
    telemetry: Telemetry,
    batch_size: Histo,
    samples_total: Counter,
    build_duration_us: Histo,
    specs_published_total: Counter,
    duplicates_total: Counter,
}

impl AggregatorMetrics {
    fn new(telemetry: &Telemetry) -> AggregatorMetrics {
        AggregatorMetrics {
            telemetry: telemetry.clone(),
            batch_size: telemetry.histogram("cpi_aggregator_batch_size", &[]),
            samples_total: telemetry.counter("cpi_aggregator_samples_total", &[]),
            build_duration_us: telemetry.histogram("cpi_spec_build_duration_us", &[]),
            specs_published_total: telemetry.counter("cpi_specs_published_total", &[]),
            duplicates_total: telemetry.counter("cpi_aggregator_duplicates_total", &[]),
        }
    }
}

impl Aggregator {
    /// Creates an aggregator with [`DEFAULT_SPEC_SHARDS`] builder shards;
    /// the first refresh happens one period after `start_us`.
    pub fn new(config: Cpi2Config, start_us: i64) -> Self {
        Aggregator::with_shards(config, start_us, DEFAULT_SPEC_SHARDS)
    }

    /// Creates an aggregator with an explicit builder shard count.
    pub fn with_shards(config: Cpi2Config, start_us: i64, shards: usize) -> Self {
        let refresh_period_us = config.spec_refresh_hours * 3_600 * 1_000_000;
        Aggregator {
            builder: ShardedSpecBuilder::new(config, shards),
            refresh_period_us,
            next_roll: start_us + refresh_period_us,
            samples_seen: 0,
            dedup_horizon_us: None,
            seen: BTreeMap::new(),
            seen_watermark: i64::MIN,
            duplicates_dropped: 0,
            metrics: AggregatorMetrics::default(),
        }
    }

    /// Enables (or disables) idempotent ingest: a `(task, timestamp)` pair
    /// re-ingested within `horizon_us` of the newest sample is dropped and
    /// counted instead of double-counted. Off by default — callers whose
    /// transport can duplicate shipments (retries, fault injection) opt
    /// in. Duplicates older than the horizon are indistinguishable from
    /// fresh samples; size the horizon to cover the transport's maximum
    /// redelivery delay.
    pub fn set_dedup_horizon(&mut self, horizon_us: Option<i64>) {
        self.dedup_horizon_us = horizon_us;
        if horizon_us.is_none() {
            self.seen.clear();
            self.seen_watermark = i64::MIN;
        }
    }

    /// Attaches telemetry to the aggregator and its sharded builder:
    /// ingest batch sizes, whole-refresh and per-shard spec-build
    /// durations, and published-spec counts.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = AggregatorMetrics::new(telemetry);
        self.builder.set_telemetry(telemetry);
    }

    /// Feeds a batch of samples (one lock acquisition per touched shard).
    /// With a dedup horizon set, already-seen `(task, timestamp)` pairs
    /// are skipped.
    pub fn ingest(&mut self, samples: &[CpiSample]) {
        if self.dedup_horizon_us.is_none() {
            self.ingest_unchecked(samples);
            return;
        }
        // Copy-on-first-duplicate: the clean path ingests the caller's
        // slice directly with no allocation.
        let mut kept: Option<Vec<CpiSample>> = None;
        let mut dups = 0u64;
        for (i, s) in samples.iter().enumerate() {
            let fresh = self.seen.entry(s.timestamp).or_default().insert(s.task.0);
            if fresh {
                if let Some(k) = kept.as_mut() {
                    k.push(s.clone());
                }
            } else {
                dups += 1;
                if kept.is_none() {
                    kept = Some(samples[..i].to_vec());
                }
            }
            self.seen_watermark = self.seen_watermark.max(s.timestamp);
        }
        if dups > 0 {
            self.duplicates_dropped += dups;
            self.metrics.duplicates_total.add(dups);
        }
        if let Some(horizon) = self.dedup_horizon_us {
            let cutoff = self.seen_watermark.saturating_sub(horizon);
            if self
                .seen
                .first_key_value()
                .is_some_and(|(&t, _)| t < cutoff)
            {
                self.seen = self.seen.split_off(&cutoff);
            }
        }
        match kept {
            Some(k) => self.ingest_unchecked(&k),
            None => self.ingest_unchecked(samples),
        }
    }

    fn ingest_unchecked(&mut self, samples: &[CpiSample]) {
        self.builder.ingest_batch(samples);
        self.samples_seen += samples.len() as u64;
        self.metrics.batch_size.record(samples.len() as f64);
        self.metrics.samples_total.add(samples.len() as u64);
    }

    /// Duplicated samples skipped by idempotent ingest.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// The sharded builder, for ingesting from multiple threads at once.
    pub fn builder(&self) -> &ShardedSpecBuilder {
        &self.builder
    }

    /// Rolls the period if `now_us` passed the refresh boundary; publishes
    /// refreshed specs to `store` (stamped with `now_us`) and returns them.
    pub fn maybe_refresh(&mut self, now_us: i64, store: &SpecStore) -> Option<Vec<CpiSpec>> {
        if now_us < self.next_roll {
            return None;
        }
        while self.next_roll <= now_us {
            self.next_roll += self.refresh_period_us;
        }
        Some(self.refresh_at(store, now_us))
    }

    /// Forces an immediate refresh with no publish timestamp (entries
    /// never age out at agents) — operator action / tests.
    pub fn refresh_now(&mut self, store: &SpecStore) -> Vec<CpiSpec> {
        self.refresh_at(store, i64::MAX)
    }

    /// Forces an immediate refresh, stamping the published specs with the
    /// simulated time `now_us` so agents can age their cached copies.
    pub fn refresh_at(&mut self, store: &SpecStore, now_us: i64) -> Vec<CpiSpec> {
        let timer = self.metrics.build_duration_us.timer();
        let specs = self.builder.roll_period();
        timer.stop();
        self.metrics.specs_published_total.add(specs.len() as u64);
        self.metrics.telemetry.event("spec_refresh", || {
            format!("published {} specs", specs.len())
        });
        store.publish_at(specs.clone(), now_us);
        specs
    }

    /// Total samples ingested.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Builder-shard rebuilds skipped across refreshes because the shard
    /// ingested nothing since its last roll (the incremental-refresh fast
    /// path; also exported as `cpi_spec_shards_skipped_total`).
    pub fn shards_skipped(&self) -> u64 {
        self.builder.shards_skipped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_core::{TaskClass, TaskHandle};

    fn sample(task: u64, ts: i64, cpi: f64) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: "websearch".into(),
            platforminfo: "westmere".into(),
            timestamp: ts,
            cpu_usage: 1.0,
            cpi,
            l3_mpki: 1.0,
            class: TaskClass::latency_sensitive(),
        }
    }

    fn mk_config() -> Cpi2Config {
        Cpi2Config {
            min_samples_per_task: 10,
            ..Cpi2Config::default()
        }
    }

    #[test]
    fn refreshes_on_cadence() {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(mk_config(), 0);
        let day_us = 24 * 3_600 * 1_000_000i64;
        // Feed enough samples for eligibility (5 tasks × 10 samples).
        for t in 0..6u64 {
            for i in 0..20 {
                agg.ingest(&[sample(t, i * 60_000_000, 1.8)]);
            }
        }
        // Before the boundary: nothing.
        assert!(agg.maybe_refresh(day_us - 1, &store).is_none());
        // At the boundary: specs publish.
        let specs = agg.maybe_refresh(day_us, &store).unwrap();
        assert_eq!(specs.len(), 1);
        assert!(store
            .get(&cpi2_core::JobKey::new("websearch", "westmere"))
            .is_some());
        // Immediately after: not again until the next boundary.
        assert!(agg.maybe_refresh(day_us + 1, &store).is_none());
        assert!(agg.maybe_refresh(2 * day_us, &store).is_some());
    }

    #[test]
    fn skipped_boundaries_coalesce() {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(mk_config(), 0);
        let day_us = 24 * 3_600 * 1_000_000i64;
        // Jump 10 days: exactly one refresh, and the next is day 11.
        assert!(agg.maybe_refresh(10 * day_us, &store).is_some());
        assert!(agg.maybe_refresh(10 * day_us + 1, &store).is_none());
        assert!(agg.maybe_refresh(11 * day_us, &store).is_some());
    }

    #[test]
    fn dedup_skips_replayed_batches() {
        let mut agg = Aggregator::new(mk_config(), 0);
        agg.set_dedup_horizon(Some(3_600_000_000));
        let batch: Vec<_> = (0..6u64).map(|t| sample(t, 1_000_000, 1.5)).collect();
        agg.ingest(&batch);
        assert_eq!(agg.samples_seen(), 6);
        // A duplicated shipment: same tasks, same timestamps.
        agg.ingest(&batch);
        assert_eq!(agg.samples_seen(), 6);
        assert_eq!(agg.duplicates_dropped(), 6);
        // Fresh timestamps still flow.
        let later: Vec<_> = (0..6u64).map(|t| sample(t, 2_000_000, 1.5)).collect();
        agg.ingest(&later);
        assert_eq!(agg.samples_seen(), 12);
    }

    #[test]
    fn dedup_evicts_beyond_horizon() {
        let mut agg = Aggregator::new(mk_config(), 0);
        agg.set_dedup_horizon(Some(10_000_000)); // 10 s
        agg.ingest(&[sample(1, 0, 1.5)]);
        // 30 s later the old key is evicted; replaying it is no longer
        // detectable (documented horizon semantics).
        agg.ingest(&[sample(1, 30_000_000, 1.5)]);
        agg.ingest(&[sample(1, 0, 1.5)]);
        assert_eq!(agg.duplicates_dropped(), 0);
        assert_eq!(agg.samples_seen(), 3);
    }

    #[test]
    fn dedup_off_by_default() {
        let mut agg = Aggregator::new(mk_config(), 0);
        let batch: Vec<_> = (0..3u64).map(|t| sample(t, 0, 1.5)).collect();
        agg.ingest(&batch);
        agg.ingest(&batch);
        assert_eq!(agg.samples_seen(), 6);
        assert_eq!(agg.duplicates_dropped(), 0);
    }

    #[test]
    fn refresh_at_stamps_store_entries() {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(mk_config(), 0);
        for t in 0..6u64 {
            for i in 0..20 {
                agg.ingest(&[sample(t, i, 1.5)]);
            }
        }
        agg.refresh_at(&store, 7_000_000);
        let aged = store.changed_since_with_age(0);
        assert_eq!(aged.len(), 1);
        assert_eq!(aged[0].1, 7_000_000);
    }

    #[test]
    fn idle_refresh_skips_all_shards_and_republishes_same_specs() {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(mk_config(), 0);
        for t in 0..6u64 {
            for i in 0..20 {
                agg.ingest(&[sample(t, i, 1.5)]);
            }
        }
        let first = agg.refresh_at(&store, 1_000_000);
        let shards = agg.builder().num_shards() as u64;
        let before = agg.shards_skipped();
        // No ingest between refreshes: every shard rebuild is skipped and
        // the published spec set is identical.
        let second = agg.refresh_at(&store, 2_000_000);
        assert_eq!(first, second);
        assert_eq!(agg.shards_skipped() - before, shards);
        // New samples make the next refresh rebuild the touched shard.
        for t in 0..6u64 {
            agg.ingest(&[sample(t, 100 + t as i64, 1.7)]);
        }
        let before = agg.shards_skipped();
        agg.refresh_at(&store, 3_000_000);
        assert_eq!(agg.shards_skipped() - before, shards - 1);
    }

    #[test]
    fn refresh_now_publishes() {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(mk_config(), 0);
        for t in 0..6u64 {
            for i in 0..20 {
                agg.ingest(&[sample(t, i, 1.5)]);
            }
        }
        let specs = agg.refresh_now(&store);
        assert_eq!(specs.len(), 1);
        assert!((specs[0].cpi_mean - 1.5).abs() < 1e-9);
        assert_eq!(agg.samples_seen(), 120);
    }
}
