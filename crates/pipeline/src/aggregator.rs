//! The spec aggregation service: SpecBuilder on a refresh cadence.
//!
//! §3.1: specs are recalculated "every 24 hours (we plan to increase the
//! frequency to hourly)". The service accumulates samples continuously and
//! rolls the builder at each refresh boundary, publishing the result to a
//! [`crate::specstore::SpecStore`].

use crate::specstore::SpecStore;
use cpi2_core::{Cpi2Config, CpiSample, CpiSpec, ShardedSpecBuilder, DEFAULT_SPEC_SHARDS};
use cpi2_telemetry::{Counter, Histo, Telemetry};

/// Spec aggregation with periodic refresh.
///
/// Sample ingest goes through a [`ShardedSpecBuilder`], so heavy batches
/// only contend per (job, platform) shard rather than on one builder-wide
/// lock; the merged output is identical to an unsharded builder's.
#[derive(Debug)]
pub struct Aggregator {
    builder: ShardedSpecBuilder,
    refresh_period_us: i64,
    next_roll: i64,
    samples_seen: u64,
    metrics: AggregatorMetrics,
}

/// Cached telemetry handles for the aggregation service.
#[derive(Debug, Default)]
struct AggregatorMetrics {
    telemetry: Telemetry,
    batch_size: Histo,
    samples_total: Counter,
    build_duration_us: Histo,
    specs_published_total: Counter,
}

impl AggregatorMetrics {
    fn new(telemetry: &Telemetry) -> AggregatorMetrics {
        AggregatorMetrics {
            telemetry: telemetry.clone(),
            batch_size: telemetry.histogram("cpi_aggregator_batch_size", &[]),
            samples_total: telemetry.counter("cpi_aggregator_samples_total", &[]),
            build_duration_us: telemetry.histogram("cpi_spec_build_duration_us", &[]),
            specs_published_total: telemetry.counter("cpi_specs_published_total", &[]),
        }
    }
}

impl Aggregator {
    /// Creates an aggregator with [`DEFAULT_SPEC_SHARDS`] builder shards;
    /// the first refresh happens one period after `start_us`.
    pub fn new(config: Cpi2Config, start_us: i64) -> Self {
        Aggregator::with_shards(config, start_us, DEFAULT_SPEC_SHARDS)
    }

    /// Creates an aggregator with an explicit builder shard count.
    pub fn with_shards(config: Cpi2Config, start_us: i64, shards: usize) -> Self {
        let refresh_period_us = config.spec_refresh_hours * 3_600 * 1_000_000;
        Aggregator {
            builder: ShardedSpecBuilder::new(config, shards),
            refresh_period_us,
            next_roll: start_us + refresh_period_us,
            samples_seen: 0,
            metrics: AggregatorMetrics::default(),
        }
    }

    /// Attaches telemetry to the aggregator and its sharded builder:
    /// ingest batch sizes, whole-refresh and per-shard spec-build
    /// durations, and published-spec counts.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = AggregatorMetrics::new(telemetry);
        self.builder.set_telemetry(telemetry);
    }

    /// Feeds a batch of samples (one lock acquisition per touched shard).
    pub fn ingest(&mut self, samples: &[CpiSample]) {
        self.builder.ingest_batch(samples);
        self.samples_seen += samples.len() as u64;
        self.metrics.batch_size.record(samples.len() as f64);
        self.metrics.samples_total.add(samples.len() as u64);
    }

    /// The sharded builder, for ingesting from multiple threads at once.
    pub fn builder(&self) -> &ShardedSpecBuilder {
        &self.builder
    }

    /// Rolls the period if `now_us` passed the refresh boundary; publishes
    /// refreshed specs to `store` and returns them.
    pub fn maybe_refresh(&mut self, now_us: i64, store: &SpecStore) -> Option<Vec<CpiSpec>> {
        if now_us < self.next_roll {
            return None;
        }
        while self.next_roll <= now_us {
            self.next_roll += self.refresh_period_us;
        }
        Some(self.refresh_now(store))
    }

    /// Forces an immediate refresh (operator action / tests).
    pub fn refresh_now(&mut self, store: &SpecStore) -> Vec<CpiSpec> {
        let timer = self.metrics.build_duration_us.timer();
        let specs = self.builder.roll_period();
        timer.stop();
        self.metrics.specs_published_total.add(specs.len() as u64);
        self.metrics.telemetry.event("spec_refresh", || {
            format!("published {} specs", specs.len())
        });
        store.publish(specs.clone());
        specs
    }

    /// Total samples ingested.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_core::{TaskClass, TaskHandle};

    fn sample(task: u64, ts: i64, cpi: f64) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: "websearch".into(),
            platforminfo: "westmere".into(),
            timestamp: ts,
            cpu_usage: 1.0,
            cpi,
            l3_mpki: 1.0,
            class: TaskClass::latency_sensitive(),
        }
    }

    fn mk_config() -> Cpi2Config {
        Cpi2Config {
            min_samples_per_task: 10,
            ..Cpi2Config::default()
        }
    }

    #[test]
    fn refreshes_on_cadence() {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(mk_config(), 0);
        let day_us = 24 * 3_600 * 1_000_000i64;
        // Feed enough samples for eligibility (5 tasks × 10 samples).
        for t in 0..6u64 {
            for i in 0..20 {
                agg.ingest(&[sample(t, i * 60_000_000, 1.8)]);
            }
        }
        // Before the boundary: nothing.
        assert!(agg.maybe_refresh(day_us - 1, &store).is_none());
        // At the boundary: specs publish.
        let specs = agg.maybe_refresh(day_us, &store).unwrap();
        assert_eq!(specs.len(), 1);
        assert!(store
            .get(&cpi2_core::JobKey::new("websearch", "westmere"))
            .is_some());
        // Immediately after: not again until the next boundary.
        assert!(agg.maybe_refresh(day_us + 1, &store).is_none());
        assert!(agg.maybe_refresh(2 * day_us, &store).is_some());
    }

    #[test]
    fn skipped_boundaries_coalesce() {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(mk_config(), 0);
        let day_us = 24 * 3_600 * 1_000_000i64;
        // Jump 10 days: exactly one refresh, and the next is day 11.
        assert!(agg.maybe_refresh(10 * day_us, &store).is_some());
        assert!(agg.maybe_refresh(10 * day_us + 1, &store).is_none());
        assert!(agg.maybe_refresh(11 * day_us, &store).is_some());
    }

    #[test]
    fn refresh_now_publishes() {
        let store = SpecStore::new();
        let mut agg = Aggregator::new(mk_config(), 0);
        for t in 0..6u64 {
            for i in 0..20 {
                agg.ingest(&[sample(t, i, 1.5)]);
            }
        }
        let specs = agg.refresh_now(&store);
        assert_eq!(specs.len(), 1);
        assert!((specs[0].cpi_mean - 1.5).abs() < 1e-9);
        assert_eq!(agg.samples_seen(), 120);
    }
}
