//! Cluster-wide sample collection (the left half of Fig. 6).
//!
//! Per-machine agents push CPI sample batches into a per-cluster
//! collector over a channel; the collector fans them into the aggregation
//! service and the forensics log. Channels are `crossbeam` MPMC so a
//! threaded deployment can run many agent threads against one collector.

use crate::aggregator::Aggregator;
use cpi2_core::{CpiSample, Incident};
use cpi2_telemetry::{Counter, Gauge, Telemetry};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A message from a machine agent to the cluster collector.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentMessage {
    /// A batch of CPI samples from one machine at one sampling instant.
    Samples(Vec<CpiSample>),
    /// Incidents the machine's agent reported.
    Incidents(Vec<Incident>),
}

/// Sending side handed to each machine agent.
#[derive(Debug, Clone)]
pub struct CollectorHandle {
    tx: Sender<AgentMessage>,
    dropped: Arc<AtomicU64>,
    metrics: CollectorMetrics,
}

/// Cached telemetry handles shared by the collector and its handles.
///
/// `dropped_total` mirrors the message-level [`Collector::dropped`]
/// counter into the registry so back-pressure loss is finally visible in
/// exports instead of only through an accessor nothing called.
#[derive(Debug, Clone, Default)]
struct CollectorMetrics {
    messages_total: Counter,
    samples_total: Counter,
    dropped_total: Counter,
    queue_depth: Gauge,
    drain_deferred_total: Counter,
}

impl CollectorMetrics {
    fn new(telemetry: &Telemetry) -> CollectorMetrics {
        CollectorMetrics {
            messages_total: telemetry.counter("cpi_collector_messages_total", &[]),
            samples_total: telemetry.counter("cpi_collector_samples_total", &[]),
            dropped_total: telemetry.counter("cpi_collector_dropped_total", &[]),
            queue_depth: telemetry.gauge("cpi_collector_queue_depth", &[]),
            drain_deferred_total: telemetry.counter("cpi_collector_drain_deferred_total", &[]),
        }
    }
}

impl CollectorHandle {
    /// Sends a batch, dropping it if the collector is saturated (the
    /// pipeline is lossy by design — §4.1 detection runs locally, so lost
    /// telemetry degrades aggregation only). Returns `false` if dropped.
    pub fn send(&self, msg: AgentMessage) -> bool {
        let samples = match &msg {
            AgentMessage::Samples(s) => s.len() as u64,
            AgentMessage::Incidents(_) => 0,
        };
        match self.tx.try_send(msg) {
            Ok(()) => {
                self.metrics.messages_total.inc();
                self.metrics.samples_total.add(samples);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.metrics.dropped_total.inc();
                false
            }
        }
    }

    /// Sends one batch of samples; a convenience over
    /// [`send`](Self::send) for the common per-tick agent push.
    pub fn send_samples(&self, samples: Vec<CpiSample>) -> bool {
        self.send(AgentMessage::Samples(samples))
    }

    /// Sends one batch of incidents.
    pub fn send_incidents(&self, incidents: Vec<Incident>) -> bool {
        self.send(AgentMessage::Incidents(incidents))
    }

    /// Attempts to send a sample batch **without** giving up on failure:
    /// on back-pressure the batch comes back to the caller (nothing is
    /// counted as dropped) so a [`RetryQueue`] can try again later.
    pub fn offer_samples(&self, samples: Vec<CpiSample>) -> Result<(), Vec<CpiSample>> {
        let count = samples.len() as u64;
        match self.tx.try_send(AgentMessage::Samples(samples)) {
            Ok(()) => {
                self.metrics.messages_total.inc();
                self.metrics.samples_total.add(count);
                Ok(())
            }
            Err(TrySendError::Full(AgentMessage::Samples(s)))
            | Err(TrySendError::Disconnected(AgentMessage::Samples(s))) => Err(s),
            // try_send returns the message we passed in, which is always
            // AgentMessage::Samples here.
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => Ok(()),
        }
    }
}

/// Bounded-retry parameters for [`RetryQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts per batch (first try included) before the
    /// batch is abandoned. The pipeline stays lossy by design — §4.1
    /// detection runs locally — retries just shrink the loss window.
    pub max_attempts: u32,
    /// Backoff before attempt `n + 1`, doubling each retry:
    /// `base_backoff_us << (n - 1)` µs after the `n`-th failure.
    pub base_backoff_us: i64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 2_000_000,
        }
    }
}

/// One sample batch awaiting re-send.
#[derive(Debug)]
struct PendingBatch {
    samples: Vec<CpiSample>,
    attempts: u32,
    next_attempt_us: i64,
}

/// Agent-side bounded retry-with-backoff for sample shipments.
///
/// Wraps [`CollectorHandle::offer_samples`]: a batch the collector can't
/// take right now is parked and re-offered on later [`RetryQueue::flush`]
/// calls with exponential backoff, until [`RetryPolicy::max_attempts`] is
/// exhausted — then it is abandoned and counted, never silently lost.
/// Purely deterministic: ordering is FIFO and timing comes from the
/// caller's clock.
#[derive(Debug, Default)]
pub struct RetryQueue {
    policy: RetryPolicy,
    pending: VecDeque<PendingBatch>,
    abandoned_batches: u64,
    retries_total: Counter,
    abandoned_total: Counter,
}

impl RetryQueue {
    /// Creates a queue with the given policy (telemetry disabled).
    pub fn new(policy: RetryPolicy) -> Self {
        RetryQueue {
            policy,
            ..RetryQueue::default()
        }
    }

    /// Attaches telemetry: retry attempts and abandoned batches.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.retries_total = telemetry.counter("cpi_collector_retries_total", &[]);
        self.abandoned_total = telemetry.counter("cpi_collector_retry_abandoned_total", &[]);
    }

    /// Sends `samples` through `handle`, parking the batch for retry if
    /// the collector is saturated. Returns `true` when delivered
    /// immediately.
    pub fn send_or_queue(
        &mut self,
        handle: &CollectorHandle,
        samples: Vec<CpiSample>,
        now_us: i64,
    ) -> bool {
        match handle.offer_samples(samples) {
            Ok(()) => true,
            Err(samples) => {
                self.park(samples, 1, now_us);
                false
            }
        }
    }

    /// Re-offers every parked batch whose backoff has elapsed. Returns how
    /// many batches were delivered this call.
    pub fn flush(&mut self, handle: &CollectorHandle, now_us: i64) -> usize {
        let mut delivered = 0;
        for _ in 0..self.pending.len() {
            let Some(batch) = self.pending.pop_front() else {
                break;
            };
            if batch.next_attempt_us > now_us {
                self.pending.push_back(batch);
                continue;
            }
            self.retries_total.inc();
            match handle.offer_samples(batch.samples) {
                Ok(()) => delivered += 1,
                Err(samples) => self.park(samples, batch.attempts + 1, now_us),
            }
        }
        delivered
    }

    fn park(&mut self, samples: Vec<CpiSample>, attempts: u32, now_us: i64) {
        if attempts >= self.policy.max_attempts {
            self.abandoned_batches += 1;
            self.abandoned_total.inc();
            return;
        }
        let backoff = self.policy.base_backoff_us << (attempts - 1).min(32);
        self.pending.push_back(PendingBatch {
            samples,
            attempts,
            next_attempt_us: now_us.saturating_add(backoff),
        });
    }

    /// Batches currently parked for retry.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Batches abandoned after exhausting every attempt.
    pub fn abandoned_batches(&self) -> u64 {
        self.abandoned_batches
    }
}

/// The per-cluster collector: drains agent messages into sample/incident
/// sinks.
#[derive(Debug)]
pub struct Collector {
    tx: Sender<AgentMessage>,
    rx: Receiver<AgentMessage>,
    samples: Vec<CpiSample>,
    incidents: Vec<Incident>,
    dropped: Arc<AtomicU64>,
    drain_budget: Option<usize>,
    deferred: u64,
    metrics: CollectorMetrics,
}

impl Collector {
    /// Creates a collector with the given channel capacity (telemetry
    /// disabled; see [`Collector::with_telemetry`]).
    pub fn new(capacity: usize) -> Self {
        Collector::with_telemetry(capacity, &Telemetry::disabled())
    }

    /// Creates a collector whose handles report ingest/drop counters to
    /// `telemetry`.
    pub fn with_telemetry(capacity: usize, telemetry: &Telemetry) -> Self {
        let (tx, rx) = bounded(capacity);
        Collector {
            tx,
            rx,
            samples: Vec::new(),
            incidents: Vec::new(),
            dropped: Arc::new(AtomicU64::new(0)),
            drain_budget: None,
            deferred: 0,
            metrics: CollectorMetrics::new(telemetry),
        }
    }

    /// Caps how many queued messages a single [`drain`](Self::drain) or
    /// [`drain_into`](Self::drain_into) call may process. `None` (the
    /// default) drains everything — the behaviour every existing caller
    /// and golden trace assumes. A resident deployment (the serve
    /// harness) sets a budget so one flooded tick cannot stall the loop;
    /// messages left queued are counted as *deferred*, not lost — the
    /// next drain picks them up.
    pub fn set_drain_budget(&mut self, budget: Option<usize>) {
        self.drain_budget = budget;
    }

    /// Messages currently queued and awaiting a drain.
    pub fn queue_depth(&self) -> usize {
        self.rx.len()
    }

    /// Messages that hit a drain-budget ceiling and were left queued for
    /// a later drain (cumulative; each deferral of the same message
    /// counts once per drain call that skipped it).
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Refreshes the queue-depth gauge and, when `deferred > 0`, the
    /// deferred counter. Called at the end of every drain.
    fn note_drain_end(&mut self, deferred: u64) {
        if deferred > 0 {
            self.deferred += deferred;
            self.metrics.drain_deferred_total.add(deferred);
        }
        self.metrics.queue_depth.set(self.rx.len() as f64);
    }

    /// A handle for an agent to send through.
    pub fn handle(&self) -> CollectorHandle {
        CollectorHandle {
            tx: self.tx.clone(),
            dropped: Arc::clone(&self.dropped),
            metrics: self.metrics.clone(),
        }
    }

    /// Drains queued messages into the internal buffers, up to the drain
    /// budget (all of them when unbudgeted). Returns how many messages
    /// were processed.
    pub fn drain(&mut self) -> usize {
        let budget = self.drain_budget.unwrap_or(usize::MAX);
        let mut n = 0;
        while n < budget {
            let Ok(msg) = self.rx.try_recv() else {
                break;
            };
            match msg {
                AgentMessage::Samples(s) => self.samples.extend(s),
                AgentMessage::Incidents(i) => self.incidents.extend(i),
            }
            n += 1;
        }
        self.note_drain_end(self.rx.len() as u64);
        n
    }

    /// Drains queued sample batches straight into `agg`, bypassing the
    /// internal sample buffer; incidents still land in the incident
    /// buffer. Each queued batch reaches the aggregator as one
    /// [`Aggregator::ingest`] call, so the sharded builder locks each
    /// shard at most once per batch. Returns the number of samples
    /// ingested.
    /// Like [`drain`](Self::drain), respects the drain budget: at most
    /// `budget` queued *messages* are processed per call.
    pub fn drain_into(&mut self, agg: &mut Aggregator) -> usize {
        let budget = self.drain_budget.unwrap_or(usize::MAX);
        let mut msgs = 0;
        let mut n = 0;
        while msgs < budget {
            let Ok(msg) = self.rx.try_recv() else {
                break;
            };
            match msg {
                AgentMessage::Samples(s) => {
                    n += s.len();
                    agg.ingest(&s);
                }
                AgentMessage::Incidents(i) => self.incidents.extend(i),
            }
            msgs += 1;
        }
        self.note_drain_end(self.rx.len() as u64);
        n
    }

    /// Takes all collected samples.
    pub fn take_samples(&mut self) -> Vec<CpiSample> {
        std::mem::take(&mut self.samples)
    }

    /// Takes all collected incidents.
    pub fn take_incidents(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.incidents)
    }

    /// Messages dropped due to back-pressure, across all handles (for
    /// monitoring).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_core::{TaskClass, TaskHandle};

    fn sample(task: u64) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: "j".into(),
            platforminfo: "p".into(),
            timestamp: 0,
            cpu_usage: 1.0,
            cpi: 1.5,
            l3_mpki: 1.0,
            class: TaskClass::batch(),
        }
    }

    #[test]
    fn samples_flow_through() {
        let mut c = Collector::new(16);
        let h = c.handle();
        assert!(h.send(AgentMessage::Samples(vec![sample(1), sample(2)])));
        assert!(h.send(AgentMessage::Samples(vec![sample(3)])));
        assert_eq!(c.drain(), 2);
        let s = c.take_samples();
        assert_eq!(s.len(), 3);
        assert!(c.take_samples().is_empty());
    }

    #[test]
    fn backpressure_drops() {
        let c = Collector::new(1);
        let h = c.handle();
        assert!(h.send(AgentMessage::Samples(vec![sample(1)])));
        assert!(!h.send(AgentMessage::Samples(vec![sample(2)])));
        assert!(!h.send_samples(vec![sample(3)]));
        assert_eq!(c.dropped(), 2);
    }

    #[test]
    fn drain_into_feeds_aggregator() {
        use cpi2_core::Cpi2Config;

        let mut c = Collector::new(64);
        let h = c.handle();
        for t in 0..6u64 {
            let batch: Vec<_> = (0..20).map(|_| sample(t * 100)).collect();
            assert!(h.send_samples(batch));
        }
        h.send_incidents(Vec::new());
        let config = Cpi2Config {
            min_samples_per_task: 10,
            ..Cpi2Config::default()
        };
        let mut agg = Aggregator::new(config, 0);
        let n = c.drain_into(&mut agg);
        assert_eq!(n, 120);
        assert_eq!(agg.samples_seen(), 120);
        // Samples went straight to the aggregator, not the local buffer.
        assert!(c.take_samples().is_empty());
        let store = crate::specstore::SpecStore::new();
        let specs = agg.refresh_now(&store);
        assert_eq!(specs.len(), 1);
        assert!((specs[0].cpi_mean - 1.5).abs() < 1e-9);
    }

    #[test]
    fn offer_returns_batch_on_backpressure() {
        let c = Collector::new(1);
        let h = c.handle();
        assert!(h.offer_samples(vec![sample(1)]).is_ok());
        let back = h.offer_samples(vec![sample(2), sample(3)]).unwrap_err();
        assert_eq!(back.len(), 2);
        // Nothing counted as dropped: the caller still owns the batch.
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn retry_queue_delivers_after_backoff() {
        let mut c = Collector::new(1);
        let h = c.handle();
        let mut q = RetryQueue::new(RetryPolicy {
            max_attempts: 5,
            base_backoff_us: 1_000,
        });
        assert!(q.send_or_queue(&h, vec![sample(1)], 0));
        assert!(!q.send_or_queue(&h, vec![sample(2)], 0));
        assert_eq!(q.pending(), 1);
        // Backoff not elapsed: the parked batch is not retried yet.
        c.drain();
        assert_eq!(q.flush(&h, 500), 0);
        assert_eq!(q.pending(), 1);
        // Once due (and with channel space) the retry delivers.
        assert_eq!(q.flush(&h, 1_000), 1);
        assert_eq!(q.pending(), 0);
        c.drain();
        assert_eq!(c.take_samples().len(), 2);
        assert_eq!(q.abandoned_batches(), 0);
    }

    #[test]
    fn retry_queue_abandons_after_max_attempts() {
        let tel = Telemetry::enabled();
        let c = Collector::new(1);
        let h = c.handle();
        let mut q = RetryQueue::new(RetryPolicy {
            max_attempts: 2,
            base_backoff_us: 10,
        });
        q.set_telemetry(&tel);
        assert!(q.send_or_queue(&h, vec![sample(1)], 0)); // fills the channel
        assert!(!q.send_or_queue(&h, vec![sample(2)], 0)); // attempt 1 parked
        assert_eq!(q.flush(&h, 100), 0); // attempt 2 fails → abandoned
        assert_eq!(q.pending(), 0);
        assert_eq!(q.abandoned_batches(), 1);
        let text = tel.prometheus_text().unwrap();
        assert!(text.contains("cpi_collector_retries_total 1"), "{text}");
        assert!(
            text.contains("cpi_collector_retry_abandoned_total 1"),
            "{text}"
        );
    }

    #[test]
    fn telemetry_counts_ingest_and_drops() {
        let tel = Telemetry::enabled();
        let c = Collector::with_telemetry(1, &tel);
        let h = c.handle();
        assert!(h.send_samples(vec![sample(1), sample(2)]));
        assert!(!h.send_samples(vec![sample(3)]));
        assert!(!h.send_incidents(Vec::new()));
        let text = tel.prometheus_text().unwrap();
        assert!(text.contains("cpi_collector_messages_total 1"), "{text}");
        assert!(text.contains("cpi_collector_samples_total 2"), "{text}");
        assert!(text.contains("cpi_collector_dropped_total 2"), "{text}");
        // The registry mirrors the message-level accessor.
        assert_eq!(c.dropped(), 2);
    }

    #[test]
    fn drain_budget_defers_excess_messages() {
        let tel = Telemetry::enabled();
        let mut c = Collector::with_telemetry(64, &tel);
        let h = c.handle();
        for t in 0..10u64 {
            assert!(h.send_samples(vec![sample(t)]));
        }
        assert_eq!(c.queue_depth(), 10);
        c.set_drain_budget(Some(4));
        assert_eq!(c.drain(), 4);
        assert_eq!(c.queue_depth(), 6);
        assert_eq!(c.deferred(), 6);
        let text = tel.prometheus_text().unwrap();
        assert!(text.contains("cpi_collector_queue_depth 6"), "{text}");
        assert!(
            text.contains("cpi_collector_drain_deferred_total 6"),
            "{text}"
        );
        // Deferred messages are not lost: later drains pick them up.
        assert_eq!(c.drain(), 4);
        assert_eq!(c.drain(), 2);
        assert_eq!(c.take_samples().len(), 10);
        assert_eq!(c.queue_depth(), 0);
        let text = tel.prometheus_text().unwrap();
        assert!(text.contains("cpi_collector_queue_depth 0"), "{text}");
    }

    #[test]
    fn drain_into_respects_budget() {
        use cpi2_core::Cpi2Config;

        let mut c = Collector::new(64);
        let h = c.handle();
        for t in 0..8u64 {
            assert!(h.send_samples(vec![sample(t), sample(t + 100)]));
        }
        c.set_drain_budget(Some(3));
        let mut agg = Aggregator::new(Cpi2Config::default(), 0);
        // 3 messages x 2 samples per call.
        assert_eq!(c.drain_into(&mut agg), 6);
        assert_eq!(c.drain_into(&mut agg), 6);
        assert_eq!(c.drain_into(&mut agg), 4);
        assert_eq!(agg.samples_seen(), 16);
        // Unbudgeted (default) drains everything in one call.
        c.set_drain_budget(None);
        for t in 0..8u64 {
            assert!(h.send_samples(vec![sample(t)]));
        }
        assert_eq!(c.drain_into(&mut agg), 8);
    }

    #[test]
    fn threaded_agents() {
        let mut c = Collector::new(1024);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = c.handle();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        h.send(AgentMessage::Samples(vec![sample(t * 100 + i)]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        c.drain();
        assert_eq!(c.take_samples().len(), 200);
    }
}
