//! Cluster-wide sample collection (the left half of Fig. 6).
//!
//! Per-machine agents push CPI sample batches into a per-cluster
//! collector over a channel; the collector fans them into the aggregation
//! service and the forensics log. Channels are `crossbeam` MPMC so a
//! threaded deployment can run many agent threads against one collector.

use cpi2_core::{CpiSample, Incident};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

/// A message from a machine agent to the cluster collector.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentMessage {
    /// A batch of CPI samples from one machine at one sampling instant.
    Samples(Vec<CpiSample>),
    /// Incidents the machine's agent reported.
    Incidents(Vec<Incident>),
}

/// Sending side handed to each machine agent.
#[derive(Debug, Clone)]
pub struct CollectorHandle {
    tx: Sender<AgentMessage>,
}

impl CollectorHandle {
    /// Sends a batch, dropping it if the collector is saturated (the
    /// pipeline is lossy by design — §4.1 detection runs locally, so lost
    /// telemetry degrades aggregation only). Returns `false` if dropped.
    pub fn send(&self, msg: AgentMessage) -> bool {
        match self.tx.try_send(msg) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        }
    }
}

/// The per-cluster collector: drains agent messages into sample/incident
/// sinks.
#[derive(Debug)]
pub struct Collector {
    tx: Sender<AgentMessage>,
    rx: Receiver<AgentMessage>,
    samples: Vec<CpiSample>,
    incidents: Vec<Incident>,
    dropped: u64,
}

impl Collector {
    /// Creates a collector with the given channel capacity.
    pub fn new(capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity);
        Collector {
            tx,
            rx,
            samples: Vec::new(),
            incidents: Vec::new(),
            dropped: 0,
        }
    }

    /// A handle for an agent to send through.
    pub fn handle(&self) -> CollectorHandle {
        CollectorHandle {
            tx: self.tx.clone(),
        }
    }

    /// Drains everything currently queued into the internal buffers.
    /// Returns how many messages were processed.
    pub fn drain(&mut self) -> usize {
        let mut n = 0;
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                AgentMessage::Samples(s) => self.samples.extend(s),
                AgentMessage::Incidents(i) => self.incidents.extend(i),
            }
            n += 1;
        }
        n
    }

    /// Takes all collected samples.
    pub fn take_samples(&mut self) -> Vec<CpiSample> {
        std::mem::take(&mut self.samples)
    }

    /// Takes all collected incidents.
    pub fn take_incidents(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.incidents)
    }

    /// Messages dropped due to back-pressure (for monitoring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_core::{TaskClass, TaskHandle};

    fn sample(task: u64) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: "j".into(),
            platforminfo: "p".into(),
            timestamp: 0,
            cpu_usage: 1.0,
            cpi: 1.5,
            l3_mpki: 1.0,
            class: TaskClass::batch(),
        }
    }

    #[test]
    fn samples_flow_through() {
        let mut c = Collector::new(16);
        let h = c.handle();
        assert!(h.send(AgentMessage::Samples(vec![sample(1), sample(2)])));
        assert!(h.send(AgentMessage::Samples(vec![sample(3)])));
        assert_eq!(c.drain(), 2);
        let s = c.take_samples();
        assert_eq!(s.len(), 3);
        assert!(c.take_samples().is_empty());
    }

    #[test]
    fn backpressure_drops() {
        let c = Collector::new(1);
        let h = c.handle();
        assert!(h.send(AgentMessage::Samples(vec![sample(1)])));
        assert!(!h.send(AgentMessage::Samples(vec![sample(2)])));
    }

    #[test]
    fn threaded_agents() {
        let mut c = Collector::new(1024);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = c.handle();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        h.send(AgentMessage::Samples(vec![sample(t * 100 + i)]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        c.drain();
        assert_eq!(c.take_samples().len(), 200);
    }
}
