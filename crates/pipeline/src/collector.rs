//! Cluster-wide sample collection (the left half of Fig. 6).
//!
//! Per-machine agents push CPI sample batches into a per-cluster
//! collector over a channel; the collector fans them into the aggregation
//! service and the forensics log. Channels are `crossbeam` MPMC so a
//! threaded deployment can run many agent threads against one collector.

use crate::aggregator::Aggregator;
use cpi2_core::{CpiSample, Incident};
use cpi2_telemetry::{Counter, Telemetry};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A message from a machine agent to the cluster collector.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentMessage {
    /// A batch of CPI samples from one machine at one sampling instant.
    Samples(Vec<CpiSample>),
    /// Incidents the machine's agent reported.
    Incidents(Vec<Incident>),
}

/// Sending side handed to each machine agent.
#[derive(Debug, Clone)]
pub struct CollectorHandle {
    tx: Sender<AgentMessage>,
    dropped: Arc<AtomicU64>,
    metrics: CollectorMetrics,
}

/// Cached telemetry handles shared by the collector and its handles.
///
/// `dropped_total` mirrors the message-level [`Collector::dropped`]
/// counter into the registry so back-pressure loss is finally visible in
/// exports instead of only through an accessor nothing called.
#[derive(Debug, Clone, Default)]
struct CollectorMetrics {
    messages_total: Counter,
    samples_total: Counter,
    dropped_total: Counter,
}

impl CollectorMetrics {
    fn new(telemetry: &Telemetry) -> CollectorMetrics {
        CollectorMetrics {
            messages_total: telemetry.counter("cpi_collector_messages_total", &[]),
            samples_total: telemetry.counter("cpi_collector_samples_total", &[]),
            dropped_total: telemetry.counter("cpi_collector_dropped_total", &[]),
        }
    }
}

impl CollectorHandle {
    /// Sends a batch, dropping it if the collector is saturated (the
    /// pipeline is lossy by design — §4.1 detection runs locally, so lost
    /// telemetry degrades aggregation only). Returns `false` if dropped.
    pub fn send(&self, msg: AgentMessage) -> bool {
        let samples = match &msg {
            AgentMessage::Samples(s) => s.len() as u64,
            AgentMessage::Incidents(_) => 0,
        };
        match self.tx.try_send(msg) {
            Ok(()) => {
                self.metrics.messages_total.inc();
                self.metrics.samples_total.add(samples);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.metrics.dropped_total.inc();
                false
            }
        }
    }

    /// Sends one batch of samples; a convenience over
    /// [`send`](Self::send) for the common per-tick agent push.
    pub fn send_samples(&self, samples: Vec<CpiSample>) -> bool {
        self.send(AgentMessage::Samples(samples))
    }

    /// Sends one batch of incidents.
    pub fn send_incidents(&self, incidents: Vec<Incident>) -> bool {
        self.send(AgentMessage::Incidents(incidents))
    }
}

/// The per-cluster collector: drains agent messages into sample/incident
/// sinks.
#[derive(Debug)]
pub struct Collector {
    tx: Sender<AgentMessage>,
    rx: Receiver<AgentMessage>,
    samples: Vec<CpiSample>,
    incidents: Vec<Incident>,
    dropped: Arc<AtomicU64>,
    metrics: CollectorMetrics,
}

impl Collector {
    /// Creates a collector with the given channel capacity (telemetry
    /// disabled; see [`Collector::with_telemetry`]).
    pub fn new(capacity: usize) -> Self {
        Collector::with_telemetry(capacity, &Telemetry::disabled())
    }

    /// Creates a collector whose handles report ingest/drop counters to
    /// `telemetry`.
    pub fn with_telemetry(capacity: usize, telemetry: &Telemetry) -> Self {
        let (tx, rx) = bounded(capacity);
        Collector {
            tx,
            rx,
            samples: Vec::new(),
            incidents: Vec::new(),
            dropped: Arc::new(AtomicU64::new(0)),
            metrics: CollectorMetrics::new(telemetry),
        }
    }

    /// A handle for an agent to send through.
    pub fn handle(&self) -> CollectorHandle {
        CollectorHandle {
            tx: self.tx.clone(),
            dropped: Arc::clone(&self.dropped),
            metrics: self.metrics.clone(),
        }
    }

    /// Drains everything currently queued into the internal buffers.
    /// Returns how many messages were processed.
    pub fn drain(&mut self) -> usize {
        let mut n = 0;
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                AgentMessage::Samples(s) => self.samples.extend(s),
                AgentMessage::Incidents(i) => self.incidents.extend(i),
            }
            n += 1;
        }
        n
    }

    /// Drains queued sample batches straight into `agg`, bypassing the
    /// internal sample buffer; incidents still land in the incident
    /// buffer. Each queued batch reaches the aggregator as one
    /// [`Aggregator::ingest`] call, so the sharded builder locks each
    /// shard at most once per batch. Returns the number of samples
    /// ingested.
    pub fn drain_into(&mut self, agg: &mut Aggregator) -> usize {
        let mut n = 0;
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                AgentMessage::Samples(s) => {
                    n += s.len();
                    agg.ingest(&s);
                }
                AgentMessage::Incidents(i) => self.incidents.extend(i),
            }
        }
        n
    }

    /// Takes all collected samples.
    pub fn take_samples(&mut self) -> Vec<CpiSample> {
        std::mem::take(&mut self.samples)
    }

    /// Takes all collected incidents.
    pub fn take_incidents(&mut self) -> Vec<Incident> {
        std::mem::take(&mut self.incidents)
    }

    /// Messages dropped due to back-pressure, across all handles (for
    /// monitoring).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpi2_core::{TaskClass, TaskHandle};

    fn sample(task: u64) -> CpiSample {
        CpiSample {
            task: TaskHandle(task),
            jobname: "j".into(),
            platforminfo: "p".into(),
            timestamp: 0,
            cpu_usage: 1.0,
            cpi: 1.5,
            l3_mpki: 1.0,
            class: TaskClass::batch(),
        }
    }

    #[test]
    fn samples_flow_through() {
        let mut c = Collector::new(16);
        let h = c.handle();
        assert!(h.send(AgentMessage::Samples(vec![sample(1), sample(2)])));
        assert!(h.send(AgentMessage::Samples(vec![sample(3)])));
        assert_eq!(c.drain(), 2);
        let s = c.take_samples();
        assert_eq!(s.len(), 3);
        assert!(c.take_samples().is_empty());
    }

    #[test]
    fn backpressure_drops() {
        let c = Collector::new(1);
        let h = c.handle();
        assert!(h.send(AgentMessage::Samples(vec![sample(1)])));
        assert!(!h.send(AgentMessage::Samples(vec![sample(2)])));
        assert!(!h.send_samples(vec![sample(3)]));
        assert_eq!(c.dropped(), 2);
    }

    #[test]
    fn drain_into_feeds_aggregator() {
        use cpi2_core::Cpi2Config;

        let mut c = Collector::new(64);
        let h = c.handle();
        for t in 0..6u64 {
            let batch: Vec<_> = (0..20).map(|_| sample(t * 100)).collect();
            assert!(h.send_samples(batch));
        }
        h.send_incidents(Vec::new());
        let config = Cpi2Config {
            min_samples_per_task: 10,
            ..Cpi2Config::default()
        };
        let mut agg = Aggregator::new(config, 0);
        let n = c.drain_into(&mut agg);
        assert_eq!(n, 120);
        assert_eq!(agg.samples_seen(), 120);
        // Samples went straight to the aggregator, not the local buffer.
        assert!(c.take_samples().is_empty());
        let store = crate::specstore::SpecStore::new();
        let specs = agg.refresh_now(&store);
        assert_eq!(specs.len(), 1);
        assert!((specs[0].cpi_mean - 1.5).abs() < 1e-9);
    }

    #[test]
    fn telemetry_counts_ingest_and_drops() {
        let tel = Telemetry::enabled();
        let c = Collector::with_telemetry(1, &tel);
        let h = c.handle();
        assert!(h.send_samples(vec![sample(1), sample(2)]));
        assert!(!h.send_samples(vec![sample(3)]));
        assert!(!h.send_incidents(Vec::new()));
        let text = tel.prometheus_text().unwrap();
        assert!(text.contains("cpi_collector_messages_total 1"), "{text}");
        assert!(text.contains("cpi_collector_samples_total 2"), "{text}");
        assert!(text.contains("cpi_collector_dropped_total 2"), "{text}");
        // The registry mirrors the message-level accessor.
        assert_eq!(c.dropped(), 2);
    }

    #[test]
    fn threaded_agents() {
        let mut c = Collector::new(1024);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = c.handle();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        h.send(AgentMessage::Samples(vec![sample(t * 100 + i)]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        c.drain();
        assert_eq!(c.take_samples().len(), 200);
    }
}
