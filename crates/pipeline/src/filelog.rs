//! Durable JSONL logs with size-based rotation.
//!
//! §5: incidents and CPI data are "logged and stored" for offline
//! forensics. [`FileLog`] appends records as JSON lines to numbered
//! segment files, rotating at a size threshold; [`FileLog::load`] reads a
//! whole log back for analysis (e.g. into a [`crate::query::Dataset`]).

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// An append-only, size-rotated JSONL log.
#[derive(Debug)]
pub struct FileLog {
    dir: PathBuf,
    base: String,
    max_segment_bytes: u64,
    segment: u32,
    written: u64,
    writer: Option<BufWriter<File>>,
}

impl FileLog {
    /// Opens (or resumes) a log named `base` in `dir`, rotating segments
    /// at `max_segment_bytes`. Resumption continues after the highest
    /// existing segment.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    ///
    /// # Panics
    ///
    /// Panics if `max_segment_bytes == 0`.
    pub fn open(
        dir: impl Into<PathBuf>,
        base: impl Into<String>,
        max_segment_bytes: u64,
    ) -> io::Result<FileLog> {
        assert!(max_segment_bytes > 0, "segment size must be positive");
        let dir = dir.into();
        let base = base.into();
        fs::create_dir_all(&dir)?;
        let segment = Self::segments_in(&dir, &base)?
            .last()
            .and_then(|p| Self::segment_number(p, &base))
            .map(|n| n + 1)
            .unwrap_or(0);
        Ok(FileLog {
            dir,
            base,
            max_segment_bytes,
            segment,
            written: 0,
            writer: None,
        })
    }

    fn segment_path(&self, n: u32) -> PathBuf {
        self.dir.join(format!("{}.{:05}.jsonl", self.base, n))
    }

    fn segment_number(path: &Path, base: &str) -> Option<u32> {
        let name = path.file_name()?.to_str()?;
        let rest = name.strip_prefix(base)?.strip_prefix('.')?;
        let digits = rest.strip_suffix(".jsonl")?;
        digits.parse().ok()
    }

    fn segments_in(dir: &Path, base: &str) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        if !dir.exists() {
            return Ok(out);
        }
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if Self::segment_number(&path, base).is_some() {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }

    /// All segment files of this log, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn segments(&self) -> io::Result<Vec<PathBuf>> {
        Self::segments_in(&self.dir, &self.base)
    }

    /// Appends one record as a JSON line, rotating if the current segment
    /// is full.
    ///
    /// # Errors
    ///
    /// Propagates serialization and filesystem errors.
    pub fn append<T: Serialize>(&mut self, record: &T) -> io::Result<()> {
        let mut line = serde_json::to_vec(record)?;
        line.push(b'\n');
        let fits =
            self.writer.is_some() && self.written + line.len() as u64 <= self.max_segment_bytes;
        if !fits {
            if let Some(mut w) = self.writer.take() {
                w.flush()?;
                self.segment += 1;
            }
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.segment_path(self.segment))?;
            self.written = file.metadata()?.len();
            self.writer = Some(BufWriter::new(file));
        }
        let Some(w) = self.writer.as_mut() else {
            // Rotation above always installs a writer; fail soft if not.
            return Err(io::Error::other("log writer unavailable"));
        };
        w.write_all(&line)?;
        self.written += line.len() as u64;
        Ok(())
    }

    /// Flushes buffered records to disk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }

    /// Reads every record of the log named `base` in `dir`, across all
    /// segments, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and deserialization errors.
    pub fn load<T: DeserializeOwned>(dir: impl AsRef<Path>, base: &str) -> io::Result<Vec<T>> {
        let mut out = Vec::new();
        for path in Self::segments_in(dir.as_ref(), base)? {
            let data = fs::read(&path)?;
            for line in data.split(|&b| b == b'\n') {
                if line.is_empty() {
                    continue;
                }
                let record = serde_json::from_slice(line).map_err(io::Error::other)?;
                out.push(record);
            }
        }
        Ok(out)
    }
}

impl Drop for FileLog {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Rec {
        id: u32,
        job: String,
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpi2_filelog_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(id: u32) -> Rec {
        Rec {
            id,
            job: format!("job{id}"),
        }
    }

    #[test]
    fn append_and_load_roundtrip() -> io::Result<()> {
        let dir = tmp("roundtrip");
        {
            let mut log = FileLog::open(&dir, "incidents", 1 << 20)?;
            for i in 0..100 {
                log.append(&rec(i))?;
            }
            log.flush()?;
        }
        let back: Vec<Rec> = FileLog::load(&dir, "incidents")?;
        assert_eq!(back.len(), 100);
        assert_eq!(back[42], rec(42));
        let _ = fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn rotation_splits_segments_and_preserves_order() -> io::Result<()> {
        let dir = tmp("rotate");
        let mut log = FileLog::open(&dir, "log", 256)?;
        for i in 0..100 {
            log.append(&rec(i))?;
        }
        log.flush()?;
        let segments = log.segments()?;
        assert!(segments.len() > 2, "expected rotation, got {segments:?}");
        let back: Vec<Rec> = FileLog::load(&dir, "log")?;
        assert_eq!(back.len(), 100);
        for (i, r) in back.iter().enumerate() {
            assert_eq!(r.id, i as u32, "order preserved across segments");
        }
        let _ = fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn reopen_continues_in_new_segment() -> io::Result<()> {
        let dir = tmp("reopen");
        {
            let mut log = FileLog::open(&dir, "log", 1 << 20)?;
            log.append(&rec(1))?;
        }
        {
            let mut log = FileLog::open(&dir, "log", 1 << 20)?;
            log.append(&rec(2))?;
        }
        let segments = FileLog::segments_in(&dir, "log")?;
        assert_eq!(segments.len(), 2);
        let back: Vec<Rec> = FileLog::load(&dir, "log")?;
        assert_eq!(back, vec![rec(1), rec(2)]);
        let _ = fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn distinct_logs_do_not_mix() -> io::Result<()> {
        let dir = tmp("mix");
        let mut a = FileLog::open(&dir, "alpha", 1 << 20)?;
        let mut b = FileLog::open(&dir, "beta", 1 << 20)?;
        a.append(&rec(1))?;
        b.append(&rec(2))?;
        a.flush()?;
        b.flush()?;
        let alpha: Vec<Rec> = FileLog::load(&dir, "alpha")?;
        let beta: Vec<Rec> = FileLog::load(&dir, "beta")?;
        assert_eq!(alpha, vec![rec(1)]);
        assert_eq!(beta, vec![rec(2)]);
        let _ = fs::remove_dir_all(&dir);
        Ok(())
    }

    #[test]
    fn load_missing_log_is_empty() -> io::Result<()> {
        let dir = tmp("missing");
        let back: Vec<Rec> = FileLog::load(&dir, "nope")?;
        assert!(back.is_empty());
        Ok(())
    }
}
