//! The CPI² data pipeline (Fig. 6) and forensics tooling.
//!
//! "CPI data is gathered for every task on a machine, then sent
//! off-machine to a service where data from related tasks is aggregated.
//! The per-job, per-platform aggregated CPI values are then sent back to
//! each machine that is running a task from that job."
//!
//! * [`collector`] — machine agents → cluster collector (crossbeam
//!   channels; lossy under back-pressure by design).
//! * [`aggregator`] — the spec aggregation service on its refresh cadence.
//! * [`specstore`] — versioned spec storage + delta distribution back to
//!   agents.
//! * [`log`] — append-only typed tables with a JSONL wire format.
//! * [`query`] — the Dremel-like SQL engine for performance forensics
//!   (§5's "most aggressive antagonists for a job" queries).

#![warn(missing_docs)]

pub mod aggregator;
pub mod collector;
pub mod filelog;
pub mod log;
pub mod query;
pub mod specstore;

pub use aggregator::Aggregator;
pub use collector::{AgentMessage, Collector, CollectorHandle, RetryPolicy, RetryQueue};
pub use filelog::FileLog;
pub use log::LogTable;
pub use query::{Dataset, QueryError, QueryResult, Table, Value};
pub use specstore::{SpecSnapshot, SpecStore};
