//! Append-only typed log tables with a JSONL wire encoding.
//!
//! §5: "To allow offline analysis, we log and store data about CPIs and
//! suspected antagonists." These tables back the forensics query engine
//! ([`crate::query`]) and serialize to newline-delimited JSON for
//! transport/storage.

use bytes::{BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// An append-only, in-memory log of typed records.
#[derive(Debug, Clone)]
pub struct LogTable<T> {
    name: String,
    rows: Vec<T>,
}

impl<T> LogTable<T> {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        LogTable {
            name: name.into(),
            rows: Vec::new(),
        }
    }

    /// Table name (used by queries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one record.
    pub fn append(&mut self, row: T) {
        self.rows.push(row);
    }

    /// Appends many records.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = T>) {
        self.rows.extend(rows);
    }

    /// All records, in insertion order.
    pub fn rows(&self) -> &[T] {
        &self.rows
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl<T: Serialize> LogTable<T> {
    /// Encodes the table as newline-delimited JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_jsonl(&self) -> Result<Bytes, serde_json::Error> {
        let mut buf = BytesMut::new();
        for row in &self.rows {
            let line = serde_json::to_vec(row)?;
            buf.put_slice(&line);
            buf.put_u8(b'\n');
        }
        Ok(buf.freeze())
    }
}

impl<T: DeserializeOwned> LogTable<T> {
    /// Decodes a table from newline-delimited JSON.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed line.
    pub fn from_jsonl(name: impl Into<String>, data: &[u8]) -> Result<Self, serde_json::Error> {
        let mut rows = Vec::new();
        for line in data.split(|&b| b == b'\n') {
            if line.is_empty() {
                continue;
            }
            rows.push(serde_json::from_slice(line)?);
        }
        Ok(LogTable {
            name: name.into(),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Rec {
        job: String,
        cpi: f64,
    }

    #[test]
    fn append_and_read() {
        let mut t = LogTable::new("samples");
        t.append(Rec {
            job: "a".into(),
            cpi: 1.0,
        });
        t.extend([Rec {
            job: "b".into(),
            cpi: 2.0,
        }]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1].job, "b");
        assert_eq!(t.name(), "samples");
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut t = LogTable::new("samples");
        for i in 0..10 {
            t.append(Rec {
                job: format!("job{i}"),
                cpi: i as f64 * 0.5,
            });
        }
        let bytes = t.to_jsonl().unwrap();
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 10);
        let back: LogTable<Rec> = LogTable::from_jsonl("samples", &bytes).unwrap();
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        let r: Result<LogTable<Rec>, _> = LogTable::from_jsonl("x", b"not json\n");
        assert!(r.is_err());
    }

    #[test]
    fn empty_table() {
        let t: LogTable<Rec> = LogTable::new("e");
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl().unwrap().len(), 0);
    }
}
