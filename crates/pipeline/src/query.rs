//! A Dremel-like SQL query engine for performance forensics.
//!
//! §5: "Job owners and administrators can issue SQL-like queries against
//! this data using Dremel to conduct performance forensics, e.g., to find
//! the most aggressive antagonists for a job in a particular time window."
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT <item> [, <item>]* FROM <table>
//!   [WHERE <expr>] [GROUP BY <col> [, <col>]*]
//!   [ORDER BY <key> [ASC|DESC] [, ...]] [LIMIT <n>]
//!
//! item  := * | col | COUNT(*) | COUNT(col) | SUM(col) | AVG(col)
//!        | MIN(col) | MAX(col)
//! expr  := cmp (AND|OR cmp)*        -- AND binds tighter than OR
//! cmp   := term (= | != | < | <= | > | >=) term
//!        | term BETWEEN term AND term
//!        | term LIKE 'pattern'       -- % matches any run of characters
//! term  := col | number | 'string' | TRUE | FALSE
//! ```

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// A scalar cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Numeric (all numbers are f64).
    Num(f64),
    /// String.
    Str(String),
}

impl Value {
    /// Numeric view, if the value is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Num(_) => 2,
            Value::Str(_) => 3,
        }
    }

    fn cmp_total(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:.4}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One record: column → value.
pub type Row = BTreeMap<String, Value>;

/// A named table of rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            rows: Vec::new(),
        }
    }

    /// Builds a table from serializable records, flattening nested objects
    /// with dotted column names (`action.cpu_rate`).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn from_records<T: Serialize>(
        name: impl Into<String>,
        records: &[T],
    ) -> Result<Self, serde_json::Error> {
        let mut rows = Vec::with_capacity(records.len());
        for r in records {
            let v = serde_json::to_value(r)?;
            let mut row = Row::new();
            flatten("", &v, &mut row);
            rows.push(row);
        }
        Ok(Table {
            name: name.into(),
            rows,
        })
    }
}

fn flatten(prefix: &str, v: &serde_json::Value, out: &mut Row) {
    match v {
        serde_json::Value::Object(map) => {
            for (k, v) in map {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&key, v, out);
            }
        }
        serde_json::Value::Array(items) => {
            out.insert(format!("{prefix}.len"), Value::Num(items.len() as f64));
            // Index the first few elements (suspect lists etc.).
            for (i, item) in items.iter().take(5).enumerate() {
                flatten(&format!("{prefix}.{i}"), item, out);
            }
        }
        serde_json::Value::Null => {
            out.insert(prefix.to_string(), Value::Null);
        }
        serde_json::Value::Bool(b) => {
            out.insert(prefix.to_string(), Value::Bool(*b));
        }
        serde_json::Value::Number(n) => {
            out.insert(prefix.to_string(), Value::Num(n.as_f64().unwrap_or(0.0)));
        }
        serde_json::Value::String(s) => {
            out.insert(prefix.to_string(), Value::Str(s.clone()));
        }
    }
}

/// Query-engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Lexical or syntactic problem, with a description.
    Parse(String),
    /// The FROM table does not exist.
    UnknownTable(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "parse error: {m}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table: {t}"),
        }
    }
}

impl std::error::Error for QueryError {}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    Star,
    Comma,
    LParen,
    RParen,
    Op(String),
}

fn lex(input: &str) -> Result<Vec<Tok>, QueryError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(QueryError::Parse("unterminated string".into()));
                }
                i += 1; // closing quote
                toks.push(Tok::Str(s));
            }
            '=' => {
                toks.push(Tok::Op("=".into()));
                i += 1;
            }
            '!' | '<' | '>' => {
                let mut op = c.to_string();
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    op.push('=');
                    i += 1;
                }
                if op == "!" {
                    return Err(QueryError::Parse("lone '!'".into()));
                }
                toks.push(Tok::Op(op));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || chars[i] == '+'
                        || (chars[i] == '-' && matches!(chars[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: f64 = text
                    .parse()
                    .map_err(|_| QueryError::Parse(format!("bad number '{text}'")))?;
                toks.push(Tok::Num(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(QueryError::Parse(format!("unexpected char '{other}'"))),
        }
    }
    Ok(toks)
}

// ----------------------------------------------------------------- ast ---

#[derive(Debug, Clone, PartialEq)]
enum Agg {
    CountStar,
    Count(String),
    Sum(String),
    Avg(String),
    Min(String),
    Max(String),
}

#[derive(Debug, Clone, PartialEq)]
enum SelectItem {
    AllColumns,
    Column(String),
    Aggregate(Agg),
}

#[derive(Debug, Clone, PartialEq)]
enum Term {
    Column(String),
    Lit(Value),
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Cmp(Term, String, Term),
    Between(Term, Term, Term),
    Like(Term, String),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

#[derive(Debug, Clone, PartialEq)]
struct Query {
    select: Vec<SelectItem>,
    from: String,
    filter: Option<Expr>,
    group_by: Vec<String>,
    order_by: Vec<(String, bool)>, // (key, descending)
    limit: Option<usize>,
}

// ---------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!("expected {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Tok::Ident(w)) => Ok(w),
            other => Err(QueryError::Parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, QueryError> {
        if matches!(self.peek(), Some(Tok::Star)) {
            self.pos += 1;
            return Ok(SelectItem::AllColumns);
        }
        let name = self.ident()?;
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let arg_star = matches!(self.peek(), Some(Tok::Star));
            let arg = if arg_star {
                self.pos += 1;
                String::new()
            } else {
                self.ident()?
            };
            match self.next() {
                Some(Tok::RParen) => {}
                _ => return Err(QueryError::Parse("expected ')'".into())),
            }
            let lower = name.to_ascii_lowercase();
            let agg = match (lower.as_str(), arg_star) {
                ("count", true) => Agg::CountStar,
                ("count", false) => Agg::Count(arg),
                ("sum", false) => Agg::Sum(arg),
                ("avg", false) => Agg::Avg(arg),
                ("min", false) => Agg::Min(arg),
                ("max", false) => Agg::Max(arg),
                _ => return Err(QueryError::Parse(format!("unknown aggregate {name}"))),
            };
            Ok(SelectItem::Aggregate(agg))
        } else {
            Ok(SelectItem::Column(name))
        }
    }

    fn term(&mut self) -> Result<Term, QueryError> {
        match self.next() {
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("true") => {
                Ok(Term::Lit(Value::Bool(true)))
            }
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("false") => {
                Ok(Term::Lit(Value::Bool(false)))
            }
            Some(Tok::Ident(w)) => Ok(Term::Column(w)),
            Some(Tok::Num(n)) => Ok(Term::Lit(Value::Num(n))),
            Some(Tok::Str(s)) => Ok(Term::Lit(Value::Str(s))),
            other => Err(QueryError::Parse(format!("expected term, got {other:?}"))),
        }
    }

    fn comparison(&mut self) -> Result<Expr, QueryError> {
        let lhs = self.term()?;
        if self.keyword("between") {
            let lo = self.term()?;
            self.expect_keyword("and")?;
            let hi = self.term()?;
            return Ok(Expr::Between(lhs, lo, hi));
        }
        if self.keyword("like") {
            match self.next() {
                Some(Tok::Str(p)) => return Ok(Expr::Like(lhs, p)),
                other => {
                    return Err(QueryError::Parse(format!(
                        "LIKE expects a string pattern, got {other:?}"
                    )))
                }
            }
        }
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            other => {
                return Err(QueryError::Parse(format!(
                    "expected operator, got {other:?}"
                )))
            }
        };
        let rhs = self.term()?;
        Ok(Expr::Cmp(lhs, op, rhs))
    }

    fn conjunction(&mut self) -> Result<Expr, QueryError> {
        let mut e = self.comparison()?;
        while self.keyword("and") {
            let rhs = self.comparison()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn expr(&mut self) -> Result<Expr, QueryError> {
        let mut e = self.conjunction()?;
        while self.keyword("or") {
            let rhs = self.conjunction()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword("select")?;
        let mut select = vec![self.select_item()?];
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.pos += 1;
            select.push(self.select_item()?);
        }
        self.expect_keyword("from")?;
        let from = self.ident()?;
        let filter = if self.keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.ident()?);
            while matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
                group_by.push(self.ident()?);
            }
        }
        let mut order_by = Vec::new();
        if self.keyword("order") {
            self.expect_keyword("by")?;
            loop {
                // An ORDER BY key is a column name or an aggregate (which
                // sorts by the matching output column, e.g. `count(*)`).
                let key = match self.select_item()? {
                    SelectItem::Column(c) => c,
                    SelectItem::Aggregate(a) => agg_name(&a),
                    SelectItem::AllColumns => {
                        return Err(QueryError::Parse("cannot ORDER BY *".into()))
                    }
                };
                let desc = if self.keyword("desc") {
                    true
                } else {
                    self.keyword("asc");
                    false
                };
                order_by.push((key, desc));
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.keyword("limit") {
            match self.next() {
                Some(Tok::Num(n)) if n >= 0.0 => Some(n as usize),
                _ => return Err(QueryError::Parse("expected LIMIT count".into())),
            }
        } else {
            None
        };
        if self.pos != self.toks.len() {
            return Err(QueryError::Parse(format!(
                "trailing input at token {}",
                self.pos
            )));
        }
        Ok(Query {
            select,
            from,
            filter,
            group_by,
            order_by,
            limit,
        })
    }
}

// -------------------------------------------------------------- executor --

/// Query result: column names plus value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            write!(f, "{:<w$}  ", c, w = widths[i])?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                write!(f, "{:<w$}  ", cell, w = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn eval_term(term: &Term, row: &Row) -> Value {
    match term {
        Term::Column(c) => row.get(c).cloned().unwrap_or(Value::Null),
        Term::Lit(v) => v.clone(),
    }
}

/// `%`-wildcard matcher: exact dynamic program over bytes, O(n·m).
fn like_match(text: &str, pattern: &str) -> bool {
    let t = text.as_bytes();
    let n = t.len();
    // dp[j] = pattern-so-far matches t[..j].
    let mut dp = vec![false; n + 1];
    dp[0] = true;
    for &pc in pattern.as_bytes() {
        if pc == b'%' {
            // '%' absorbs any suffix extension: prefix-or over dp.
            let mut any = false;
            for slot in dp.iter_mut() {
                any = any || *slot;
                *slot = any;
            }
        } else {
            let mut next = vec![false; n + 1];
            for j in 1..=n {
                next[j] = dp[j - 1] && t[j - 1] == pc;
            }
            dp = next;
        }
    }
    dp[n]
}

fn eval_expr(expr: &Expr, row: &Row) -> bool {
    match expr {
        Expr::And(a, b) => eval_expr(a, row) && eval_expr(b, row),
        Expr::Or(a, b) => eval_expr(a, row) || eval_expr(b, row),
        Expr::Between(t, lo, hi) => {
            let v = eval_term(t, row);
            let lo = eval_term(lo, row);
            let hi = eval_term(hi, row);
            if v == Value::Null || lo == Value::Null || hi == Value::Null {
                return false;
            }
            v.cmp_total(&lo) != std::cmp::Ordering::Less
                && v.cmp_total(&hi) != std::cmp::Ordering::Greater
        }
        Expr::Like(t, pattern) => match eval_term(t, row) {
            Value::Str(s) => like_match(&s, pattern),
            _ => false,
        },
        Expr::Cmp(l, op, r) => {
            let lv = eval_term(l, row);
            let rv = eval_term(r, row);
            if lv == Value::Null || rv == Value::Null {
                return false;
            }
            let ord = lv.cmp_total(&rv);
            match op.as_str() {
                "=" => ord == std::cmp::Ordering::Equal,
                "!=" => ord != std::cmp::Ordering::Equal,
                "<" => ord == std::cmp::Ordering::Less,
                "<=" => ord != std::cmp::Ordering::Greater,
                ">" => ord == std::cmp::Ordering::Greater,
                ">=" => ord != std::cmp::Ordering::Less,
                _ => false,
            }
        }
    }
}

fn agg_name(a: &Agg) -> String {
    match a {
        Agg::CountStar => "count(*)".into(),
        Agg::Count(c) => format!("count({c})"),
        Agg::Sum(c) => format!("sum({c})"),
        Agg::Avg(c) => format!("avg({c})"),
        Agg::Min(c) => format!("min({c})"),
        Agg::Max(c) => format!("max({c})"),
    }
}

fn compute_agg(a: &Agg, rows: &[&Row]) -> Value {
    let nums = |col: &str| -> Vec<f64> {
        rows.iter()
            .filter_map(|r| r.get(col).and_then(Value::as_num))
            .collect()
    };
    match a {
        Agg::CountStar => Value::Num(rows.len() as f64),
        Agg::Count(c) => Value::Num(
            rows.iter()
                .filter(|r| !matches!(r.get(c.as_str()), None | Some(Value::Null)))
                .count() as f64,
        ),
        Agg::Sum(c) => Value::Num(nums(c).iter().sum()),
        Agg::Avg(c) => {
            let v = nums(c);
            if v.is_empty() {
                Value::Null
            } else {
                Value::Num(v.iter().sum::<f64>() / v.len() as f64)
            }
        }
        Agg::Min(c) => nums(c)
            .into_iter()
            .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.min(x))))
            .map_or(Value::Null, Value::Num),
        Agg::Max(c) => nums(c)
            .into_iter()
            .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.max(x))))
            .map_or(Value::Null, Value::Num),
    }
}

/// A registry of named tables that accepts SQL-like queries.
///
/// # Examples
///
/// ```
/// use cpi2_pipeline::Dataset;
/// use serde::Serialize;
///
/// #[derive(Serialize)]
/// struct Incident { victim: &'static str, correlation: f64 }
///
/// let mut ds = Dataset::new();
/// ds.insert_records("incidents", &[
///     Incident { victim: "websearch", correlation: 0.46 },
///     Incident { victim: "bigtable", correlation: 0.2 },
/// ]).unwrap();
/// let r = ds
///     .query("SELECT victim FROM incidents WHERE correlation >= 0.35")
///     .unwrap();
/// assert_eq!(r.rows.len(), 1);
/// assert_eq!(r.rows[0][0].to_string(), "websearch");
/// ```
#[derive(Debug, Default)]
pub struct Dataset {
    tables: BTreeMap<String, Table>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Registers (or replaces) a table.
    pub fn insert(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Registers a table built from serializable records.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn insert_records<T: Serialize>(
        &mut self,
        name: &str,
        records: &[T],
    ) -> Result<(), serde_json::Error> {
        self.insert(Table::from_records(name, records)?);
        Ok(())
    }

    /// Table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Executes a query.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError`] on syntax errors or unknown tables.
    pub fn query(&self, sql: &str) -> Result<QueryResult, QueryError> {
        let toks = lex(sql)?;
        let q = Parser { toks, pos: 0 }.query()?;
        let table = self
            .tables
            .get(&q.from)
            .ok_or_else(|| QueryError::UnknownTable(q.from.clone()))?;

        let filtered: Vec<&Row> = table
            .rows
            .iter()
            .filter(|r| match q.filter.as_ref() {
                Some(e) => eval_expr(e, r),
                None => true,
            })
            .collect();

        let has_agg = q
            .select
            .iter()
            .any(|s| matches!(s, SelectItem::Aggregate(_)));

        let (columns, mut rows) = if !q.group_by.is_empty() || has_agg {
            self.grouped(&q, &filtered)
        } else {
            self.plain(&q, table, &filtered)
        };

        // ORDER BY over output columns.
        if !q.order_by.is_empty() {
            let keys: Vec<(usize, bool)> = q
                .order_by
                .iter()
                .filter_map(|(k, desc)| columns.iter().position(|c| c == k).map(|i| (i, *desc)))
                .collect();
            rows.sort_by(|a, b| {
                for &(i, desc) in &keys {
                    let ord = a[i].cmp_total(&b[i]);
                    if ord != std::cmp::Ordering::Equal {
                        return if desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = q.limit {
            rows.truncate(n);
        }
        Ok(QueryResult { columns, rows })
    }

    fn plain(&self, q: &Query, table: &Table, filtered: &[&Row]) -> (Vec<String>, Vec<Vec<Value>>) {
        let mut columns = Vec::new();
        for item in &q.select {
            match item {
                SelectItem::AllColumns => {
                    // Union of keys across all rows, sorted.
                    let mut keys: Vec<String> =
                        table.rows.iter().flat_map(|r| r.keys().cloned()).collect();
                    keys.sort();
                    keys.dedup();
                    columns.extend(keys);
                }
                SelectItem::Column(c) => columns.push(c.clone()),
                // `execute` routes any aggregate select to `grouped()`;
                // if one slips through, name the column like `grouped()`
                // would rather than crash the query engine.
                SelectItem::Aggregate(a) => columns.push(agg_name(a)),
            }
        }
        let rows = filtered
            .iter()
            .map(|r| {
                columns
                    .iter()
                    .map(|c| r.get(c).cloned().unwrap_or(Value::Null))
                    .collect()
            })
            .collect();
        (columns, rows)
    }

    fn grouped(&self, q: &Query, filtered: &[&Row]) -> (Vec<String>, Vec<Vec<Value>>) {
        let mut columns = Vec::new();
        for item in &q.select {
            match item {
                SelectItem::Column(c) => columns.push(c.clone()),
                SelectItem::Aggregate(a) => columns.push(agg_name(a)),
                SelectItem::AllColumns => columns.push("*".into()),
            }
        }
        // Group rows by the GROUP BY key tuple (whole input = one group if
        // no GROUP BY).
        let mut groups: BTreeMap<String, Vec<&Row>> = BTreeMap::new();
        for r in filtered {
            let key = q
                .group_by
                .iter()
                .map(|c| r.get(c).cloned().unwrap_or(Value::Null).to_string())
                .collect::<Vec<_>>()
                .join("\u{1f}");
            groups.entry(key).or_default().push(r);
        }
        if groups.is_empty() && q.group_by.is_empty() {
            groups.insert(String::new(), Vec::new());
        }
        let rows = groups
            .values()
            .map(|members| {
                q.select
                    .iter()
                    .map(|item| match item {
                        SelectItem::Column(c) => members
                            .first()
                            .and_then(|r| r.get(c).cloned())
                            .unwrap_or(Value::Null),
                        SelectItem::Aggregate(a) => compute_agg(a, members),
                        SelectItem::AllColumns => Value::Null,
                    })
                    .collect()
            })
            .collect();
        (columns, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn sample_dataset() -> Result<Dataset, serde_json::Error> {
        #[derive(Serialize)]
        struct Inc {
            job: &'static str,
            antagonist: &'static str,
            correlation: f64,
            acted: bool,
        }
        let recs = vec![
            Inc {
                job: "websearch",
                antagonist: "video",
                correlation: 0.46,
                acted: true,
            },
            Inc {
                job: "websearch",
                antagonist: "mapreduce",
                correlation: 0.39,
                acted: true,
            },
            Inc {
                job: "websearch",
                antagonist: "video",
                correlation: 0.52,
                acted: true,
            },
            Inc {
                job: "bigtable",
                antagonist: "compile",
                correlation: 0.20,
                acted: false,
            },
            Inc {
                job: "bigtable",
                antagonist: "video",
                correlation: 0.41,
                acted: true,
            },
        ];
        let mut ds = Dataset::new();
        ds.insert_records("incidents", &recs)?;
        Ok(ds)
    }

    #[test]
    fn select_star() -> TestResult {
        let ds = sample_dataset()?;
        let r = ds.query("SELECT * FROM incidents")?;
        assert_eq!(r.rows.len(), 5);
        assert!(r.columns.contains(&"correlation".to_string()));
        Ok(())
    }

    #[test]
    fn where_filters() -> TestResult {
        let ds = sample_dataset()?;
        let r = ds.query("SELECT antagonist FROM incidents WHERE correlation >= 0.4")?;
        assert_eq!(r.rows.len(), 3);
        Ok(())
    }

    #[test]
    fn where_string_and_bool() -> TestResult {
        let ds = sample_dataset()?;
        let r =
            ds.query("SELECT correlation FROM incidents WHERE job = 'bigtable' AND acted = true")?;
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Num(0.41));
        Ok(())
    }

    #[test]
    fn or_precedence() -> TestResult {
        let ds = sample_dataset()?;
        // AND binds tighter: job='bigtable' OR (job='websearch' AND corr>0.5)
        let r = ds.query(
            "SELECT job FROM incidents WHERE job = 'bigtable' OR job = 'websearch' AND correlation > 0.5",
        )?;
        assert_eq!(r.rows.len(), 3);
        Ok(())
    }

    #[test]
    fn group_by_with_aggregates() -> TestResult {
        // The §5 forensics query: most aggressive antagonists for a job.
        let ds = sample_dataset()?;
        let r = ds.query(
            "SELECT antagonist, count(*), avg(correlation) FROM incidents \
             WHERE job = 'websearch' GROUP BY antagonist ORDER BY count(*) DESC",
        )?;
        assert_eq!(
            r.columns,
            vec!["antagonist", "count(*)", "avg(correlation)"]
        );
        assert_eq!(r.rows[0][0], Value::Str("video".into()));
        assert_eq!(r.rows[0][1], Value::Num(2.0));
        assert_eq!(r.rows[0][2], Value::Num(0.49));
        Ok(())
    }

    #[test]
    fn global_aggregate_without_group_by() -> TestResult {
        let ds = sample_dataset()?;
        let r = ds.query("SELECT count(*), max(correlation) FROM incidents")?;
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Num(5.0));
        assert_eq!(r.rows[0][1], Value::Num(0.52));
        Ok(())
    }

    #[test]
    fn order_and_limit() -> TestResult {
        let ds = sample_dataset()?;
        let r = ds.query(
            "SELECT antagonist, correlation FROM incidents ORDER BY correlation DESC LIMIT 2",
        )?;
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Value::Num(0.52));
        assert_eq!(r.rows[1][1], Value::Num(0.46));
        Ok(())
    }

    #[test]
    fn min_sum_aggregates() -> TestResult {
        let ds = sample_dataset()?;
        let r = ds.query("SELECT min(correlation), sum(correlation) FROM incidents")?;
        assert_eq!(r.rows[0][0], Value::Num(0.2));
        let Value::Num(s) = r.rows[0][1] else {
            return Err("sum(correlation) should be numeric".into());
        };
        assert!((s - 1.98).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn unknown_table_error() -> TestResult {
        let ds = sample_dataset()?;
        assert_eq!(
            ds.query("SELECT * FROM nope"),
            Err(QueryError::UnknownTable("nope".into()))
        );
        Ok(())
    }

    #[test]
    fn parse_errors() -> TestResult {
        let ds = sample_dataset()?;
        assert!(matches!(
            ds.query("FROM incidents"),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            ds.query("SELECT * FROM incidents WHERE"),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            ds.query("SELECT * FROM incidents LIMIT 'x'"),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            ds.query("SELECT * FROM incidents trailing"),
            Err(QueryError::Parse(_))
        ));
        Ok(())
    }

    #[test]
    fn null_columns_excluded_by_where() -> TestResult {
        let ds = sample_dataset()?;
        let r = ds.query("SELECT job FROM incidents WHERE nonexistent > 1")?;
        assert!(r.rows.is_empty());
        Ok(())
    }

    #[test]
    fn nested_records_flatten() -> TestResult {
        #[derive(Serialize)]
        struct Outer {
            name: &'static str,
            inner: Inner,
            list: Vec<u32>,
        }
        #[derive(Serialize)]
        struct Inner {
            x: f64,
        }
        let mut ds = Dataset::new();
        ds.insert_records(
            "t",
            &[Outer {
                name: "a",
                inner: Inner { x: 3.5 },
                list: vec![7, 8],
            }],
        )?;
        let r = ds.query("SELECT inner.x, list.len, list.0 FROM t")?;
        assert_eq!(
            r.rows[0],
            vec![Value::Num(3.5), Value::Num(2.0), Value::Num(7.0)]
        );
        Ok(())
    }

    #[test]
    fn display_renders_table() -> TestResult {
        let ds = sample_dataset()?;
        let r = ds.query("SELECT job, correlation FROM incidents LIMIT 1")?;
        let text = r.to_string();
        assert!(text.contains("job"));
        assert!(text.contains("websearch"));
        Ok(())
    }

    #[test]
    fn lexer_rejects_garbage() {
        assert!(lex("SELECT # FROM t").is_err());
        assert!(lex("SELECT 'unterminated").is_err());
    }
}

#[cfg(test)]
mod like_between_tests {
    use super::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn ds() -> Result<Dataset, serde_json::Error> {
        #[derive(serde::Serialize)]
        struct R {
            job: &'static str,
            cpi: f64,
        }
        let mut ds = Dataset::new();
        ds.insert_records(
            "t",
            &[
                R {
                    job: "websearch-leaf",
                    cpi: 1.0,
                },
                R {
                    job: "websearch-root",
                    cpi: 2.0,
                },
                R {
                    job: "bigtable",
                    cpi: 3.0,
                },
                R {
                    job: "search-proxy",
                    cpi: 4.0,
                },
            ],
        )?;
        Ok(ds)
    }

    #[test]
    fn between_inclusive() -> TestResult {
        let r = ds()?.query("SELECT job FROM t WHERE cpi BETWEEN 2 AND 3")?;
        assert_eq!(r.rows.len(), 2);
        Ok(())
    }

    #[test]
    fn like_prefix() -> TestResult {
        let r = ds()?.query("SELECT job FROM t WHERE job LIKE 'websearch%'")?;
        assert_eq!(r.rows.len(), 2);
        Ok(())
    }

    #[test]
    fn like_suffix_and_infix() -> TestResult {
        let r = ds()?.query("SELECT job FROM t WHERE job LIKE '%leaf'")?;
        assert_eq!(r.rows.len(), 1);
        let r = ds()?.query("SELECT job FROM t WHERE job LIKE '%search%'")?;
        assert_eq!(r.rows.len(), 3);
        Ok(())
    }

    #[test]
    fn like_exact_without_wildcard() -> TestResult {
        let r = ds()?.query("SELECT job FROM t WHERE job LIKE 'bigtable'")?;
        assert_eq!(r.rows.len(), 1);
        let r = ds()?.query("SELECT job FROM t WHERE job LIKE 'bigtab'")?;
        assert_eq!(r.rows.len(), 0);
        Ok(())
    }

    #[test]
    fn like_on_number_is_false() -> TestResult {
        let r = ds()?.query("SELECT job FROM t WHERE cpi LIKE '1%'")?;
        assert!(r.rows.is_empty());
        Ok(())
    }

    #[test]
    fn between_in_conjunction() -> TestResult {
        let r = ds()?.query("SELECT job FROM t WHERE cpi BETWEEN 1 AND 3 AND job LIKE 'web%'")?;
        assert_eq!(r.rows.len(), 2);
        Ok(())
    }

    #[test]
    fn like_match_unit() {
        assert!(like_match("abc", "abc"));
        assert!(like_match("abc", "a%c"));
        assert!(like_match("abc", "%"));
        assert!(like_match("abc", "%b%"));
        assert!(!like_match("abc", "b%"));
        assert!(!like_match("abc", "%b"));
        assert!(like_match("aXXbYYc", "a%b%c"));
        assert!(!like_match("ab", "a%b%c"));
    }
}

#[cfg(test)]
mod like_dp_tests {
    use super::like_match;

    #[test]
    fn suffix_pattern_on_repeated_text() {
        // The greedy-segment approach gets this wrong; the DP must not.
        assert!(like_match("abcabc", "%abc"));
        assert!(like_match("abcabc", "abc%"));
        assert!(like_match("abcabc", "%bca%"));
        assert!(!like_match("abcabc", "%abd"));
    }

    #[test]
    fn empty_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "a"));
        assert!(!like_match("a", ""));
    }

    #[test]
    fn consecutive_wildcards() {
        assert!(like_match("xyz", "%%"));
        assert!(like_match("xyz", "x%%z"));
    }
}
