//! Versioned CPI spec store and distribution.
//!
//! §3.1/Fig. 6: "The per-job, per-platform aggregated CPI values are then
//! sent back to each machine that is running a task from that job." The
//! store versions every update so per-machine agents can pull just what
//! changed since their last sync.

use cpi2_core::{CpiSpec, JobKey};
use parking_lot::RwLock;
use std::collections::HashMap;

/// A thread-safe, versioned store of CPI specs.
#[derive(Debug, Default)]
pub struct SpecStore {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    version: u64,
    specs: HashMap<JobKey, (u64, CpiSpec)>,
}

impl SpecStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SpecStore::default()
    }

    /// Installs a batch of refreshed specs, bumping the store version.
    /// Returns the new version.
    pub fn publish(&self, specs: Vec<CpiSpec>) -> u64 {
        let mut inner = self.inner.write();
        inner.version += 1;
        let v = inner.version;
        for s in specs {
            inner.specs.insert(s.key(), (v, s));
        }
        v
    }

    /// Current store version (bumps on every publish).
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// The current spec for a key, if any.
    pub fn get(&self, key: &JobKey) -> Option<CpiSpec> {
        self.inner.read().specs.get(key).map(|(_, s)| s.clone())
    }

    /// All specs changed after `since_version` — the delta an agent pulls.
    pub fn changed_since(&self, since_version: u64) -> Vec<CpiSpec> {
        let inner = self.inner.read();
        let mut out: Vec<CpiSpec> = inner
            .specs
            .values()
            .filter(|(v, _)| *v > since_version)
            .map(|(_, s)| s.clone())
            .collect();
        out.sort_by(|a, b| {
            (a.jobname.as_str(), a.platforminfo.as_str())
                .cmp(&(b.jobname.as_str(), b.platforminfo.as_str()))
        });
        out
    }

    /// Number of stored specs.
    pub fn len(&self) -> usize {
        self.inner.read().specs.len()
    }

    /// True if the store holds no specs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(job: &str, mean: f64) -> CpiSpec {
        CpiSpec {
            jobname: job.into(),
            platforminfo: "p".into(),
            num_samples: 1000,
            cpu_usage_mean: 1.0,
            cpi_mean: mean,
            cpi_stddev: 0.1,
        }
    }

    #[test]
    fn publish_and_get() {
        let store = SpecStore::new();
        store.publish(vec![spec("a", 1.0), spec("b", 2.0)]);
        let got = store.get(&JobKey::new("a", "p")).unwrap();
        assert_eq!(got.cpi_mean, 1.0);
        assert!(store.get(&JobKey::new("c", "p")).is_none());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn versions_monotonic() {
        let store = SpecStore::new();
        let v1 = store.publish(vec![spec("a", 1.0)]);
        let v2 = store.publish(vec![spec("a", 1.1)]);
        assert!(v2 > v1);
        assert_eq!(store.version(), v2);
    }

    #[test]
    fn changed_since_returns_delta() {
        let store = SpecStore::new();
        let v1 = store.publish(vec![spec("a", 1.0), spec("b", 2.0)]);
        assert_eq!(store.changed_since(0).len(), 2);
        store.publish(vec![spec("b", 2.5)]);
        let delta = store.changed_since(v1);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].jobname, "b");
        assert_eq!(delta[0].cpi_mean, 2.5);
        assert!(store.changed_since(store.version()).is_empty());
    }

    #[test]
    fn concurrent_readers() {
        use std::sync::Arc;
        let store = Arc::new(SpecStore::new());
        store.publish((0..100).map(|i| spec(&format!("j{i}"), 1.0)).collect());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        assert!(s.get(&JobKey::new(format!("j{i}"), "p")).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
