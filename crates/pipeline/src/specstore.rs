//! Versioned CPI spec store and distribution.
//!
//! §3.1/Fig. 6: "The per-job, per-platform aggregated CPI values are then
//! sent back to each machine that is running a task from that job." The
//! store versions every update so per-machine agents can pull just what
//! changed since their last sync.
//!
//! Publication is a single atomic snapshot swap: [`SpecStore::publish`]
//! builds the next immutable [`SpecSnapshot`] off to the side and installs
//! it with one pointer store. Readers grab the current `Arc` and then read
//! entirely lock-free — an agent mid-pull never blocks on (or observes a
//! half-applied) refresh.

use cpi2_core::{CpiSpec, JobKey};
use cpi2_telemetry::{Counter, Histo, Telemetry};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// How many past snapshots the store retains for [`SpecStore::lagged_snapshot`]
/// (fault injection serves reads from a bounded distance behind head).
const SNAPSHOT_HISTORY: usize = 8;

/// A thread-safe, versioned store of CPI specs.
#[derive(Debug, Default)]
pub struct SpecStore {
    /// The current snapshot; held only long enough to clone the `Arc`.
    current: RwLock<Arc<Inner>>,
    /// Serializes publishers so snapshot construction happens outside any
    /// lock readers touch.
    publish_lock: Mutex<()>,
    /// The last [`SNAPSHOT_HISTORY`] installed snapshots, newest last —
    /// the stale views [`SpecStore::lagged_snapshot`] serves. Touched only
    /// under `publish_lock` (writes) or alone (reads).
    history: Mutex<VecDeque<Arc<Inner>>>,
    /// Snapshot swaps performed by [`SpecStore::publish`].
    swaps_total: Counter,
    /// Version lag observed by [`SpecStore::changed_since`] callers: how
    /// many publishes a reader was behind when it synced.
    reader_staleness: Histo,
}

/// One stored spec with its distribution metadata.
#[derive(Debug, Clone)]
struct SpecEntry {
    /// Store version this entry was installed at.
    version: u64,
    /// Simulated publish time (µs); `i64::MAX` for untimestamped
    /// publishes, which therefore never look stale to agents.
    published_at_us: i64,
    spec: CpiSpec,
}

#[derive(Debug, Default)]
struct Inner {
    version: u64,
    // BTreeMap: `changed_since` iterates the spec set, and the deltas
    // it hands to agents must not depend on hash order.
    specs: BTreeMap<JobKey, SpecEntry>,
}

/// An immutable, lock-free view of the store at one version.
///
/// Cheap to clone (an `Arc` bump); every read against the same snapshot
/// is mutually consistent, no matter how many publishes land in between.
#[derive(Debug, Clone)]
pub struct SpecSnapshot {
    inner: Arc<Inner>,
}

impl SpecSnapshot {
    /// The store version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// The spec for a key at this snapshot, if any.
    pub fn get(&self, key: &JobKey) -> Option<&CpiSpec> {
        self.inner.specs.get(key).map(|e| &e.spec)
    }

    /// Number of specs in this snapshot.
    pub fn len(&self) -> usize {
        self.inner.specs.len()
    }

    /// True if the snapshot holds no specs.
    pub fn is_empty(&self) -> bool {
        self.inner.specs.is_empty()
    }

    /// The highest per-entry install version in this snapshot. Coherence
    /// invariant: never exceeds [`SpecSnapshot::version`], at any lag.
    pub fn max_entry_version(&self) -> u64 {
        self.inner
            .specs
            .values()
            .map(|e| e.version)
            .max()
            .unwrap_or(0)
    }

    /// All specs changed after `since_version` in this snapshot, each with
    /// its publish time (µs; `i64::MAX` when the publisher attached none).
    /// Sorted by (jobname, platforminfo) so sync order is deterministic.
    pub fn changed_since_with_age(&self, since_version: u64) -> Vec<(CpiSpec, i64)> {
        let mut out: Vec<(CpiSpec, i64)> = self
            .inner
            .specs
            .values()
            .filter(|e| e.version > since_version)
            .map(|e| (e.spec.clone(), e.published_at_us))
            .collect();
        out.sort_by(|(a, _), (b, _)| {
            (a.jobname.as_str(), a.platforminfo.as_str())
                .cmp(&(b.jobname.as_str(), b.platforminfo.as_str()))
        });
        out
    }
}

impl SpecStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SpecStore::default()
    }

    /// Attaches telemetry: snapshot-swap counts and reader staleness.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.swaps_total = telemetry.counter("cpi_specstore_swaps_total", &[]);
        self.reader_staleness = telemetry.histogram("cpi_specstore_reader_staleness", &[]);
    }

    /// The current snapshot, for lock-free reading.
    pub fn snapshot(&self) -> SpecSnapshot {
        SpecSnapshot {
            inner: Arc::clone(&self.current.read()),
        }
    }

    /// Installs a batch of refreshed specs with no publish timestamp
    /// (entries never look stale to agents). Returns the new version.
    ///
    /// The new spec set becomes visible to readers all at once: the next
    /// snapshot is assembled while readers continue against the old one,
    /// then swapped in with a single pointer store.
    pub fn publish(&self, specs: Vec<CpiSpec>) -> u64 {
        self.publish_at(specs, i64::MAX)
    }

    /// Installs a batch of refreshed specs stamped with the simulated
    /// publish time `now_us`, bumping the store version. Agents use the
    /// stamp to age their cached copies ([`SpecSnapshot::changed_since_with_age`]).
    /// Returns the new version.
    pub fn publish_at(&self, specs: Vec<CpiSpec>, now_us: i64) -> u64 {
        let _publishing = self.publish_lock.lock();
        // lint: allow(nested-lock) — read guard is a temporary dropped at
        // statement end; publishers serialize on publish_lock by design.
        let cur = Arc::clone(&self.current.read());
        let mut next = Inner {
            version: cur.version + 1,
            specs: cur.specs.clone(),
        };
        let v = next.version;
        for s in specs {
            next.specs.insert(
                s.key(),
                SpecEntry {
                    version: v,
                    published_at_us: now_us,
                    spec: s,
                },
            );
        }
        let next = Arc::new(next);
        // lint: allow(nested-lock) — history is only ever locked alone or
        // under publish_lock, never while holding `current`.
        let mut history = self.history.lock();
        if history.len() == SNAPSHOT_HISTORY {
            history.pop_front();
        }
        history.push_back(Arc::clone(&next));
        drop(history);
        // lint: allow(nested-lock) — the single-pointer swap under the
        // publish lock IS the snapshot-swap protocol; writers never block
        // readers for longer than the store.
        *self.current.write() = next;
        self.swaps_total.inc();
        v
    }

    /// Current store version (bumps on every publish).
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// The current spec for a key, if any.
    pub fn get(&self, key: &JobKey) -> Option<CpiSpec> {
        self.snapshot().get(key).cloned()
    }

    /// All specs changed after `since_version` — the delta an agent pulls.
    pub fn changed_since(&self, since_version: u64) -> Vec<CpiSpec> {
        self.changed_since_with_age(since_version)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// Like [`SpecStore::changed_since`] but pairing each spec with its
    /// publish time, so agents can age their cached copies.
    pub fn changed_since_with_age(&self, since_version: u64) -> Vec<(CpiSpec, i64)> {
        let snap = self.snapshot();
        self.reader_staleness
            .record(snap.version().saturating_sub(since_version) as f64);
        snap.changed_since_with_age(since_version)
    }

    /// A snapshot `lag` publishes behind the current one (clamped to the
    /// oldest retained; `lag == 0` is the current snapshot). Fault
    /// injection uses this to model a distribution replica serving stale
    /// state; the returned snapshot is internally coherent either way.
    pub fn lagged_snapshot(&self, lag: usize) -> SpecSnapshot {
        if lag == 0 {
            return self.snapshot();
        }
        let history = self.history.lock();
        match history.len().checked_sub(lag + 1) {
            Some(idx) => SpecSnapshot {
                inner: Arc::clone(&history[idx]),
            },
            None => match history.front() {
                Some(oldest) => SpecSnapshot {
                    inner: Arc::clone(oldest),
                },
                None => {
                    drop(history);
                    self.snapshot()
                }
            },
        }
    }

    /// Number of stored specs.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True if the store holds no specs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(job: &str, mean: f64) -> CpiSpec {
        CpiSpec {
            jobname: job.into(),
            platforminfo: "p".into(),
            num_samples: 1000,
            cpu_usage_mean: 1.0,
            cpi_mean: mean,
            cpi_stddev: 0.1,
        }
    }

    #[test]
    fn publish_and_get() {
        let store = SpecStore::new();
        store.publish(vec![spec("a", 1.0), spec("b", 2.0)]);
        let got = store.get(&JobKey::new("a", "p")).unwrap();
        assert_eq!(got.cpi_mean, 1.0);
        assert!(store.get(&JobKey::new("c", "p")).is_none());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn versions_monotonic() {
        let store = SpecStore::new();
        let v1 = store.publish(vec![spec("a", 1.0)]);
        let v2 = store.publish(vec![spec("a", 1.1)]);
        assert!(v2 > v1);
        assert_eq!(store.version(), v2);
    }

    #[test]
    fn changed_since_returns_delta() {
        let store = SpecStore::new();
        let v1 = store.publish(vec![spec("a", 1.0), spec("b", 2.0)]);
        assert_eq!(store.changed_since(0).len(), 2);
        store.publish(vec![spec("b", 2.5)]);
        let delta = store.changed_since(v1);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].jobname, "b");
        assert_eq!(delta[0].cpi_mean, 2.5);
        assert!(store.changed_since(store.version()).is_empty());
    }

    #[test]
    fn concurrent_readers() {
        let store = Arc::new(SpecStore::new());
        store.publish((0..100).map(|i| spec(&format!("j{i}"), 1.0)).collect());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        assert!(s.get(&JobKey::new(format!("j{i}"), "p")).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn snapshot_is_stable_across_publishes() {
        let store = SpecStore::new();
        store.publish(vec![spec("a", 1.0)]);
        let snap = store.snapshot();
        store.publish(vec![spec("a", 9.0), spec("b", 2.0)]);
        // The old snapshot still answers from its own version.
        assert_eq!(snap.get(&JobKey::new("a", "p")).unwrap().cpi_mean, 1.0);
        assert!(snap.get(&JobKey::new("b", "p")).is_none());
        assert_eq!(snap.len(), 1);
        // A fresh snapshot sees the whole new batch at once.
        let snap2 = store.snapshot();
        assert_eq!(snap2.get(&JobKey::new("a", "p")).unwrap().cpi_mean, 9.0);
        assert_eq!(snap2.len(), 2);
        assert!(snap2.version() > snap.version());
    }

    #[test]
    fn publish_at_stamps_entries() {
        let store = SpecStore::new();
        store.publish_at(vec![spec("a", 1.0)], 42);
        let aged = store.changed_since_with_age(0);
        assert_eq!(aged.len(), 1);
        assert_eq!(aged[0].1, 42);
        // Untimestamped publishes carry the never-stale sentinel.
        store.publish(vec![spec("b", 2.0)]);
        let aged = store.changed_since_with_age(0);
        let b = aged.iter().find(|(s, _)| s.jobname == "b").unwrap();
        assert_eq!(b.1, i64::MAX);
        // And "a" keeps its original stamp.
        let a = aged.iter().find(|(s, _)| s.jobname == "a").unwrap();
        assert_eq!(a.1, 42);
    }

    #[test]
    fn lagged_snapshot_serves_history() {
        let store = SpecStore::new();
        let key = JobKey::new("a", "p");
        store.publish_at(vec![spec("a", 1.0)], 1);
        store.publish_at(vec![spec("a", 2.0)], 2);
        store.publish_at(vec![spec("a", 3.0)], 3);
        assert_eq!(store.lagged_snapshot(0).get(&key).unwrap().cpi_mean, 3.0);
        assert_eq!(store.lagged_snapshot(1).get(&key).unwrap().cpi_mean, 2.0);
        assert_eq!(store.lagged_snapshot(2).get(&key).unwrap().cpi_mean, 1.0);
        // Beyond retained history: clamps to the oldest.
        assert_eq!(store.lagged_snapshot(99).get(&key).unwrap().cpi_mean, 1.0);
        // Lagged views are coherent and strictly behind head.
        let lagged = store.lagged_snapshot(1);
        assert!(lagged.max_entry_version() <= lagged.version());
        assert!(lagged.version() < store.version());
    }

    #[test]
    fn lagged_snapshot_on_empty_store() {
        let store = SpecStore::new();
        assert_eq!(store.lagged_snapshot(3).len(), 0);
        assert_eq!(store.lagged_snapshot(0).version(), 0);
    }

    #[test]
    fn readers_never_see_a_torn_batch() {
        // Every publish installs ("x", m) and ("y", m) with the same mean;
        // a reader that could observe mid-publish state would catch them
        // disagreeing.
        let store = Arc::new(SpecStore::new());
        store.publish(vec![spec("x", 0.0), spec("y", 0.0)]);
        let writer = {
            let s = Arc::clone(&store);
            std::thread::spawn(move || {
                for m in 1..200 {
                    s.publish(vec![spec("x", m as f64), spec("y", m as f64)]);
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let snap = s.snapshot();
                        let x = snap.get(&JobKey::new("x", "p")).unwrap().cpi_mean;
                        let y = snap.get(&JobKey::new("y", "p")).unwrap().cpi_mean;
                        assert_eq!(x, y, "torn read at version {}", snap.version());
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
