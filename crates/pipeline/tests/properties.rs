//! Property-based tests for the pipeline: log encoding and query engine.

use cpi2_pipeline::query::{Row, Value};
use cpi2_pipeline::{Dataset, LogTable, Table};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Rec {
    job: String,
    cpi: f64,
    acted: bool,
}

fn rec_strategy() -> impl Strategy<Value = Rec> {
    ("[a-z]{1,8}", 0.0..100.0f64, any::<bool>()).prop_map(|(job, cpi, acted)| Rec {
        job,
        cpi,
        acted,
    })
}

fn table(recs: &[Rec]) -> Dataset {
    let mut ds = Dataset::new();
    ds.insert_records("t", recs).unwrap();
    ds
}

proptest! {
    #[test]
    fn jsonl_roundtrip(recs in prop::collection::vec(rec_strategy(), 0..50)) {
        let mut t = LogTable::new("t");
        t.extend(recs.clone());
        let bytes = t.to_jsonl().unwrap();
        let back: LogTable<Rec> = LogTable::from_jsonl("t", &bytes).unwrap();
        prop_assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn select_star_returns_all_rows(recs in prop::collection::vec(rec_strategy(), 0..30)) {
        let ds = table(&recs);
        let r = ds.query("SELECT * FROM t").unwrap();
        prop_assert_eq!(r.rows.len(), recs.len());
    }

    #[test]
    fn where_partition_is_complete(recs in prop::collection::vec(rec_strategy(), 0..40), pivot in 0.0..100.0f64) {
        // rows(cpi < p) + rows(cpi >= p) = all rows.
        let ds = table(&recs);
        let below = ds.query(&format!("SELECT job FROM t WHERE cpi < {pivot}")).unwrap();
        let above = ds.query(&format!("SELECT job FROM t WHERE cpi >= {pivot}")).unwrap();
        prop_assert_eq!(below.rows.len() + above.rows.len(), recs.len());
    }

    #[test]
    fn limit_caps_output(recs in prop::collection::vec(rec_strategy(), 0..40), limit in 0usize..50) {
        let ds = table(&recs);
        let r = ds.query(&format!("SELECT job FROM t LIMIT {limit}")).unwrap();
        prop_assert!(r.rows.len() <= limit);
        prop_assert!(r.rows.len() <= recs.len());
    }

    #[test]
    fn order_by_sorts(recs in prop::collection::vec(rec_strategy(), 1..40)) {
        let ds = table(&recs);
        let r = ds.query("SELECT cpi FROM t ORDER BY cpi").unwrap();
        let vals: Vec<f64> = r.rows.iter().filter_map(|row| row[0].as_num()).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let r = ds.query("SELECT cpi FROM t ORDER BY cpi DESC").unwrap();
        let vals: Vec<f64> = r.rows.iter().filter_map(|row| row[0].as_num()).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn count_star_matches_len(recs in prop::collection::vec(rec_strategy(), 0..40)) {
        let ds = table(&recs);
        let r = ds.query("SELECT count(*) FROM t").unwrap();
        prop_assert_eq!(r.rows[0][0].clone(), Value::Num(recs.len() as f64));
    }

    #[test]
    fn group_by_counts_sum_to_total(recs in prop::collection::vec(rec_strategy(), 0..60)) {
        let ds = table(&recs);
        let r = ds.query("SELECT job, count(*) FROM t GROUP BY job").unwrap();
        let total: f64 = r
            .rows
            .iter()
            .filter_map(|row| row[1].as_num())
            .sum();
        prop_assert_eq!(total as usize, recs.len());
    }

    #[test]
    fn avg_between_min_and_max(recs in prop::collection::vec(rec_strategy(), 1..40)) {
        let ds = table(&recs);
        let r = ds.query("SELECT min(cpi), avg(cpi), max(cpi) FROM t").unwrap();
        let min = r.rows[0][0].as_num().unwrap();
        let avg = r.rows[0][1].as_num().unwrap();
        let max = r.rows[0][2].as_num().unwrap();
        prop_assert!(min <= avg + 1e-9 && avg <= max + 1e-9);
    }

    #[test]
    fn garbage_queries_never_panic(q in "[ -~]{0,60}") {
        // Arbitrary printable input must produce Ok or Err, never a panic.
        let ds = table(&[]);
        let _ = ds.query(&q);
    }

    #[test]
    fn manual_rows_query(vals in prop::collection::vec(-100.0..100.0f64, 1..30)) {
        let mut t = Table::new("m");
        for &v in &vals {
            let mut row = Row::new();
            row.insert("x".into(), Value::Num(v));
            t.rows.push(row);
        }
        let mut ds = Dataset::new();
        ds.insert(t);
        let r = ds.query("SELECT sum(x) FROM m").unwrap();
        let s = r.rows[0][0].as_num().unwrap();
        let expect: f64 = vals.iter().sum();
        prop_assert!((s - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }
}
