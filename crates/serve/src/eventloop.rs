//! Readiness-driven connection shards: HTTP/1.1 keep-alive over
//! non-blocking sockets.
//!
//! [`server::start`](crate::server::start) spawns `cfg.shards` copies of
//! [`shard_loop`], each polling a clone of the shared listener plus its
//! own connection registry via [`poll`](crate::poll) — the sharded-accept
//! model: no accept thread, no handoff queue, and a connection lives its
//! whole life on one shard, so per-connection state needs no locks.
//!
//! Each connection is a small state machine:
//!
//! - **read**: bytes accumulate in a buffer; complete requests are parsed
//!   off the front ([`http::parse_request`]), so pipelined requests cost
//!   one syscall batch. Responses are answered strictly in order — the
//!   next pipelined request is not dispatched until the previous
//!   response (including a streaming body) is fully serialized.
//! - **write**: responses serialize into a write buffer flushed as the
//!   socket drains; a chunked body iterator is pulled only when the
//!   buffer drops below the high-water mark, so a slow client
//!   backpressures the producer instead of ballooning memory.
//! - **deadlines**: a partially-read request must complete within
//!   `read_timeout_ms` (else `408` + close), a stalled write dies after
//!   `write_timeout_ms`, and an idle keep-alive connection is reaped
//!   after `keep_alive_idle_ms`. A connection is retired after
//!   `max_requests_per_conn` responses (`Connection: close` on the
//!   last).
//! - **errors**: protocol errors answer their status, then linger —
//!   half-close the write side and drain (bounded) until client EOF, so
//!   the response isn't destroyed by a kernel RST.
//!
//! Handlers run on the shard thread under `catch_unwind`: a panicking
//! route costs one `500` (or one aborted stream), never the shard. This
//! module (with `server`/`harness`) is a sanctioned clock site — wall
//! time here only drives socket deadlines, never sim state.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::http::{self, Body, ChunkIter, Framing, Parsed, Response};
use crate::server::{endpoint_label, Handler, ServerConfig, ServerMetrics};

/// Poll granularity: upper bound on deadline/reap detection latency and
/// on shutdown response time.
const POLL_TICK_MS: i32 = 5;
/// Stop pulling a chunked body once this many bytes are buffered.
const WRITE_HIGH_WATER: usize = 64 * 1024;
/// Stop reading new request bytes while this much is still unparsed.
const READ_HIGH_WATER: usize = 256 * 1024;
/// Bound on bytes drained during a lingering close.
const LINGER_DRAIN_MAX: usize = 256 * 1024;

/// Why a connection ended (metrics disposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Alive,
    /// Orderly end: close requested, flushed, or client EOF at a request
    /// boundary.
    Done,
    /// Client vanished mid-request.
    Hangup,
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Bytes of `read_buf` already consumed by the parser.
    read_pos: usize,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already written to the socket.
    write_pos: usize,
    /// Chunked body currently streaming (response in flight).
    streaming: Option<ChunkIter>,
    requests_served: u32,
    /// No more requests will be parsed; close once flushed.
    close_after_flush: bool,
    /// After flushing, half-close and drain until client EOF instead of
    /// closing outright (protocol-error responses).
    linger: bool,
    linger_drained: usize,
    /// Client half-closed its write side (EOF seen).
    read_closed: bool,
    /// Wall-clock of the last successful read or write.
    last_activity: Instant,
    /// Set while a partial request sits in the buffer.
    request_started: Option<Instant>,
    fate: Fate,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            read_buf: Vec::with_capacity(1024),
            read_pos: 0,
            write_buf: Vec::with_capacity(1024),
            write_pos: 0,
            streaming: None,
            requests_served: 0,
            close_after_flush: false,
            linger: false,
            linger_drained: 0,
            read_closed: false,
            last_activity: now,
            request_started: None,
            fate: Fate::Alive,
        }
    }

    fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len() || self.streaming.is_some()
    }

    fn flushed(&self) -> bool {
        self.write_pos >= self.write_buf.len() && self.streaming.is_none()
    }
}

/// One shard: accepts from its listener clone and serves its registry
/// until shutdown. `conn_count` is the server-wide connection total the
/// shards share for the global `max_connections` cap.
pub(crate) fn shard_loop(
    listener: TcpListener,
    handler: Handler,
    metrics: ServerMetrics,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
    conn_count: Arc<AtomicUsize>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut poll = crate::poll::PollSet::new();
    let listener_fd = listener.as_raw_fd();

    while !shutdown.load(Ordering::SeqCst) {
        // Rebuild the interest set. The listener is polled only while
        // the server-wide connection cap has headroom.
        poll.clear();
        let watch_listener = conn_count.load(Ordering::Relaxed) < cfg.max_connections.max(1);
        let listener_slot = if watch_listener {
            Some(poll.push(listener_fd, crate::poll::IN))
        } else {
            None
        };
        let base = poll.len();
        for c in &conns {
            let mut events = 0i16;
            if !c.read_closed && (c.linger || self_unparsed(c) < READ_HIGH_WATER) {
                events |= crate::poll::IN;
            }
            if c.wants_write() {
                events |= crate::poll::OUT;
            }
            poll.push(c.stream.as_raw_fd(), events);
        }
        if poll.wait(POLL_TICK_MS).is_err() {
            // poll(2) only fails here for EINVAL-class reasons; back off
            // rather than spinning.
            std::thread::sleep(Duration::from_millis(POLL_TICK_MS as u64));
        }
        let now = Instant::now();

        if listener_slot.map(|s| poll.readable(s)).unwrap_or(false) {
            accept_ready(&listener, &mut conns, &metrics, &cfg, &conn_count, now);
        }

        for (i, conn) in conns.iter_mut().enumerate() {
            if poll.readable(base + i) {
                on_readable(conn, &handler, &metrics, &cfg, now);
            }
            if conn.fate == Fate::Alive && (poll.writable(base + i) || conn.wants_write()) {
                on_writable(conn, &handler, &metrics, &cfg, now);
            }
            if conn.fate == Fate::Alive {
                enforce_deadlines(conn, &handler, &metrics, &cfg, now);
            }
        }

        retire(&mut conns, &metrics, &conn_count);
    }

    // Shutdown: drop every connection (in-flight responses were flushed
    // opportunistically on each loop pass; a hard stop is acceptable for
    // an operator-initiated shutdown).
    let dropped = conns.len();
    conns.clear();
    sub_conns(&conn_count, &metrics, dropped);
}

fn self_unparsed(c: &Conn) -> usize {
    c.read_buf.len() - c.read_pos
}

fn accept_ready(
    listener: &TcpListener,
    conns: &mut Vec<Conn>,
    metrics: &ServerMetrics,
    cfg: &ServerConfig,
    conn_count: &Arc<AtomicUsize>,
    now: Instant,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                if conn_count.load(Ordering::Relaxed) >= cfg.max_connections.max(1) {
                    // Back-pressure by refusal: answer 503 now rather
                    // than queueing unboundedly (best-effort write on
                    // the fresh socket).
                    metrics.rejected_total.inc();
                    reject_overload(stream);
                    continue;
                }
                conn_count.fetch_add(1, Ordering::Relaxed);
                metrics
                    .open_connections
                    .set(conn_count.load(Ordering::Relaxed) as f64);
                conns.push(Conn::new(stream, now));
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

fn reject_overload(mut stream: TcpStream) {
    let resp = Response::error(503, "server overloaded, try again");
    let mut out = Vec::with_capacity(256);
    let body = resp.into_body_bytes();
    http::encode_head(
        &mut out,
        503,
        "application/json",
        Framing::Length(body.len()),
        false,
    );
    out.extend_from_slice(&body);
    let _ = stream.write(&out);
    let _ = stream.shutdown(Shutdown::Both);
}

fn on_readable(
    conn: &mut Conn,
    handler: &Handler,
    metrics: &ServerMetrics,
    cfg: &ServerConfig,
    now: Instant,
) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if !conn.linger && self_unparsed(conn) >= READ_HIGH_WATER {
            break; // flow control: parse before reading more
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = now;
                if conn.linger {
                    // Draining a doomed connection: discard, bounded.
                    conn.linger_drained += n;
                    if conn.linger_drained > LINGER_DRAIN_MAX {
                        conn.fate = Fate::Done;
                        return;
                    }
                } else {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.fate = if conn.request_started.is_some() {
                    Fate::Hangup
                } else {
                    Fate::Done
                };
                if conn.fate == Fate::Hangup {
                    metrics.disconnects_total.inc();
                }
                return;
            }
        }
    }

    advance(conn, handler, metrics, cfg, now);

    if conn.read_closed {
        if conn.request_started.is_some() {
            // Mid-request hangup: nothing to answer, just count it.
            metrics.disconnects_total.inc();
            conn.fate = Fate::Hangup;
            return;
        }
        if conn.flushed() {
            conn.fate = Fate::Done;
            return;
        }
        // EOF at a request boundary with responses still in flight:
        // stop parsing, flush what's queued, then close.
        conn.close_after_flush = true;
    }

    if conn.fate == Fate::Alive && conn.wants_write() {
        on_writable(conn, handler, metrics, cfg, now);
    }
}

/// Parses and dispatches as many buffered requests as ordering allows:
/// at most one response may be streaming, and responses are serialized
/// strictly in request order.
fn advance(
    conn: &mut Conn,
    handler: &Handler,
    metrics: &ServerMetrics,
    cfg: &ServerConfig,
    now: Instant,
) {
    let limits = http::ParseLimits {
        max_header_bytes: cfg.max_header_bytes,
        max_body_bytes: cfg.max_body_bytes,
    };
    while conn.fate == Fate::Alive
        && !conn.close_after_flush
        && conn.streaming.is_none()
        && conn.write_buf.len() - conn.write_pos < WRITE_HIGH_WATER
    {
        if self_unparsed(conn) == 0 {
            conn.request_started = None;
            break;
        }
        match http::parse_request(&conn.read_buf[conn.read_pos..], limits) {
            Parsed::Partial => {
                if conn.request_started.is_none() {
                    conn.request_started = Some(now);
                }
                break;
            }
            Parsed::Bad(status, msg) => {
                metrics.requests_total.inc();
                let resp = Response::error(status, msg);
                metrics.count_response(resp.status);
                enqueue_response(conn, resp, false, handler, metrics);
                conn.close_after_flush = true;
                conn.linger = true;
                conn.request_started = None;
                break;
            }
            Parsed::Complete(req, used) => {
                conn.read_pos += used;
                conn.request_started = None;
                conn.requests_served += 1;
                metrics.requests_total.inc();
                let started = Instant::now();
                let resp = match catch_unwind(AssertUnwindSafe(|| handler(&req))) {
                    Ok(resp) => resp,
                    Err(_) => {
                        metrics.panics_total.inc();
                        Response::error(500, "handler panicked")
                    }
                };
                let keep_alive =
                    !req.close && conn.requests_served < cfg.max_requests_per_conn.max(1);
                if !keep_alive {
                    conn.close_after_flush = true;
                }
                metrics.count_response(resp.status);
                metrics
                    .duration(endpoint_label(&req.path))
                    .record(started.elapsed().as_micros() as f64);
                enqueue_response(conn, resp, keep_alive, handler, metrics);
            }
        }
    }
    // Compact the consumed front of the read buffer.
    if conn.read_pos > 0 {
        if conn.read_pos == conn.read_buf.len() {
            conn.read_buf.clear();
        } else if conn.read_pos >= 4 * 1024 {
            conn.read_buf.drain(..conn.read_pos);
        } else {
            return;
        }
        conn.read_pos = 0;
    }
}

/// Serializes a response head (and body start) into the write buffer.
/// A chunked body parks its iterator on the connection and is pulled as
/// the socket drains.
fn enqueue_response(
    conn: &mut Conn,
    resp: Response,
    keep_alive: bool,
    _handler: &Handler,
    metrics: &ServerMetrics,
) {
    match resp.body {
        Body::Full(bytes) => {
            http::encode_head(
                &mut conn.write_buf,
                resp.status,
                resp.content_type,
                Framing::Length(bytes.len()),
                keep_alive,
            );
            conn.write_buf.extend_from_slice(&bytes);
        }
        Body::Chunks(iter) => {
            http::encode_head(
                &mut conn.write_buf,
                resp.status,
                resp.content_type,
                Framing::Chunked,
                keep_alive,
            );
            conn.streaming = Some(iter);
            fill_stream(conn, metrics);
        }
    }
}

/// Pulls the streaming body into the write buffer up to the high-water
/// mark. A panicking producer aborts the connection (the chunked coding
/// has no way to signal an error mid-body; truncation without the final
/// chunk is the protocol's error marker).
fn fill_stream(conn: &mut Conn, metrics: &ServerMetrics) {
    while conn.write_buf.len() - conn.write_pos < WRITE_HIGH_WATER {
        let Some(iter) = conn.streaming.as_mut() else {
            return;
        };
        match catch_unwind(AssertUnwindSafe(|| iter.next())) {
            Ok(Some(chunk)) => http::encode_chunk(&mut conn.write_buf, &chunk),
            Ok(None) => {
                http::encode_last_chunk(&mut conn.write_buf);
                conn.streaming = None;
                return;
            }
            Err(_) => {
                metrics.panics_total.inc();
                conn.streaming = None;
                conn.fate = Fate::Done;
                return;
            }
        }
    }
}

fn on_writable(
    conn: &mut Conn,
    handler: &Handler,
    metrics: &ServerMetrics,
    cfg: &ServerConfig,
    now: Instant,
) {
    loop {
        if conn.write_pos >= conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            if conn.streaming.is_some() {
                fill_stream(conn, metrics);
                if conn.fate != Fate::Alive {
                    return;
                }
                if conn.write_buf.is_empty() {
                    return; // producer yielded nothing new
                }
                continue;
            }
            break;
        }
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.fate = Fate::Done;
                return;
            }
            Ok(n) => {
                conn.write_pos += n;
                conn.last_activity = now;
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.fate = Fate::Done;
                return;
            }
        }
    }

    // Everything queued is on the wire.
    if conn.close_after_flush {
        if conn.linger && !conn.read_closed {
            // Half-close and wait (bounded) for the client to finish
            // sending, so the kernel doesn't RST the response away.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.linger = false; // shutdown issued once
            conn.read_buf.clear();
            conn.read_pos = 0;
            conn.linger_drained = 0;
            conn.request_started = None;
            return; // reaped on EOF or read_timeout
        }
        if conn.read_closed || !conn.linger {
            conn.fate = Fate::Done;
        }
        return;
    }
    if conn.read_closed {
        conn.fate = Fate::Done;
        return;
    }
    // Keep-alive: any pipelined bytes already buffered form the next
    // request.
    advance(conn, handler, metrics, cfg, now);
}

fn enforce_deadlines(
    conn: &mut Conn,
    handler: &Handler,
    metrics: &ServerMetrics,
    cfg: &ServerConfig,
    now: Instant,
) {
    let since_activity = now.saturating_duration_since(conn.last_activity);

    // A stalled write (client not draining) dies after write_timeout.
    if conn.wants_write() {
        if since_activity > Duration::from_millis(cfg.write_timeout_ms.max(1)) {
            conn.fate = Fate::Done;
        }
        return;
    }

    // A partial request must complete within read_timeout.
    if let Some(started) = conn.request_started {
        if now.saturating_duration_since(started)
            > Duration::from_millis(cfg.read_timeout_ms.max(1))
        {
            metrics.requests_total.inc();
            let resp = Response::error(408, "request timed out");
            metrics.count_response(resp.status);
            enqueue_response(conn, resp, false, handler, metrics);
            conn.close_after_flush = true;
            conn.linger = true;
            conn.request_started = None;
            on_writable(conn, handler, metrics, cfg, now);
        }
        return;
    }

    // Doomed connections waiting out a linger drain give up after
    // read_timeout; idle keep-alive connections are reaped. A connection
    // that has never completed a request gets the (shorter) read
    // timeout, so an open-and-say-nothing socket can't squat for the
    // whole keep-alive idle window.
    let idle_budget = if conn.close_after_flush || conn.requests_served == 0 {
        cfg.read_timeout_ms
    } else {
        cfg.keep_alive_idle_ms
    };
    if since_activity > Duration::from_millis(idle_budget.max(1)) {
        conn.fate = Fate::Done;
    }
}

fn retire(conns: &mut Vec<Conn>, metrics: &ServerMetrics, conn_count: &Arc<AtomicUsize>) {
    let before = conns.len();
    conns.retain(|c| c.fate == Fate::Alive);
    sub_conns(conn_count, metrics, before - conns.len());
}

fn sub_conns(conn_count: &Arc<AtomicUsize>, metrics: &ServerMetrics, n: usize) {
    if n == 0 {
        return;
    }
    conn_count.fetch_sub(n, Ordering::Relaxed);
    metrics
        .open_connections
        .set(conn_count.load(Ordering::Relaxed) as f64);
}
