//! [`ServeHarness`]: the resident deployment — a [`Cpi2Harness`] ticking
//! continuously while the HTTP server reads torn-free snapshots.
//!
//! Serving never perturbs the simulation: after every tick the harness
//! publishes immutable state for the handlers, and operator actions
//! posted over HTTP are drained **at the next tick start**, in FIFO
//! acceptance order — the one deterministic injection point. A run with
//! a server attached (and no actions posted) is therefore bit-identical
//! to the same seed with no server at all; the determinism suite proves
//! it under 32 concurrent clients.
//!
//! # Delta publishing
//!
//! Publishing a full [`LiveSnapshot`] every tick costs O(fleet), which
//! walls off big fleets (ROADMAP item 2). Instead the harness publishes
//! a [`DeltaSnapshot`] per tick — machines whose *fingerprint* changed,
//! appended incidents/samples, spec bumps, grown traces — over a full
//! base republished every [`full_snapshot_every`](Self::set_full_snapshot_every)
//! ticks (1 = the legacy full-every-tick mode). Fingerprints quantize
//! the jittery fields (utilization to 1/8, thread counts and
//! throttle-event totals to powers of two) so ordinary load noise does
//! not re-publish the whole fleet; the merged view may lag those by one
//! quantum for up to one full-snapshot period, while everything
//! discrete — incidents, caps, specs, task placement, tick counters —
//! is exact every tick. Readers reconstruct lazily in
//! [`LiveState`](crate::state::LiveState); the tick thread pays for
//! churn, not fleet size.
//!
//! This module (with [`server`](crate::server) and
//! [`eventloop`](crate::eventloop)) is the crate's only sanctioned home
//! for wall clocks and `thread::spawn` — wall time here only *paces*
//! ticks and *measures* publish cost, it never feeds sim state.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpi2::core::{CpiSample, IncidentAction, TraceId};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{JobId, Machine, SimDuration, TaskId};
use cpi2::telemetry::Histo;

use crate::routes::Router;
use crate::server::{self, Handler, ServerConfig, ServerHandle};
use crate::state::{
    DeltaSnapshot, IncidentView, LiveSnapshot, MachineView, OperatorAction, SharedState, SpanView,
    SuspectView, TaskView, TraceView, INCIDENT_TAIL, SAMPLE_TAIL,
};

/// Default full-base republish period, ticks.
const DEFAULT_FULL_EVERY: u32 = 64;

/// The resident CPI² deployment: harness + snapshot publisher + action
/// sink + (optionally) an attached HTTP server.
pub struct ServeHarness {
    inner: Cpi2Harness,
    state: Arc<SharedState>,
    sample_tail: VecDeque<CpiSample>,
    ticks: u64,
    server: Option<ServerHandle>,
    /// Full-base republish period; 1 = full snapshot every tick.
    full_every: u32,
    /// Ticks since the last full base.
    since_full: u32,
    /// Per-machine quantized fingerprints as of the last publish,
    /// indexed like `cluster.machines()`.
    machine_fps: Vec<u64>,
    /// Incidents already published (watermark into `inner.incidents()`).
    incidents_seen: usize,
    /// Spec store version already published.
    spec_version_seen: u64,
    /// Span count per trace as of the last publish.
    trace_sizes: BTreeMap<TraceId, usize>,
    /// Publish cost distribution, µs (wall time; measurement only).
    publish_histo: Histo,
    publish_count: u64,
    publish_us_total: u64,
}

impl ServeHarness {
    /// Wraps a harness; sample retention is turned on so snapshots can
    /// carry a recent-sample tail.
    pub fn new(mut inner: Cpi2Harness) -> ServeHarness {
        inner.record_samples = true;
        let state = SharedState::new(inner.telemetry().clone());
        let publish_histo = inner.telemetry().histogram("cpi_serve_publish_us", &[]);
        let mut sh = ServeHarness {
            inner,
            state,
            sample_tail: VecDeque::with_capacity(SAMPLE_TAIL),
            ticks: 0,
            server: None,
            full_every: DEFAULT_FULL_EVERY,
            since_full: 0,
            machine_fps: Vec::new(),
            incidents_seen: 0,
            spec_version_seen: 0,
            trace_sizes: BTreeMap::new(),
            publish_histo,
            publish_count: 0,
            publish_us_total: 0,
        };
        sh.publish_full();
        sh
    }

    /// Sets the full-base republish period (clamped to ≥ 1; 1 publishes
    /// a full snapshot every tick, the pre-delta behaviour).
    pub fn set_full_snapshot_every(&mut self, ticks: u32) {
        self.full_every = ticks.max(1);
    }

    /// `(publishes, total µs)` spent building/publishing snapshots so
    /// far — the tick-thread cost the load benchmark pins down.
    pub fn publish_stats(&self) -> (u64, u64) {
        (self.publish_count, self.publish_us_total)
    }

    /// The state shared with the HTTP router (for tests that drive the
    /// router without a socket).
    pub fn state(&self) -> Arc<SharedState> {
        Arc::clone(&self.state)
    }

    /// Read access to the wrapped harness.
    pub fn inner(&self) -> &Cpi2Harness {
        &self.inner
    }

    /// Mutable access to the wrapped harness, for embedding binaries
    /// that adjust it between ticks (e.g. a forced spec refresh).
    /// Unlike queued operator actions this applies immediately, so only
    /// touch it from the thread driving [`tick`](Self::tick).
    pub fn inner_mut(&mut self) -> &mut Cpi2Harness {
        &mut self.inner
    }

    /// Unwraps the harness (shutting the server down first if attached).
    pub fn into_inner(mut self) -> Cpi2Harness {
        self.shutdown_server();
        self.inner
    }

    /// One tick: apply queued operator actions, step the system, publish
    /// the delta (or periodic full base).
    pub fn tick(&mut self) {
        self.apply_actions();
        self.inner.step();
        self.ticks += 1;
        let fresh: Vec<CpiSample> = std::mem::take(&mut self.inner.samples);
        for s in &fresh {
            if self.sample_tail.len() == SAMPLE_TAIL {
                self.sample_tail.pop_front();
            }
            self.sample_tail.push_back(s.clone());
        }
        let started = Instant::now();
        if self.since_full + 1 >= self.full_every {
            self.publish_full();
        } else {
            self.publish_delta(fresh);
            self.since_full += 1;
        }
        let spent_us = started.elapsed().as_micros() as u64;
        self.publish_histo.record(spent_us as f64);
        self.publish_count += 1;
        self.publish_us_total += spent_us;
    }

    /// Runs for a sim duration (whole ticks), as fast as possible.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.inner.cluster.now() + duration;
        while self.inner.cluster.now() < end {
            self.tick();
        }
    }

    /// Attaches an HTTP server at `addr` serving this harness's state.
    /// Returns the bound address (useful with a `:0` port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve(&mut self, addr: &str, cfg: ServerConfig) -> io::Result<SocketAddr> {
        self.serve_with_token(addr, cfg, None)
    }

    /// Like [`serve`](Self::serve), with a shared-secret token required
    /// (constant-time compared) on mutating endpoints.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve_with_token(
        &mut self,
        addr: &str,
        cfg: ServerConfig,
        auth_token: Option<String>,
    ) -> io::Result<SocketAddr> {
        let router = Router::new(self.state()).with_auth_token(auth_token);
        let handler: Handler = Arc::new(move |req| router.handle(req));
        let handle = server::start(addr, cfg, self.inner.telemetry(), handler)?;
        let bound = handle.addr();
        self.server = Some(handle);
        Ok(bound)
    }

    /// Stops the attached HTTP server, if any.
    pub fn shutdown_server(&mut self) {
        if let Some(h) = self.server.take() {
            h.shutdown();
        }
    }

    /// Resident mode: tick forever (or for `total` sim time when given),
    /// pacing each tick by `pace_ms` of wall time (0 = free-running).
    /// Wall time only paces the loop — it never feeds sim state. Used by
    /// the `cpi2-serve` binary and `fleet_rate --serve` after
    /// [`serve`](Self::serve).
    pub fn run_paced(&mut self, pace_ms: u64, total: Option<SimDuration>) {
        let end = total.map(|d| self.inner.cluster.now() + d);
        loop {
            if let Some(end) = end {
                if self.inner.cluster.now() >= end {
                    break;
                }
            }
            self.tick();
            if pace_ms > 0 {
                std::thread::sleep(Duration::from_millis(pace_ms));
            }
        }
    }

    /// Ticks executed through this harness.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Drains the action queue and applies each action against the
    /// cluster, FIFO. Outcomes are recorded as `operator` telemetry
    /// events (visible at `/debug/events`).
    fn apply_actions(&mut self) {
        for action in self.state.actions.drain() {
            let outcome = match action {
                OperatorAction::Cap {
                    job,
                    index,
                    rate,
                    duration_us,
                } => {
                    let task = TaskId {
                        job: JobId(job),
                        index,
                    };
                    let ok = self
                        .inner
                        .operator_cap(task, rate, SimDuration(duration_us));
                    format!("cap job={job} index={index} rate={rate} ok={ok}")
                }
                OperatorAction::Uncap { job, index } => {
                    let task = TaskId {
                        job: JobId(job),
                        index,
                    };
                    let ok = self.inner.cluster.remove_hard_cap(task);
                    format!("uncap job={job} index={index} ok={ok}")
                }
                OperatorAction::KillRestart { job, index } => {
                    let task = TaskId {
                        job: JobId(job),
                        index,
                    };
                    let moved = self.inner.operator_migrate(task);
                    format!("kill-restart job={job} index={index} moved_to={moved:?}")
                }
                OperatorAction::SetProtection(on) => {
                    self.inner.set_protection_enabled(on);
                    format!("protection enabled={on}")
                }
            };
            self.inner.telemetry().event("operator", || outcome.clone());
        }
    }

    fn build_machine_view(m: &Machine) -> MachineView {
        MachineView {
            id: m.id.0,
            tasks: m.task_count(),
            threads: m.thread_count(),
            utilization: m.utilization(),
            throttle_events: m.throttle_events(),
            task_list: m
                .tasks()
                .map(|t| TaskView {
                    job: t.id.job.0,
                    index: t.id.index,
                    job_name: t.job_name.clone(),
                    class: format!("{:?}", t.class),
                    threads: t.threads(),
                })
                .collect(),
        }
    }

    /// Incident views appended since the `seen` watermark (bounded by
    /// the serving tail).
    fn build_new_incidents(&self, seen: usize) -> Vec<IncidentView> {
        let all = self.inner.incidents();
        let start = seen.max(all.len().saturating_sub(INCIDENT_TAIL));
        all[start..]
            .iter()
            .map(|mi| {
                let inc = &mi.incident;
                let (action, target_job, cpu_rate, reason) = match &inc.action {
                    IncidentAction::HardCap {
                        target_job,
                        cpu_rate,
                        ..
                    } => ("hard_cap", target_job.clone(), *cpu_rate, String::new()),
                    IncidentAction::None { reason } => ("none", String::new(), 0.0, reason.clone()),
                };
                IncidentView {
                    trace: inc.trace_id.to_string(),
                    at_us: inc.at,
                    machine: mi.machine.0,
                    victim_job: inc.victim_job.clone(),
                    victim_task: inc.victim.0,
                    victim_cpi: inc.victim_cpi,
                    cthreshold: inc.cthreshold,
                    action: action.to_string(),
                    target_job,
                    cpu_rate,
                    reason,
                    suspects: inc
                        .suspects
                        .iter()
                        .map(|s| SuspectView {
                            jobname: s.jobname.clone(),
                            correlation: s.correlation,
                        })
                        .collect(),
                }
            })
            .collect()
    }

    fn build_trace_view(&self, id: TraceId) -> TraceView {
        TraceView {
            trace: id.to_string(),
            spans: self
                .inner
                .trace_log()
                .get(id)
                .unwrap_or(&[])
                .iter()
                .map(|sp| SpanView {
                    stage: sp.stage.name().to_string(),
                    start_us: sp.start_us,
                    end_us: sp.end_us,
                    detail: sp.detail.clone(),
                })
                .collect(),
        }
    }

    /// Publishes a full base snapshot and resets every delta watermark.
    fn publish_full(&mut self) {
        let machines: Vec<MachineView> = self
            .inner
            .cluster
            .machines()
            .iter()
            .map(Self::build_machine_view)
            .collect();
        self.machine_fps = self
            .inner
            .cluster
            .machines()
            .iter()
            .map(machine_fingerprint)
            .collect();

        let incidents = self.build_new_incidents(0);
        self.incidents_seen = self.inner.incidents().len();

        let spec_snap = self.inner.spec_store.snapshot();
        let specs: Vec<_> = spec_snap
            .changed_since_with_age(0)
            .into_iter()
            .map(|(spec, _published_at)| spec)
            .collect();
        self.spec_version_seen = spec_snap.version();

        let trace_log = self.inner.trace_log();
        self.trace_sizes = trace_log
            .ids()
            .map(|id| (id, trace_log.get(id).map(|s| s.len()).unwrap_or(0)))
            .collect();
        let traces: Vec<TraceView> = trace_log
            .ids()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|id| self.build_trace_view(id))
            .collect();

        let cluster = &self.inner.cluster;
        self.state.live.publish(LiveSnapshot {
            now_us: cluster.now().as_us(),
            tick_us: cluster.tick_len().as_us(),
            ticks: self.ticks,
            spec_version: self.spec_version_seen,
            protection_enabled: self.inner.protection_enabled(),
            caps_applied: self.inner.caps_applied(),
            collector_dropped: self.inner.collector_dropped(),
            machines,
            incidents,
            specs,
            samples: self.sample_tail.iter().cloned().collect(),
            traces,
        });
        self.since_full = 0;
    }

    /// Publishes one tick's delta: changed machines (by quantized
    /// fingerprint), appended incidents/samples, spec bumps, grown
    /// traces. Cost scales with churn, not fleet size.
    fn publish_delta(&mut self, fresh_samples: Vec<CpiSample>) {
        let machines: Vec<MachineView> = {
            let cluster_machines = self.inner.cluster.machines();
            self.machine_fps.resize(cluster_machines.len(), 0);
            cluster_machines
                .iter()
                .enumerate()
                .filter_map(|(i, m)| {
                    let fp = machine_fingerprint(m);
                    if self.machine_fps[i] == fp {
                        None
                    } else {
                        self.machine_fps[i] = fp;
                        Some(Self::build_machine_view(m))
                    }
                })
                .collect()
        };

        let new_incidents = self.build_new_incidents(self.incidents_seen);
        self.incidents_seen = self.inner.incidents().len();

        let spec_snap = self.inner.spec_store.snapshot();
        let changed_specs: Vec<_> = spec_snap
            .changed_since_with_age(self.spec_version_seen)
            .into_iter()
            .map(|(spec, _published_at)| spec)
            .collect();
        self.spec_version_seen = spec_snap.version();

        let changed_ids: Vec<TraceId> = {
            let trace_log = self.inner.trace_log();
            trace_log
                .ids()
                .filter(|id| {
                    let len = trace_log.get(*id).map(|s| s.len()).unwrap_or(0);
                    self.trace_sizes.get(id) != Some(&len)
                })
                .collect()
        };
        let changed_traces: Vec<TraceView> = changed_ids
            .into_iter()
            .map(|id| {
                let view = self.build_trace_view(id);
                self.trace_sizes.insert(id, view.spans.len());
                view
            })
            .collect();

        let cluster = &self.inner.cluster;
        self.state.live.publish_delta(DeltaSnapshot {
            now_us: cluster.now().as_us(),
            tick_us: cluster.tick_len().as_us(),
            ticks: self.ticks,
            spec_version: self.spec_version_seen,
            protection_enabled: self.inner.protection_enabled(),
            caps_applied: self.inner.caps_applied(),
            collector_dropped: self.inner.collector_dropped(),
            machines,
            new_incidents,
            new_samples: fresh_samples,
            changed_specs,
            changed_traces,
        });
    }
}

/// Hash of a machine's *quantized* serving-relevant state. Task
/// placement is exact; the continuous or every-tick-jittery fields are
/// bucketed — utilization to 1/8, thread counts and throttle-event
/// totals to powers of two — so steady-state load noise (a heavily
/// shared machine throttles on most ticks) does not re-publish the
/// whole fleet every tick. Staleness is bounded by one bucket for at
/// most one full-snapshot period; the periodic full base restores
/// exactness. This scan runs over every machine every tick, so the mix
/// is one multiply/rotate per field, not a byte-wise FNV.
fn machine_fingerprint(m: &Machine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h = (h ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(29);
    };
    mix(m.id.0 as u64);
    mix(m.task_count() as u64);
    mix((m.throttle_events() + 1).next_power_of_two());
    mix(m.thread_count().next_power_of_two());
    mix((m.utilization() * 8.0).round() as i64 as u64);
    for t in m.tasks() {
        mix(t.id.job.0 as u64);
        mix(t.id.index as u64);
        mix(u64::from(t.threads()).next_power_of_two());
    }
    h
}
