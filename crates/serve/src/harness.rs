//! [`ServeHarness`]: the resident deployment — a [`Cpi2Harness`] ticking
//! continuously while the HTTP server reads torn-free snapshots.
//!
//! Serving never perturbs the simulation: after every tick the harness
//! publishes an immutable [`LiveSnapshot`] for the handlers, and operator
//! actions posted over HTTP are drained **at the next tick start**, in
//! FIFO acceptance order — the one deterministic injection point. A run
//! with a server attached (and no actions posted) is therefore
//! bit-identical to the same seed with no server at all; the determinism
//! suite proves it under 32 concurrent clients.
//!
//! This module (with [`server`](crate::server)) is the crate's only
//! sanctioned home for wall clocks and `thread::spawn` — wall time here
//! only *paces* ticks in resident mode, it never feeds sim state.

use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use cpi2::core::{CpiSample, IncidentAction};
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{JobId, SimDuration, TaskId};

use crate::routes::Router;
use crate::server::{self, Handler, ServerConfig, ServerHandle};
use crate::state::{
    IncidentView, LiveSnapshot, MachineView, OperatorAction, SharedState, SpanView, SuspectView,
    TaskView, TraceView,
};

/// Bounded tails kept in each snapshot (full history stays queryable via
/// the harness itself; the HTTP surface serves recent state).
const INCIDENT_TAIL: usize = 256;
const SAMPLE_TAIL: usize = 512;

/// The resident CPI² deployment: harness + snapshot publisher + action
/// sink + (optionally) an attached HTTP server.
pub struct ServeHarness {
    inner: Cpi2Harness,
    state: Arc<SharedState>,
    sample_tail: VecDeque<CpiSample>,
    ticks: u64,
    server: Option<ServerHandle>,
}

impl ServeHarness {
    /// Wraps a harness; sample retention is turned on so snapshots can
    /// carry a recent-sample tail.
    pub fn new(mut inner: Cpi2Harness) -> ServeHarness {
        inner.record_samples = true;
        let state = SharedState::new(inner.telemetry().clone());
        let mut sh = ServeHarness {
            inner,
            state,
            sample_tail: VecDeque::with_capacity(SAMPLE_TAIL),
            ticks: 0,
            server: None,
        };
        sh.publish_snapshot();
        sh
    }

    /// The state shared with the HTTP router (for tests that drive the
    /// router without a socket).
    pub fn state(&self) -> Arc<SharedState> {
        Arc::clone(&self.state)
    }

    /// Read access to the wrapped harness.
    pub fn inner(&self) -> &Cpi2Harness {
        &self.inner
    }

    /// Mutable access to the wrapped harness, for embedding binaries
    /// that adjust it between ticks (e.g. a forced spec refresh).
    /// Unlike queued operator actions this applies immediately, so only
    /// touch it from the thread driving [`tick`](Self::tick).
    pub fn inner_mut(&mut self) -> &mut Cpi2Harness {
        &mut self.inner
    }

    /// Unwraps the harness (shutting the server down first if attached).
    pub fn into_inner(mut self) -> Cpi2Harness {
        self.shutdown_server();
        self.inner
    }

    /// One tick: apply queued operator actions, step the system, publish
    /// a fresh snapshot.
    pub fn tick(&mut self) {
        self.apply_actions();
        self.inner.step();
        self.ticks += 1;
        for s in std::mem::take(&mut self.inner.samples) {
            if self.sample_tail.len() == SAMPLE_TAIL {
                self.sample_tail.pop_front();
            }
            self.sample_tail.push_back(s);
        }
        self.publish_snapshot();
    }

    /// Runs for a sim duration (whole ticks), as fast as possible.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.inner.cluster.now() + duration;
        while self.inner.cluster.now() < end {
            self.tick();
        }
    }

    /// Attaches an HTTP server at `addr` serving this harness's state.
    /// Returns the bound address (useful with a `:0` port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve(&mut self, addr: &str, cfg: ServerConfig) -> io::Result<SocketAddr> {
        let router = Router::new(self.state());
        let handler: Handler = Arc::new(move |req| router.handle(req));
        let handle = server::start(addr, cfg, self.inner.telemetry(), handler)?;
        let bound = handle.addr();
        self.server = Some(handle);
        Ok(bound)
    }

    /// Stops the attached HTTP server, if any.
    pub fn shutdown_server(&mut self) {
        if let Some(h) = self.server.take() {
            h.shutdown();
        }
    }

    /// Resident mode: tick forever (or for `total` sim time when given),
    /// pacing each tick by `pace_ms` of wall time (0 = free-running).
    /// Wall time only paces the loop — it never feeds sim state. Used by
    /// the `cpi2-serve` binary and `fleet_rate --serve` after
    /// [`serve`](Self::serve).
    pub fn run_paced(&mut self, pace_ms: u64, total: Option<SimDuration>) {
        let end = total.map(|d| self.inner.cluster.now() + d);
        loop {
            if let Some(end) = end {
                if self.inner.cluster.now() >= end {
                    break;
                }
            }
            self.tick();
            if pace_ms > 0 {
                std::thread::sleep(Duration::from_millis(pace_ms));
            }
        }
    }

    /// Ticks executed through this harness.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Drains the action queue and applies each action against the
    /// cluster, FIFO. Outcomes are recorded as `operator` telemetry
    /// events (visible at `/debug/events`).
    fn apply_actions(&mut self) {
        for action in self.state.actions.drain() {
            let outcome = match action {
                OperatorAction::Cap {
                    job,
                    index,
                    rate,
                    duration_us,
                } => {
                    let task = TaskId {
                        job: JobId(job),
                        index,
                    };
                    let ok = self
                        .inner
                        .operator_cap(task, rate, SimDuration(duration_us));
                    format!("cap job={job} index={index} rate={rate} ok={ok}")
                }
                OperatorAction::Uncap { job, index } => {
                    let task = TaskId {
                        job: JobId(job),
                        index,
                    };
                    let ok = self.inner.cluster.remove_hard_cap(task);
                    format!("uncap job={job} index={index} ok={ok}")
                }
                OperatorAction::KillRestart { job, index } => {
                    let task = TaskId {
                        job: JobId(job),
                        index,
                    };
                    let moved = self.inner.operator_migrate(task);
                    format!("kill-restart job={job} index={index} moved_to={moved:?}")
                }
                OperatorAction::SetProtection(on) => {
                    self.inner.set_protection_enabled(on);
                    format!("protection enabled={on}")
                }
            };
            self.inner.telemetry().event("operator", || outcome.clone());
        }
    }

    fn publish_snapshot(&mut self) {
        let cluster = &self.inner.cluster;
        let machines: Vec<MachineView> = cluster
            .machines()
            .iter()
            .map(|m| MachineView {
                id: m.id.0,
                tasks: m.task_count(),
                threads: m.thread_count(),
                utilization: m.utilization(),
                throttle_events: m.throttle_events(),
                task_list: m
                    .tasks()
                    .map(|t| TaskView {
                        job: t.id.job.0,
                        index: t.id.index,
                        job_name: t.job_name.clone(),
                        class: format!("{:?}", t.class),
                        threads: t.threads(),
                    })
                    .collect(),
            })
            .collect();

        let all = self.inner.incidents();
        let start = all.len().saturating_sub(INCIDENT_TAIL);
        let incidents: Vec<IncidentView> = all[start..]
            .iter()
            .map(|mi| {
                let inc = &mi.incident;
                let (action, target_job, cpu_rate, reason) = match &inc.action {
                    IncidentAction::HardCap {
                        target_job,
                        cpu_rate,
                        ..
                    } => ("hard_cap", target_job.clone(), *cpu_rate, String::new()),
                    IncidentAction::None { reason } => ("none", String::new(), 0.0, reason.clone()),
                };
                IncidentView {
                    trace: inc.trace_id.to_string(),
                    at_us: inc.at,
                    machine: mi.machine.0,
                    victim_job: inc.victim_job.clone(),
                    victim_task: inc.victim.0,
                    victim_cpi: inc.victim_cpi,
                    cthreshold: inc.cthreshold,
                    action: action.to_string(),
                    target_job,
                    cpu_rate,
                    reason,
                    suspects: inc
                        .suspects
                        .iter()
                        .map(|s| SuspectView {
                            jobname: s.jobname.clone(),
                            correlation: s.correlation,
                        })
                        .collect(),
                }
            })
            .collect();

        let spec_snap = self.inner.spec_store.snapshot();
        let specs: Vec<_> = spec_snap
            .changed_since_with_age(0)
            .into_iter()
            .map(|(spec, _published_at)| spec)
            .collect();

        let trace_log = self.inner.trace_log();
        let traces: Vec<TraceView> = trace_log
            .ids()
            .map(|id| TraceView {
                trace: id.to_string(),
                spans: trace_log
                    .get(id)
                    .unwrap_or(&[])
                    .iter()
                    .map(|sp| SpanView {
                        stage: sp.stage.name().to_string(),
                        start_us: sp.start_us,
                        end_us: sp.end_us,
                        detail: sp.detail.clone(),
                    })
                    .collect(),
            })
            .collect();

        self.state.live.publish(LiveSnapshot {
            now_us: cluster.now().as_us(),
            tick_us: cluster.tick_len().as_us(),
            ticks: self.ticks,
            spec_version: spec_snap.version(),
            protection_enabled: self.inner.protection_enabled(),
            caps_applied: self.inner.caps_applied(),
            collector_dropped: self.inner.collector_dropped(),
            machines,
            incidents,
            specs,
            samples: self.sample_tail.iter().cloned().collect(),
            traces,
        });
    }
}
