//! HTTP/1.1 wire types: incremental request parsing and response
//! serialization, shared by the event loop, the accept path, and the
//! load generator.
//!
//! Everything here is pure computation over byte buffers — no sockets,
//! no clocks, no threads — so the connection state machines in
//! [`eventloop`](crate::eventloop) stay small and the framing logic is
//! testable without I/O. Response heads are encoded by exactly one
//! function ([`encode_head`]), which is the single place the
//! `Connection` and framing headers are decided (the PR-7 server
//! hardcoded the head format in two places).

use std::fmt;

/// One parsed HTTP request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Query parameters in order of appearance (no percent-decoding:
    /// every parameter this API takes is numeric or a plain token).
    pub query: Vec<(String, String)>,
    /// Headers in order of appearance, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body.
    pub body: Vec<u8>,
    /// Client asked for connection close (`Connection: close`, or an
    /// HTTP/1.0 request without `keep-alive`).
    pub close: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a header (lookup by lowercase name).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response body: fully materialized, or produced chunk by chunk so
/// large result sets never exist as one contiguous buffer.
pub enum Body {
    /// The whole body, sent with `Content-Length`.
    Full(Vec<u8>),
    /// Lazily produced chunks, sent with `Transfer-Encoding: chunked`.
    /// The iterator is pulled as the socket drains (write backpressure),
    /// so the tick thread and the handler never pay for the full body.
    Chunks(ChunkIter),
}

/// The producer behind a chunked body.
pub type ChunkIter = Box<dyn Iterator<Item = Vec<u8>> + Send + 'static>;

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Body::Full(b) => write!(f, "Body::Full({} bytes)", b.len()),
            Body::Chunks(_) => write!(f, "Body::Chunks(..)"),
        }
    }
}

/// An HTTP response to be written.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body.
    pub body: Body,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body: Body::Full(body.into_bytes()),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Body::Full(body.into().into_bytes()),
        }
    }

    /// A JSON error `{"error": ...}` with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":\"");
        for c in message.chars() {
            match c {
                '"' => body.push_str("\\\""),
                '\\' => body.push_str("\\\\"),
                '\n' => body.push_str("\\n"),
                c => body.push(c),
            }
        }
        body.push_str("\"}");
        Response {
            status,
            content_type: "application/json",
            body: Body::Full(body.into_bytes()),
        }
    }

    /// A streaming `200 OK` response: chunks are pulled as the socket
    /// drains.
    pub fn chunked(content_type: &'static str, chunks: ChunkIter) -> Response {
        Response {
            status: 200,
            content_type,
            body: Body::Chunks(chunks),
        }
    }

    /// Collects the body into one buffer (tests and the lingering-close
    /// error path; streaming bodies lose their laziness here).
    pub fn into_body_bytes(self) -> Vec<u8> {
        match self.body {
            Body::Full(b) => b,
            Body::Chunks(it) => {
                let mut out = Vec::new();
                for chunk in it {
                    out.extend_from_slice(&chunk);
                }
                out
            }
        }
    }
}

/// Parser size ceilings (mirrors the server config).
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Request line + headers ceiling, bytes (`431` beyond).
    pub max_header_bytes: usize,
    /// Body ceiling, bytes (`413` beyond).
    pub max_body_bytes: usize,
}

/// Outcome of attempting to parse one request from the front of a
/// buffer.
#[derive(Debug)]
pub enum Parsed {
    /// One complete request, plus the bytes it consumed (pipelining:
    /// the caller advances its read buffer and tries again).
    Complete(Box<Request>, usize),
    /// The buffer does not yet hold a complete request.
    Partial,
    /// Protocol error: answer with this status and message, then close.
    Bad(u16, &'static str),
}

/// Parses one request from the front of `buf`. Stateless: callers
/// re-invoke with a longer buffer until [`Parsed::Complete`] or
/// [`Parsed::Bad`].
pub fn parse_request(buf: &[u8], limits: ParseLimits) -> Parsed {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > limits.max_header_bytes {
            return Parsed::Bad(431, "request headers too large");
        }
        return Parsed::Partial;
    };
    if header_end > limits.max_header_bytes {
        return Parsed::Bad(431, "request headers too large");
    }

    let head = String::from_utf8_lossy(&buf[..header_end]);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Parsed::Bad(400, "malformed request line"),
    };
    if !version.starts_with("HTTP/1.") {
        return Parsed::Bad(400, "unsupported protocol version");
    }
    let method = method.to_ascii_uppercase();
    if method != "GET" && method != "POST" {
        return Parsed::Bad(405, "method not allowed");
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Bad(400, "malformed header line");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let Ok(n) = value.parse::<usize>() else {
                return Parsed::Bad(400, "bad content-length");
            };
            content_length = n;
        }
        headers.push((name, value));
    }
    if content_length > limits.max_body_bytes {
        return Parsed::Bad(413, "request body too large");
    }

    let body_start = header_end + 4;
    if buf.len() < body_start + content_length {
        return Parsed::Partial;
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let close = match connection.as_deref() {
        Some(v) if v.contains("close") => true,
        Some(v) if v.contains("keep-alive") => false,
        _ => version == "HTTP/1.0",
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Parsed::Complete(
        Box::new(Request {
            method,
            path: path.to_string(),
            query,
            headers,
            body,
            close,
        }),
        body_start + content_length,
    )
}

/// Byte offset of the `\r\n\r\n` terminating the headers, if present.
pub fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a query string into ordered key/value pairs.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// How the response body is framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// `Content-Length: n`.
    Length(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// Encodes a response head. **The** single place the status line,
/// `Connection`, and framing headers are produced — keep-alive policy
/// and body framing are decided by the caller, spelled out here once.
pub fn encode_head(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    framing: Framing,
    keep_alive: bool,
) {
    use std::io::Write as _;
    let connection = if keep_alive { "keep-alive" } else { "close" };
    match framing {
        Framing::Length(n) => {
            let _ = write!(
                out,
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
                status,
                reason(status),
                content_type,
                n,
                connection
            );
        }
        Framing::Chunked => {
            let _ = write!(
                out,
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
                status,
                reason(status),
                content_type,
                connection
            );
        }
    }
}

/// Encodes one chunk frame (`<hex len>\r\n<data>\r\n`). Empty chunks
/// are skipped — an empty frame would terminate the chunked body.
pub fn encode_chunk(out: &mut Vec<u8>, chunk: &[u8]) {
    use std::io::Write as _;
    if chunk.is_empty() {
        return;
    }
    let _ = write!(out, "{:x}\r\n", chunk.len());
    out.extend_from_slice(chunk);
    out.extend_from_slice(b"\r\n");
}

/// Encodes the terminating zero-length chunk.
pub fn encode_last_chunk(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

/// Reason phrase for the statuses this API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Outcome of scanning a client-side read buffer for one complete
/// response (used by the load generator and framing tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScannedResponse {
    /// A complete response: status and total bytes consumed.
    Complete {
        /// Status code from the status line.
        status: u16,
        /// Bytes of the buffer this response occupied.
        consumed: usize,
    },
    /// More bytes needed.
    Partial,
    /// The bytes are not an HTTP/1.1 response.
    Malformed,
}

/// Scans the front of `buf` for one complete response, understanding
/// both `Content-Length` and chunked framing — the client-side mirror
/// of [`encode_head`]/[`encode_chunk`].
pub fn scan_response(buf: &[u8]) -> ScannedResponse {
    let Some(header_end) = find_header_end(buf) else {
        return ScannedResponse::Partial;
    };
    let head = String::from_utf8_lossy(&buf[..header_end]);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    if !status_line.starts_with("HTTP/1.") {
        return ScannedResponse::Malformed;
    }
    let Some(status) = status_line
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
    else {
        return ScannedResponse::Malformed;
    };
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            }
        }
    }
    let body_start = header_end + 4;
    if chunked {
        // Walk chunk frames until the zero-length terminator.
        let mut at = body_start;
        loop {
            let rest = &buf[at.min(buf.len())..];
            let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
                return ScannedResponse::Partial;
            };
            let Ok(size_str) = std::str::from_utf8(&rest[..line_end]) else {
                return ScannedResponse::Malformed;
            };
            let Ok(size) = usize::from_str_radix(size_str.trim(), 16) else {
                return ScannedResponse::Malformed;
            };
            let frame = at + line_end + 2 + size + 2;
            if frame > buf.len() {
                return ScannedResponse::Partial;
            }
            at = frame;
            if size == 0 {
                return ScannedResponse::Complete {
                    status,
                    consumed: at,
                };
            }
        }
    }
    let total = body_start + content_length.unwrap_or(0);
    if buf.len() < total {
        return ScannedResponse::Partial;
    }
    ScannedResponse::Complete {
        status,
        consumed: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: ParseLimits = ParseLimits {
        max_header_bytes: 8 * 1024,
        max_body_bytes: 64 * 1024,
    };

    #[test]
    fn query_parsing() {
        let q = parse_query("job=3&index=1&rate=0.1&flag");
        assert_eq!(q.len(), 4);
        assert_eq!(q[0], ("job".to_string(), "3".to_string()));
        assert_eq!(q[3], ("flag".to_string(), String::new()));
        let req = Request {
            query: q,
            ..Request::default()
        };
        assert_eq!(req.param("rate"), Some("0.1"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }

    #[test]
    fn error_body_is_json_escaped() {
        let r = Response::error(400, "bad \"thing\"\n");
        assert_eq!(
            String::from_utf8(r.into_body_bytes()).unwrap(),
            "{\"error\":\"bad \\\"thing\\\"\\n\"}"
        );
    }

    #[test]
    fn parses_pipelined_requests_incrementally() {
        let wire =
            b"GET /a HTTP/1.1\r\nHost: t\r\n\r\nGET /b?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n";
        let Parsed::Complete(first, used) = parse_request(wire, LIMITS) else {
            panic!("first request should parse");
        };
        assert_eq!(first.path, "/a");
        assert!(!first.close, "HTTP/1.1 defaults to keep-alive");
        let Parsed::Complete(second, used2) = parse_request(&wire[used..], LIMITS) else {
            panic!("second request should parse");
        };
        assert_eq!(second.path, "/b");
        assert_eq!(second.param("x"), Some("1"));
        assert!(second.close);
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn partial_requests_wait_for_more_bytes() {
        assert!(matches!(
            parse_request(b"GET / HT", LIMITS),
            Parsed::Partial
        ));
        // Headers complete, declared body not yet arrived.
        assert!(matches!(
            parse_request(b"POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", LIMITS),
            Parsed::Partial
        ));
        // Body arrives: complete, and the body is exactly the declared bytes.
        let Parsed::Complete(req, used) = parse_request(
            b"POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcdeXX",
            LIMITS,
        ) else {
            panic!("should parse");
        };
        assert_eq!(req.body, b"abcde");
        assert_eq!(
            used,
            b"POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde".len()
        );
    }

    #[test]
    fn protocol_errors_map_to_statuses() {
        assert!(matches!(
            parse_request(b"GARBAGE\r\n\r\n", LIMITS),
            Parsed::Bad(400, _)
        ));
        assert!(matches!(
            parse_request(b"DELETE / HTTP/1.1\r\n\r\n", LIMITS),
            Parsed::Bad(405, _)
        ));
        assert!(matches!(
            parse_request(b"GET / SPDY/99\r\n\r\n", LIMITS),
            Parsed::Bad(400, _)
        ));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", LIMITS),
            Parsed::Bad(400, _)
        ));
        let tiny = ParseLimits {
            max_header_bytes: 16,
            max_body_bytes: 16,
        };
        assert!(matches!(
            parse_request(b"GET /aaaaaaaaaaaaaaaaaaaaaaa HTTP/1.1\r\n", tiny),
            Parsed::Bad(431, _)
        ));
        let tiny_body = ParseLimits {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 16,
        };
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n", tiny_body),
            Parsed::Bad(413, _)
        ));
    }

    #[test]
    fn http10_defaults_to_close() {
        let Parsed::Complete(req, _) = parse_request(b"GET / HTTP/1.0\r\n\r\n", LIMITS) else {
            panic!("should parse");
        };
        assert!(req.close);
        let Parsed::Complete(req, _) =
            parse_request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", LIMITS)
        else {
            panic!("should parse");
        };
        assert!(!req.close);
    }

    #[test]
    fn head_encoding_is_unified() {
        let mut out = Vec::new();
        encode_head(&mut out, 200, "text/plain", Framing::Length(2), true);
        let head = String::from_utf8(out).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(head.contains("Connection: keep-alive\r\n"), "{head}");
        assert!(head.contains("Content-Length: 2\r\n"), "{head}");
        assert_eq!(head.matches("Connection:").count(), 1);

        let mut out = Vec::new();
        encode_head(&mut out, 200, "application/json", Framing::Chunked, false);
        let head = String::from_utf8(out).unwrap();
        assert!(head.contains("Transfer-Encoding: chunked\r\n"), "{head}");
        assert!(head.contains("Connection: close\r\n"), "{head}");
        assert!(!head.contains("Content-Length"), "{head}");
    }

    #[test]
    fn chunk_encoding_round_trips_through_scan() {
        let mut wire = Vec::new();
        encode_head(&mut wire, 200, "application/json", Framing::Chunked, true);
        encode_chunk(&mut wire, b"[1,2,");
        encode_chunk(&mut wire, b"");
        encode_chunk(&mut wire, b"3]");
        encode_last_chunk(&mut wire);
        // A prefix scans as partial; the full frame scans complete.
        assert_eq!(
            scan_response(&wire[..wire.len() - 3]),
            ScannedResponse::Partial
        );
        assert_eq!(
            scan_response(&wire),
            ScannedResponse::Complete {
                status: 200,
                consumed: wire.len()
            }
        );

        let mut wire2 = Vec::new();
        encode_head(
            &mut wire2,
            404,
            "application/json",
            Framing::Length(4),
            false,
        );
        wire2.extend_from_slice(b"null");
        wire2.extend_from_slice(b"GARBAGE AFTER");
        assert_eq!(
            scan_response(&wire2),
            ScannedResponse::Complete {
                status: 404,
                consumed: wire2.len() - b"GARBAGE AFTER".len()
            }
        );
    }
}
