//! `cpi2-serve`: resident observability & control plane for the CPI²
//! reproduction.
//!
//! The paper's pipeline (§5) is an *online service*: operators watch
//! incident dashboards, run forensics queries over the logs, and issue
//! manual cap / uncap / kill-restart actions while the fleet runs. This
//! crate gives the reproduction that same resident shape:
//!
//! - [`ServeHarness`] runs the full deployment ([`cpi2::harness::Cpi2Harness`])
//!   tick by tick while request handlers read only torn-free snapshots —
//!   serving cannot perturb tick ordering, and the determinism suite
//!   proves tick-stream bit-identity with a server attached vs absent;
//! - [`server`] is a dependency-free HTTP/1.1 keep-alive server
//!   (sharded accept + `poll(2)` readiness event loop, pipelining,
//!   streaming chunked responses, read/write deadlines, size ceilings,
//!   back-pressure by refusal) in the same hand-rolled spirit as the
//!   rest of the workspace;
//! - [`routes`] expose `/metrics` (Prometheus text), `/metrics.json`,
//!   `/healthz`, `/version`, `/incidents`, `/incidents/{id}/trace`,
//!   `/specs/{job}`, `/machines/{id}`, `/debug/events`, `POST /query`
//!   (the SQL-ish forensics engine over live tables) and
//!   `POST /actions/…` (operator interface, applied at the next tick
//!   boundary);
//! - every incident carries a [`cpi2::core::TraceId`] whose span chain
//!   (sample window → 2σ violation → identification → decision →
//!   amelioration → recovery) is recorded end to end and served at
//!   `GET /incidents/{id}/trace`.
//!
//! # Quickstart
//!
//! ```no_run
//! use cpi2::core::Cpi2Config;
//! use cpi2::harness::Cpi2Harness;
//! use cpi2::sim::{Cluster, ClusterConfig, Platform};
//! use cpi2_serve::{ServeHarness, ServerConfig};
//!
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! cluster.add_machines(&Platform::westmere(), 16);
//! let system = Cpi2Harness::new(cluster, Cpi2Config::default());
//! let mut sh = ServeHarness::new(system);
//! let addr = sh.serve("127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("serving on http://{addr}");
//! // sh.run_for(...) / sh.tick() while clients scrape.
//! ```

#![warn(missing_docs)]

pub mod eventloop;
pub mod harness;
pub mod http;
pub mod poll;
pub mod routes;
pub mod server;
pub mod state;

pub use harness::ServeHarness;
pub use routes::Router;
pub use server::{Handler, Request, Response, ServerConfig, ServerHandle};
pub use state::{ActionQueue, LiveSnapshot, LiveState, OperatorAction, SharedState};
