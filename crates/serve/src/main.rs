//! `cpi2-serve` binary: boot a simulated fleet under the full CPI²
//! deployment and serve the observability & control plane over HTTP.
//!
//! ```text
//! cpi2-serve [--addr 127.0.0.1:8900] [--machines 16] [--scale 1]
//!            [--seed 233811181] [--mins N] [--pace-ms 0]
//!            [--auth-token SECRET] [--full-every 64]
//! ```
//!
//! `--mins 0` (the default) runs until killed. `--pace-ms` slows the
//! tick loop to roughly real time for demos; 0 free-runs.
//! `--auth-token` (or the `CPI2_AUTH_TOKEN` env var) gates the mutating
//! endpoints (`POST /actions/*`, `POST /query`) behind a shared secret;
//! `--full-every` sets the full-snapshot republish period (1 = full
//! every tick). All timing lives in the harness/server modules — this
//! file stays clock-free.

use cpi2::core::Cpi2Config;
use cpi2::harness::Cpi2Harness;
use cpi2::sim::{Cluster, ClusterConfig, Platform, SimDuration};
use cpi2::telemetry::Telemetry;
use cpi2_serve::{ServeHarness, ServerConfig};

struct Args {
    addr: String,
    machines: u32,
    scale: u32,
    seed: u64,
    mins: i64,
    pace_ms: u64,
    auth_token: Option<String>,
    full_every: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8900".to_string(),
        machines: 16,
        scale: 1,
        seed: 233_811_181,
        mins: 0,
        pace_ms: 0,
        auth_token: std::env::var("CPI2_AUTH_TOKEN")
            .ok()
            .filter(|t| !t.is_empty()),
        full_every: 64,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
        match flag {
            "--addr" => args.addr = value.clone(),
            "--machines" => args.machines = parse(flag, value)?,
            "--scale" => args.scale = parse(flag, value)?,
            "--seed" => args.seed = parse(flag, value)?,
            "--mins" => args.mins = parse(flag, value)?,
            "--pace-ms" => args.pace_ms = parse(flag, value)?,
            "--auth-token" => args.auth_token = Some(value.clone()),
            "--full-every" => args.full_every = parse(flag, value)?,
            _ => return Err(format!("unknown flag {flag}\n{USAGE}")),
        }
        i += 2;
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad value for {flag}: {value}\n{USAGE}"))
}

const USAGE: &str = "usage: cpi2-serve [--addr HOST:PORT] [--machines N] [--scale N] \
[--seed N] [--mins N] [--pace-ms N] [--auth-token SECRET] [--full-every N]";

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let telemetry = Telemetry::enabled();
    let mut cluster = Cluster::new(ClusterConfig {
        seed: args.seed,
        telemetry: telemetry.clone(),
        ..ClusterConfig::default()
    });
    cluster.add_machines(&Platform::westmere(), args.machines.max(1));
    cpi2::workloads::submit_typical_mix(&mut cluster, args.scale, args.seed);
    let system = Cpi2Harness::new(cluster, Cpi2Config::default());
    let mut sh = ServeHarness::new(system);
    sh.set_full_snapshot_every(args.full_every);

    let total = if args.mins > 0 {
        Some(SimDuration::from_mins(args.mins))
    } else {
        None
    };
    let auth = args.auth_token.clone();
    let addr = match sh.serve_with_token(&args.addr, ServerConfig::default(), auth) {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("cpi2-serve: failed to bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    eprintln!(
        "cpi2-serve: {} machines, scale {}, seed {} — serving on http://{addr}",
        args.machines, args.scale, args.seed
    );
    sh.run_paced(args.pace_ms, total);
    sh.shutdown_server();
    eprintln!("cpi2-serve: done after {} ticks", sh.ticks());
}
