//! Thin safe wrapper over `poll(2)` for the readiness event loop, plus
//! the `RLIMIT_NOFILE` helper the load generator uses to open hundreds
//! of concurrent sockets.
//!
//! Hand-rolled on the vendored `libc` in the same dependency-free
//! spirit as the rest of the workspace: no mio, no epoll registration
//! lifecycle — the fd set is rebuilt per iteration from the connection
//! registry, which at control-plane scale (hundreds to a few thousand
//! fds per shard) costs microseconds and keeps the loop trivially
//! correct across fd close/reuse.

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness (`POLLIN`).
pub const IN: i16 = libc::POLLIN;
/// Writable readiness (`POLLOUT`).
pub const OUT: i16 = libc::POLLOUT;

/// A reusable `pollfd` array.
#[derive(Debug, Default)]
pub struct PollSet {
    fds: Vec<libc::pollfd>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> PollSet {
        PollSet::default()
    }

    /// Removes every registered fd (capacity is kept).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` for `events`; returns its slot index.
    pub fn push(&mut self, fd: RawFd, events: i16) -> usize {
        self.fds.push(libc::pollfd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Number of registered fds.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Blocks until at least one fd is ready or `timeout_ms` elapses
    /// (0 = non-blocking probe). Returns the ready count; `EINTR` is
    /// retried with the same timeout.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures other than `EINTR`.
    pub fn wait(&mut self, timeout_ms: i32) -> io::Result<usize> {
        loop {
            let rc = unsafe {
                libc::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as libc::nfds_t,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Raw revents for slot `i` (0 when out of range).
    pub fn revents(&self, i: usize) -> i16 {
        self.fds.get(i).map(|p| p.revents).unwrap_or(0)
    }

    /// Whether slot `i` is readable — or hung up / errored, which a
    /// reader must consume to observe EOF or the error.
    pub fn readable(&self, i: usize) -> bool {
        self.revents(i) & (libc::POLLIN | libc::POLLHUP | libc::POLLERR | libc::POLLNVAL) != 0
    }

    /// Whether slot `i` is writable (or errored — the write surfaces
    /// the error).
    pub fn writable(&self, i: usize) -> bool {
        self.revents(i) & (libc::POLLOUT | libc::POLLHUP | libc::POLLERR | libc::POLLNVAL) != 0
    }
}

/// Raises the soft `RLIMIT_NOFILE` toward `want` (clamped at the hard
/// limit). Returns the soft limit in force afterwards. Best-effort: on
/// failure the current limit is returned unchanged.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = libc::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    let target = want.min(lim.rlim_max);
    let new = libc::rlimit {
        rlim_cur: target,
        rlim_max: lim.rlim_max,
    };
    if unsafe { libc::setrlimit(libc::RLIMIT_NOFILE, &new) } == 0 {
        target
    } else {
        lim.rlim_cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poll_reports_readiness_on_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        // Nothing to read yet: a zero-timeout probe reports not ready.
        let mut set = PollSet::new();
        set.push(server.as_raw_fd(), IN);
        assert_eq!(set.wait(0).expect("poll"), 0);
        assert!(!set.readable(0));

        // After the client writes, the server side polls readable.
        client.write_all(b"ping").expect("write");
        let mut set = PollSet::new();
        set.push(server.as_raw_fd(), IN | OUT);
        let ready = set.wait(1_000).expect("poll");
        assert!(ready >= 1);
        assert!(set.readable(0));
        assert!(set.writable(0), "fresh socket should be writable");
    }

    #[test]
    fn nofile_limit_query_is_sane() {
        // Asking for 1 never lowers the limit and reports the current one.
        let cur = raise_nofile_limit(1);
        assert!(cur >= 1);
    }
}
